// Named metrics registry: counters, gauges, and log2 latency histograms.
//
// Every instrument is a handful of relaxed atomics — bump sites never take a
// lock, so hot paths (per-frame transport counters, per-call histograms) pay
// one fetch_add. The Registry owns instruments behind stable references:
// counter()/gauge()/histogram() get-or-create under a Mutex and hand back a
// reference that stays valid for the registry's lifetime (reset() zeroes
// values in place, it never deallocates), so callers cache the pointer once
// and bump forever. Exposition is Prometheus text format; snapshot() returns
// a plain-value copy whose merge() mirrors RunningStats::merge for
// aggregating registries from parallel experiments.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/annotations.hpp"
#include "sim/stats.hpp"

namespace cricket::obs {

/// Metric labels as key=value pairs; canonicalized (sorted by key) on
/// registration so {a=1,b=2} and {b=2,a=1} name the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Settable signed gauge (queue depths, outstanding calls).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d) noexcept {
    v_.fetch_sub(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Concurrent log2 histogram: the atomic twin of sim::Log2Histogram.
/// observe() is two relaxed fetch_adds plus a bit_width; snapshot() imports
/// the buckets into a plain Log2Histogram for quantile math.
class Histogram {
 public:
  void observe(std::uint64_t value) noexcept {
    buckets_[sim::Log2Histogram::bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Plain-value copy for quantiles/merging. Buckets are read individually
  /// (relaxed), so a snapshot taken concurrently with observes is a valid
  /// histogram of "some subset" of the samples, never a torn one.
  [[nodiscard]] sim::Log2Histogram snapshot() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[sim::Log2Histogram::bucket_count()]{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Plain-value copy of a registry at one instant, keyed by the canonical
/// series name (`name{label="v",...}`). merge() sums counters/histograms and
/// keeps the latest gauge, mirroring RunningStats::merge for per-experiment
/// aggregation.
struct Snapshot {
  struct Hist {
    sim::Log2Histogram hist;
    std::uint64_t sum = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Hist> histograms;

  void merge(const Snapshot& other);
};

/// Get-or-create registry of named instruments. Registration locks; the
/// returned references are bump-without-lock and live as long as the
/// registry. One process-wide instance is at global(); tests construct their
/// own for deterministic golden output.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The first registration of a family name records `help`
  /// for exposition; later calls may pass an empty help.
  Counter& counter(const std::string& name, Labels labels = {},
                   const std::string& help = "") CRICKET_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, Labels labels = {},
               const std::string& help = "") CRICKET_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name, Labels labels = {},
                       const std::string& help = "") CRICKET_EXCLUDES(mu_);

  /// "vnet0", "vnet1", ... — distinct instance labels for objects that each
  /// want their own series (transports, devices).
  [[nodiscard]] std::string unique_label(const std::string& prefix)
      CRICKET_EXCLUDES(mu_);

  [[nodiscard]] Snapshot snapshot() const CRICKET_EXCLUDES(mu_);

  /// Prometheus text exposition (# HELP / # TYPE / series lines; histograms
  /// as cumulative _bucket{le=...} + _sum + _count). Only occupied buckets
  /// plus "+Inf" are emitted — cumulative counts stay correct.
  [[nodiscard]] std::string prometheus_text() const CRICKET_EXCLUDES(mu_);

  /// Zeroes every instrument in place. References handed out earlier stay
  /// valid — nothing is deallocated.
  void reset() CRICKET_EXCLUDES(mu_);

  /// The process-wide registry all instrumented layers bump into.
  static Registry& global();

 private:
  struct Key {
    std::string name;
    Labels labels;  // sorted by key
    bool operator<(const Key& o) const {
      return name != o.name ? name < o.name : labels < o.labels;
    }
  };

  mutable sim::Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ CRICKET_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ CRICKET_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> hists_ CRICKET_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ CRICKET_GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> label_seq_ CRICKET_GUARDED_BY(mu_);
};

/// Canonical series name: `name{k="v",...}`, or just `name` without labels.
[[nodiscard]] std::string series_name(const std::string& name,
                                      const Labels& labels);

}  // namespace cricket::obs
