// Live migration (src/migrate): the checkpoint version gate, the migration
// image codec, the MIGRATE transfer protocol's bounds and idempotence, the
// typed admission freeze, and end-to-end tenant migration between two
// CricketServers — including exactly-once preservation across the redirect
// flip (migrated duplicate-request cache) and the whole dance under
// faultnet drop/partition/reset faults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cricket/async_api.hpp"
#include "cricket/checkpoint.hpp"
#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/error.hpp"
#include "cudart/local_api.hpp"
#include "fatbin/cubin.hpp"
#include "faultnet/fault_spec.hpp"
#include "faultnet/faulty_transport.hpp"
#include "migrate/coordinator.hpp"
#include "migrate/redirect.hpp"
#include "migrate/service.hpp"
#include "migrate/state.hpp"
#include "obs/metrics.hpp"
#include "rpc/transport.hpp"
#include "sim/rng.hpp"
#include "tenancy/session_manager.hpp"

namespace cricket::migrate {
namespace {

using namespace std::chrono_literals;
using core::CricketServer;
using core::RemoteCudaApi;

/// MigrationTarget's wire scalars arrive tainted; tests that drive the
/// procedure bodies directly wrap plain values the same way the decoder
/// does.
xdr::Untrusted<std::uint64_t> U(std::uint64_t v) {
  return xdr::Untrusted<std::uint64_t>(v);
}
using core::SessionExport;
using cuda::Error;

// A one-parameter marker kernel: the registered handler counts executions,
// which is how every exactly-once assertion below is grounded.
fatbin::CubinImage mark_image() {
  fatbin::CubinImage img;
  img.sm_arch = 75;
  fatbin::KernelDescriptor k;
  k.name = "mig_mark";
  k.params = {{.size = 4, .align = 4, .is_pointer = false}};
  img.kernels.push_back(k);
  img.code = fatbin::make_pseudo_isa(64, 3);
  return img;
}

void register_mark(gpusim::KernelRegistry& reg, std::atomic<std::uint64_t>* n) {
  reg.register_kernel("mig_mark", [n](gpusim::LaunchContext& ctx) {
    (void)ctx.param<std::uint32_t>(0);
    n->fetch_add(1);
    ctx.charge_flops(1.0);
  });
}

std::vector<std::uint8_t> mark_params(std::uint32_t tag) {
  std::vector<std::uint8_t> p(4);
  std::memcpy(p.data(), &tag, 4);
  return p;
}

// ------------------------- checkpoint version gate --------------------------

TEST(CheckpointVersioning, FutureVersionIsDistinctFromCorruption) {
  gpusim::DeviceSnapshot snap;
  snap.next_id = 3;
  auto blob = core::encode_checkpoint(snap);
  ASSERT_GE(blob.size(), 8u);

  // Header is magic "CKPT" + big-endian version word; byte 7 is its LSB.
  auto future = blob;
  future[7] = 9;
  EXPECT_THROW((void)core::decode_checkpoint(future),
               core::CheckpointVersionError);

  // Version 0 is nonsense, not "from the future": generic error only.
  auto zero = blob;
  zero[4] = zero[5] = zero[6] = zero[7] = 0;
  try {
    (void)core::decode_checkpoint(zero);
    FAIL() << "version 0 accepted";
  } catch (const core::CheckpointVersionError&) {
    FAIL() << "version 0 misreported as future-versioned";
  } catch (const core::CheckpointError&) {
  }

  // Body corruption under the current version: generic error only (the
  // checksum gate), never the version error a rolling upgrade keys on.
  auto corrupt = blob;
  corrupt.back() ^= 0xFF;
  try {
    (void)core::decode_checkpoint(corrupt);
    FAIL() << "corrupted checkpoint accepted";
  } catch (const core::CheckpointVersionError&) {
    FAIL() << "corruption misreported as future-versioned";
  } catch (const core::CheckpointError&) {
  }
}

TEST(CheckpointVersioning, TimelinesAndHandleTablesRoundTripLosslessly) {
  std::atomic<std::uint64_t> execs{0};
  auto node = cuda::GpuNode::make_a100();
  register_mark(node->registry(), &execs);
  auto& dev = node->device(0);

  const auto stream = dev.stream_create();
  const auto e1 = dev.event_create();
  const auto e2 = dev.event_create();
  dev.event_record(e1, stream);
  const auto mod = dev.load_module(fatbin::cubin_serialize(mark_image()));
  const auto fn = dev.get_function(mod, "mig_mark");
  (void)dev.launch(fn, {1, 1, 1}, {1, 1, 1}, 0, stream, mark_params(1));
  dev.event_record(e2, stream);
  dev.stream_synchronize(stream);

  const auto snap = dev.snapshot();
  const auto decoded = core::decode_checkpoint(core::encode_checkpoint(snap));

  // Stream/event timelines are value-compared: ids AND timestamps.
  EXPECT_EQ(decoded.streams, snap.streams);
  EXPECT_EQ(decoded.events, snap.events);
  EXPECT_EQ(decoded.next_id, snap.next_id);
  // Module handle table: ids, images, and global-symbol placement.
  ASSERT_EQ(decoded.modules.size(), snap.modules.size());
  for (std::size_t i = 0; i < snap.modules.size(); ++i) {
    EXPECT_EQ(decoded.modules[i].id, snap.modules[i].id);
    EXPECT_EQ(decoded.modules[i].image, snap.modules[i].image);
    EXPECT_EQ(decoded.modules[i].globals, snap.modules[i].globals);
  }
  // Function handle table: the FuncId a client holds must survive.
  ASSERT_EQ(decoded.functions.size(), snap.functions.size());
  for (std::size_t i = 0; i < snap.functions.size(); ++i) {
    EXPECT_EQ(decoded.functions[i].id, snap.functions[i].id);
    EXPECT_EQ(decoded.functions[i].module, snap.functions[i].module);
    EXPECT_EQ(decoded.functions[i].kernel_name, snap.functions[i].kernel_name);
  }
}

// ------------------------- migration image codec ----------------------------

MigrationImage sample_image() {
  MigrationImage img;
  img.tenant.spec.name = "alice";
  img.tenant.spec.weight = 3;
  img.tenant.spec.priority = 1;
  img.tenant.spec.quota = {.device_mem_bytes = 123,
                           .max_outstanding_calls = 4,
                           .bytes_per_sec = 5,
                           .burst_bytes = 6,
                           .max_sessions = 7};
  img.tenant.bucket_tokens = 55;
  img.tenant.mem_used_bytes = 99;
  img.tenant.mem_peak_bytes = 100;
  img.tenant.calls_admitted = 101;
  img.tenant.calls_rejected = 2;
  img.tenant.device_ns = 103;
  img.tenant.sessions_opened = 5;
  img.tenant.sessions_closed = 4;

  SessionExport s;
  s.session_id = 42;
  s.client_id = 0xC11E17;
  s.state.next_id = 10;
  s.state.allocations.push_back({0x1000, 4, {1, 2, 3, 4}});
  s.state.modules.push_back({2, {9, 9, 9}, {{"g_bias", 0x500}}});
  s.state.functions.push_back({3, 2, "mig_mark"});
  s.state.streams = {{0, 111}, {5, 222}};
  s.state.events = {{6, 333}};
  s.allocations = {{0x1000, 4}};
  s.modules = {2};
  s.streams = {5};
  s.events = {6};
  s.drc.push_back({0xABCDEFull, 9, {1, 2, 3, 4, 5}});
  img.sessions.push_back(std::move(s));
  return img;
}

TEST(MigrationImageCodec, RoundTripIsLossless) {
  const MigrationImage img = sample_image();
  const MigrationImage out = decode_image(encode_image(img));

  EXPECT_EQ(out.tenant.spec.name, img.tenant.spec.name);
  EXPECT_EQ(out.tenant.spec.weight, img.tenant.spec.weight);
  EXPECT_EQ(out.tenant.spec.priority, img.tenant.spec.priority);
  EXPECT_EQ(out.tenant.spec.quota.device_mem_bytes, 123u);
  EXPECT_EQ(out.tenant.spec.quota.max_outstanding_calls, 4u);
  EXPECT_EQ(out.tenant.spec.quota.bytes_per_sec, 5u);
  EXPECT_EQ(out.tenant.spec.quota.burst_bytes, 6u);
  EXPECT_EQ(out.tenant.spec.quota.max_sessions, 7u);
  EXPECT_EQ(out.tenant.bucket_tokens, 55u);
  EXPECT_EQ(out.tenant.mem_used_bytes, 99u);
  EXPECT_EQ(out.tenant.mem_peak_bytes, 100u);
  EXPECT_EQ(out.tenant.calls_admitted, 101u);
  EXPECT_EQ(out.tenant.calls_rejected, 2u);
  EXPECT_EQ(out.tenant.device_ns, 103u);
  EXPECT_EQ(out.tenant.sessions_opened, 5u);
  EXPECT_EQ(out.tenant.sessions_closed, 4u);

  ASSERT_EQ(out.sessions.size(), 1u);
  const auto& s = out.sessions[0];
  const auto& in = img.sessions[0];
  EXPECT_EQ(s.session_id, 42u);
  EXPECT_EQ(s.client_id, 0xC11E17u);
  EXPECT_EQ(s.state.next_id, in.state.next_id);
  ASSERT_EQ(s.state.allocations.size(), 1u);
  EXPECT_EQ(s.state.allocations[0].addr, 0x1000u);
  EXPECT_EQ(s.state.allocations[0].bytes, in.state.allocations[0].bytes);
  ASSERT_EQ(s.state.modules.size(), 1u);
  EXPECT_EQ(s.state.modules[0].image, in.state.modules[0].image);
  EXPECT_EQ(s.state.modules[0].globals, in.state.modules[0].globals);
  ASSERT_EQ(s.state.functions.size(), 1u);
  EXPECT_EQ(s.state.functions[0].kernel_name, "mig_mark");
  EXPECT_EQ(s.state.streams, in.state.streams);
  EXPECT_EQ(s.state.events, in.state.events);
  EXPECT_EQ(s.allocations, in.allocations);
  EXPECT_EQ(s.modules, in.modules);
  EXPECT_EQ(s.streams, in.streams);
  EXPECT_EQ(s.events, in.events);
  ASSERT_EQ(s.drc.size(), 1u);
  EXPECT_EQ(s.drc[0].client, 0xABCDEFull);
  EXPECT_EQ(s.drc[0].xid, 9u);
  EXPECT_EQ(s.drc[0].reply, in.drc[0].reply);
}

TEST(MigrationImageCodec, FutureVersionAndCorruptionAreDistinct) {
  auto blob = encode_image(sample_image());
  ASSERT_GE(blob.size(), 8u);

  auto future = blob;
  future[7] = 0x7F;  // header: magic "MIGR" + big-endian version word
  EXPECT_THROW((void)decode_image(future), MigrationVersionError);

  auto corrupt = blob;
  corrupt[blob.size() / 2] ^= 0x5A;
  try {
    (void)decode_image(corrupt);
    FAIL() << "corrupted image accepted";
  } catch (const MigrationVersionError&) {
    FAIL() << "corruption misreported as future-versioned";
  } catch (const MigrationError&) {
  }

  // Truncations anywhere must throw cleanly, never crash or over-read.
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    EXPECT_THROW(
        (void)decode_image(std::span<const std::uint8_t>(blob.data(), len)),
        MigrationError)
        << "prefix length " << len;
  }
}

TEST(MigrationImageCodec, MutatedImagesThrowCleanly) {
  const auto blob = encode_image(sample_image());
  sim::Xoshiro256ss rng(2024);
  for (int round = 0; round < 300; ++round) {
    auto mutant = blob;
    const int flips = 1 + static_cast<int>(rng.next() % 4);
    for (int f = 0; f < flips; ++f)
      mutant[rng.next() % mutant.size()] ^= static_cast<std::uint8_t>(
          1u << (rng.next() % 8));
    try {
      const auto out = decode_image(mutant);
      // Surviving a mutation is fine (e.g. the flip cancelled out) as long
      // as the result is structurally sane.
      EXPECT_FALSE(out.tenant.spec.name.empty());
    } catch (const MigrationError&) {
      // Every rejected mutant must land here — anything else (bad_alloc
      // from a hostile length, a raw XdrError) is a bug.
    }
  }
}

// ------------------------- atomic device merge ------------------------------

TEST(DeviceRestoreMerge, RefusalLeavesDeviceUntouched) {
  // Donor device builds a realistic snapshot: an allocation, a module, and
  // a function handle into it.
  std::atomic<std::uint64_t> donor_execs{0};
  auto donor_node = cuda::GpuNode::make_a100();
  register_mark(donor_node->registry(), &donor_execs);
  auto& donor = donor_node->device(0);
  const auto ptr = donor.malloc(512);
  donor.memset(ptr, 0x5A, 512);
  const auto mod = donor.load_module(fatbin::cubin_serialize(mark_image()));
  const auto fn = donor.get_function(mod, "mig_mark");
  const auto snap = donor.snapshot();

  std::atomic<std::uint64_t> execs{0};
  auto host_node = cuda::GpuNode::make_a100();
  register_mark(host_node->registry(), &execs);
  auto& host = host_node->device(0);
  const auto bytes_before = host.memory().bytes_in_use();
  const auto count_before = host.memory().allocation_count();

  // The poisoned record sits at the END of the validation order (function
  // resolution), after the allocations and modules it rides with have all
  // passed their checks — exactly where a validate-as-you-mutate merge
  // would leave half the snapshot behind.
  auto bad = snap;
  ASSERT_FALSE(bad.functions.empty());
  bad.functions[0].kernel_name = "no_such_kernel";
  EXPECT_THROW(host.restore_merge(bad), gpusim::DeviceError);
  EXPECT_EQ(host.memory().bytes_in_use(), bytes_before);
  EXPECT_EQ(host.memory().allocation_count(), count_before);

  // Nothing (module included) landed: the intact snapshot still merges
  // collision-free, and the merged function handle is live.
  host.restore_merge(snap);
  EXPECT_EQ(host.memory().allocation_count(), count_before + 1);
  (void)host.launch(fn, {1, 1, 1}, {1, 1, 1}, 0, 0, mark_params(1));
  host.device_synchronize();
  EXPECT_EQ(execs.load(), 1u);
}

TEST(DeviceRestoreMerge, MultiSnapshotMergeIsAllOrNothing) {
  auto donor_node = cuda::GpuNode::make_a100();
  auto& donor = donor_node->device(0);
  (void)donor.malloc(512);
  const auto good = donor.snapshot();

  auto host_node = cuda::GpuNode::make_a100();
  auto& host = host_node->device(0);

  // Second snapshot collides with the first (same addresses, same ids):
  // the batch must refuse wholesale, leaving no trace of the first.
  const gpusim::DeviceSnapshot* both[] = {&good, &good};
  EXPECT_THROW(
      host.restore_merge(std::span<const gpusim::DeviceSnapshot* const>(both)),
      gpusim::DeviceError);
  EXPECT_EQ(host.memory().allocation_count(), 0u);

  // The same snapshot alone is fine — the refusal above really was the
  // cross-snapshot check, not a bad image.
  const gpusim::DeviceSnapshot* one[] = {&good};
  host.restore_merge(std::span<const gpusim::DeviceSnapshot* const>(one));
  EXPECT_EQ(host.memory().allocation_count(), 1u);
}

// --------------------------- adoption staging -------------------------------

TEST(AdoptionStaging, BundlesAreKeyedByClientIdentity) {
  auto node = cuda::GpuNode::make_a100();
  CricketServer server(*node);
  SessionExport a;
  a.session_id = 1;
  a.client_id = 111;
  SessionExport b;
  b.session_id = 2;
  b.client_id = 222;
  std::vector<SessionExport> bundles;
  bundles.push_back(std::move(a));
  bundles.push_back(std::move(b));
  server.stage_adoption("alice", std::move(bundles));

  // Neither a wrong tenant nor a wrong client identity can claim a bundle.
  EXPECT_FALSE(server.take_adoption("bob", 111).has_value());
  EXPECT_FALSE(server.take_adoption("alice", 999).has_value());
  // Reconnect order is the clients', not the staging order: the
  // second-staged client arriving first still gets its own bundle.
  const auto for_b = server.take_adoption("alice", 222);
  ASSERT_TRUE(for_b.has_value());
  EXPECT_EQ(for_b->session_id, 2u);
  const auto for_a = server.take_adoption("alice", 111);
  ASSERT_TRUE(for_a.has_value());
  EXPECT_EQ(for_a->session_id, 1u);
  EXPECT_FALSE(server.take_adoption("alice", 111).has_value());
}

// ------------------------- transfer protocol ------------------------------

TEST(MigrationTargetProtocol, BoundsAndOrderingEnforcedBeforeBuffering) {
  auto node = cuda::GpuNode::make_a100();
  CricketServer server(*node);  // no SessionManager on purpose
  MigrationTarget target(server, {.max_image_bytes = 1024});

  // Hostile declared sizes die in mig_begin, before any allocation.
  EXPECT_EQ(target.begin("", U(10)).err, kMigBadImage);
  EXPECT_EQ(target.begin("alice", U(0)).err, kMigTooLarge);
  EXPECT_EQ(target.begin("alice", U(1025)).err, kMigTooLarge);
  EXPECT_EQ(target.begin("alice", U(~0ull)).err, kMigTooLarge);

  const auto opened = target.begin("alice", U(8));
  ASSERT_EQ(opened.err, kMigOk);
  const std::vector<std::uint8_t> half = {1, 2, 3, 4};

  EXPECT_EQ(target.chunk(U(opened.ticket + 99), U(0), half), kMigBadTicket);
  EXPECT_EQ(target.chunk(U(opened.ticket), U(4), half), kMigOutOfOrder);  // gap
  ASSERT_EQ(target.chunk(U(opened.ticket), U(0), half), kMigOk);
  // Retransmission of an already-received range is acknowledged, not
  // re-appended; a half-overlapping one is refused.
  EXPECT_EQ(target.chunk(U(opened.ticket), U(0), half), kMigOk);
  EXPECT_EQ(target.chunk(U(opened.ticket), U(2), half), kMigOutOfOrder);
  // Running past the declared total is refused.
  EXPECT_EQ(target.chunk(U(opened.ticket), U(4), {1, 2, 3, 4, 5}), kMigOverrun);
  // Committing before all bytes arrived is refused.
  EXPECT_EQ(target.commit(U(opened.ticket), 0), kMigOutOfOrder);
  ASSERT_EQ(target.chunk(U(opened.ticket), U(4), half), kMigOk);

  std::vector<std::uint8_t> all = {1, 2, 3, 4, 1, 2, 3, 4};
  EXPECT_EQ(target.commit(U(opened.ticket), fnv64(all) ^ 1), kMigChecksum);
  // Checksum fine, but this server has no SessionManager to import into.
  EXPECT_EQ(target.commit(U(opened.ticket), fnv64(all)), kMigNoTenants);
  EXPECT_EQ(target.committed_count(), 0u);

  // Aborting unknown tickets is a retry-safe no-op.
  EXPECT_EQ(target.abort(U(12345)), kMigOk);
  EXPECT_EQ(target.abort(U(opened.ticket)), kMigOk);
  EXPECT_EQ(target.chunk(U(opened.ticket), U(0), half), kMigBadTicket);
}

TEST(MigrationTargetProtocol, ChunkOffsetNearU64MaxSaturatesAndIsRefused) {
  auto node = cuda::GpuNode::make_a100();
  CricketServer server(*node);
  MigrationTarget target(server, {.max_image_bytes = 1024});
  const auto opened = target.begin("alice", U(64));
  ASSERT_EQ(opened.err, kMigOk);
  const std::vector<std::uint8_t> chunk(16, 0x11);
  ASSERT_EQ(target.chunk(U(opened.ticket), U(0), chunk), kMigOk);

  // An offset near UINT64_MAX is neither the append position nor inside an
  // already-received range, so it is refused — and because the offset never
  // leaves the taint domain, the duplicate-range comparison
  // `offset + data.size() <= received` saturates rather than wrapping to a
  // small value that could masquerade as an acknowledged retransmission.
  EXPECT_EQ(target.chunk(U(opened.ticket), U(~0ull - 8), chunk),
            kMigOutOfOrder);

  // The transfer is undamaged and resumable at the true append position.
  EXPECT_EQ(target.chunk(U(opened.ticket), U(16), chunk), kMigOk);
  EXPECT_EQ(target.abort(U(opened.ticket)), kMigOk);
}

TEST(MigrationTargetProtocol, ConcurrentTransfersAreBounded) {
  auto node = cuda::GpuNode::make_a100();
  CricketServer server(*node);
  MigrationTarget target(
      server, {.max_image_bytes = 1024, .max_pending_transfers = 2});

  const auto t1 = target.begin("alice", U(8));
  ASSERT_EQ(t1.err, kMigOk);
  ASSERT_EQ(target.begin("bob", U(8)).err, kMigOk);
  EXPECT_EQ(target.pending_count(), 2u);
  // A third open ticket would let abandoned transfers pin unbounded buffer
  // space; it is refused before anything is allocated.
  EXPECT_EQ(target.begin("carol", U(8)).err, kMigBusy);
  // Aborting one frees its slot.
  EXPECT_EQ(target.abort(U(t1.ticket)), kMigOk);
  EXPECT_EQ(target.pending_count(), 1u);
  EXPECT_EQ(target.begin("carol", U(8)).err, kMigOk);
}

struct TargetImportFixture : ::testing::Test {
  TargetImportFixture()
      : node(cuda::GpuNode::make_paper_testbed()),
        tenants(node->clock(),
                {.device_count =
                     static_cast<std::uint32_t>(node->device_count()),
                 .default_tenant = ""}) {
    core::ServerOptions options;
    options.tenants = &tenants;
    server = std::make_unique<CricketServer>(*node, options);
    target = std::make_unique<MigrationTarget>(*server);
  }

  std::int32_t upload(const std::vector<std::uint8_t>& blob,
                      std::uint64_t* ticket_out = nullptr) {
    const auto opened = target->begin("alice", U(blob.size()));
    if (opened.err != kMigOk) return opened.err;
    if (ticket_out != nullptr) *ticket_out = opened.ticket;
    const auto err = target->chunk(U(opened.ticket), U(0), blob);
    if (err != kMigOk) return err;
    return target->commit(U(opened.ticket), fnv64(blob));
  }

  std::unique_ptr<cuda::GpuNode> node;
  tenancy::SessionManager tenants;
  std::unique_ptr<CricketServer> server;
  std::unique_ptr<MigrationTarget> target;
};

TEST_F(TargetImportFixture, CommitImportsPinsAndIsIdempotent) {
  auto img = sample_image();
  img.sessions.clear();  // quota import only; device merge is exercised e2e
  std::uint64_t ticket = 0;
  ASSERT_EQ(upload(encode_image(img), &ticket), kMigOk);
  EXPECT_EQ(target->committed_count(), 1u);

  const auto alice = tenants.find("alice");
  ASSERT_TRUE(alice.has_value());
  // Quota, accounting, and bucket state came across.
  EXPECT_EQ(tenants.stats(*alice).mem_used_bytes, 99u);
  EXPECT_EQ(tenants.stats(*alice).calls_admitted, 101u);
  // Pinned to the reserved spare: the node's last device.
  EXPECT_EQ(tenants.shard_device(*alice),
            static_cast<std::uint32_t>(node->device_count()) - 1);

  // Lost-reply re-commit: success again, nothing imported twice.
  EXPECT_EQ(target->commit(U(ticket), 0), kMigOk);
  EXPECT_EQ(target->committed_count(), 1u);
  // Abort after commit tells the coordinator the tenant lives here.
  EXPECT_EQ(target->abort(U(ticket)), kMigCommitted);
}

TEST_F(TargetImportFixture, BadAndFutureImagesRefusedAtCommit) {
  // Image names a different tenant than the ticket was opened for.
  auto img = sample_image();
  img.sessions.clear();
  img.tenant.spec.name = "mallory";
  EXPECT_EQ(upload(encode_image(img)), kMigBadImage);

  // Future-versioned image: the distinct upgrade-ordering error.
  auto future = encode_image(sample_image());
  future[7] = 0x7F;
  EXPECT_EQ(upload(future), kMigVersion);

  // Garbage: generic refusal.
  std::vector<std::uint8_t> junk(64, 0xAA);
  EXPECT_EQ(upload(junk), kMigBadImage);
  EXPECT_EQ(target->committed_count(), 0u);
  EXPECT_FALSE(tenants.find("alice").has_value());
}

TEST_F(TargetImportFixture, CollidingSessionRefusesWholeImageAtomically) {
  // Discover the pinned device's heap base with a scratch allocation.
  auto& dev = node->device(node->device_count() - 1);
  const auto base = dev.malloc(4);
  dev.free(base);

  auto img = sample_image();
  img.sessions.clear();
  core::SessionExport s1;
  s1.session_id = 1;
  s1.client_id = 11;
  s1.state.next_id = 1;
  s1.state.allocations.push_back({base, 4, {1, 2, 3, 4}});
  core::SessionExport s2;
  s2.session_id = 2;
  s2.client_id = 22;
  s2.state.next_id = 1;
  // Overlaps s1's allocation once padded to allocator granularity — a
  // collision only visible ACROSS the image's sessions, and only after s1
  // passed validation. The whole image must refuse with s1 rolled off (or
  // rather: never applied to) the device.
  s2.state.allocations.push_back({base + 128, 4, {5, 6, 7, 8}});
  img.sessions.push_back(std::move(s1));
  img.sessions.push_back(std::move(s2));

  EXPECT_EQ(upload(encode_image(img)), kMigDevice);
  EXPECT_EQ(dev.memory().allocation_count(), 0u);
  EXPECT_EQ(target->committed_count(), 0u);
  // The tenant was not registered either: commit is all-or-nothing.
  EXPECT_FALSE(tenants.find("alice").has_value());
}

// ----------------------- end-to-end two-server fleet ------------------------

rpc::RetryPolicy deep_retry(std::chrono::nanoseconds attempt_timeout = 150ms) {
  rpc::RetryPolicy retry;
  retry.enabled = true;
  retry.max_attempts = 24;
  retry.attempt_timeout = attempt_timeout;
  retry.deadline = 120s;  // generous: TSan runs are slow
  return retry;
}

/// Two full servers with independent nodes and SessionManagers, linked by a
/// RedirectingConnector the coordinator flips at commit. Every dial spawns a
/// fresh serve thread; links optionally run through FaultyTransport (the
/// c2s member faults requests, s2c faults replies, per server).
struct MigrateFixture : ::testing::Test {
  MigrateFixture()
      : source_node(cuda::GpuNode::make_paper_testbed()),
        target_node(cuda::GpuNode::make_paper_testbed()),
        source_tenants(source_node->clock(),
                       {.device_count = static_cast<std::uint32_t>(
                            source_node->device_count()),
                        .default_tenant = ""}),
        target_tenants(target_node->clock(),
                       {.device_count = static_cast<std::uint32_t>(
                            target_node->device_count()),
                        .default_tenant = ""}) {
    register_mark(source_node->registry(), &source_execs);
    register_mark(target_node->registry(), &target_execs);
    core::ServerOptions so;
    so.tenants = &source_tenants;
    // At-most-once is required by every retrying client below, and the
    // exactly-once-across-the-flip assertions hinge on migrating its cache.
    so.at_most_once = true;
    source_server = std::make_unique<CricketServer>(*source_node, so);
    core::ServerOptions to;
    to.tenants = &target_tenants;
    to.at_most_once = true;
    target_server = std::make_unique<CricketServer>(*target_node, to);
    redirect = std::make_unique<RedirectingConnector>(source_factory());
  }

  ~MigrateFixture() override {
    apis.clear();
    async_apis.clear();
    mig_client.reset();
    if (mig_thread.joinable()) mig_thread.join();
    std::vector<std::thread> pending;
    {
      const std::lock_guard<std::mutex> lock(threads_mu);
      pending.swap(threads);
    }
    for (auto& t : pending)
      if (t.joinable()) t.join();
  }

  using Faults = std::optional<faultnet::FaultSpec>;

  RedirectingConnector::Factory link_factory(CricketServer& server,
                                             const Faults* c2s,
                                             const Faults* s2c) {
    return [this, &server, c2s, s2c]() -> std::unique_ptr<rpc::Transport> {
      auto [client_end, server_end] = rpc::make_pipe_pair();
      std::unique_ptr<rpc::Transport> c = std::move(client_end);
      std::unique_ptr<rpc::Transport> s = std::move(server_end);
      const std::uint64_t n = link_seq.fetch_add(1);
      if (c2s->has_value())
        c = std::make_unique<faultnet::FaultyTransport>(
            std::move(c), (*c2s)->with_seed((*c2s)->seed ^ (2 * n + 1)));
      if (s2c->has_value())
        s = std::make_unique<faultnet::FaultyTransport>(
            std::move(s), (*s2c)->with_seed((*s2c)->seed ^ (2 * n + 2)));
      {
        const std::lock_guard<std::mutex> lock(threads_mu);
        threads.push_back(server.serve_async(std::move(s)));
      }
      return c;
    };
  }

  RedirectingConnector::Factory source_factory() {
    return link_factory(*source_server, &source_c2s, &source_s2c);
  }
  RedirectingConnector::Factory target_factory() {
    return link_factory(*target_server, &target_c2s, &target_s2c);
  }

  tenancy::TenantId add_source(const std::string& name,
                               tenancy::TenantQuota quota = {}) {
    tenancy::TenantSpec spec;
    spec.name = name;
    spec.quota = quota;
    return source_tenants.register_tenant(spec);
  }

  RemoteCudaApi& connect(const std::string& tenant,
                         std::optional<rpc::RetryPolicy> retry = deep_retry()) {
    core::ClientConfig config;
    config.tenant = tenant;
    if (retry) config.retry = *retry;
    config.reconnect = redirect->factory();
    apis.push_back(std::make_unique<RemoteCudaApi>(
        redirect->dial(), source_node->clock(), std::move(config)));
    return *apis.back();
  }

  MigrationReport do_migrate(Faults control = std::nullopt,
                             MigrationOptions options = {}) {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    std::unique_ptr<rpc::Transport> c = std::move(client_end);
    std::unique_ptr<rpc::Transport> s = std::move(server_end);
    if (control) {
      c = std::make_unique<faultnet::FaultyTransport>(
          std::move(c), control->with_seed(control->seed ^ 0xC0C0));
      s = std::make_unique<faultnet::FaultyTransport>(
          std::move(s), control->with_seed(control->seed ^ 0x50C0));
    }
    mig_target = std::make_unique<MigrationTarget>(*target_server);
    mig_thread = mig_target->serve_async(std::move(s));
    rpc::ClientOptions client_options;
    client_options.retry = deep_retry();
    mig_client = make_migrate_client(std::move(c), client_options);
    MigrationCoordinator coordinator(*source_server, *mig_client,
                                     redirect.get(), target_factory(),
                                     options);
    return coordinator.migrate("alice");
  }

  std::unique_ptr<cuda::GpuNode> source_node;
  std::unique_ptr<cuda::GpuNode> target_node;
  tenancy::SessionManager source_tenants;
  tenancy::SessionManager target_tenants;
  std::unique_ptr<CricketServer> source_server;
  std::unique_ptr<CricketServer> target_server;
  std::unique_ptr<RedirectingConnector> redirect;
  std::atomic<std::uint64_t> source_execs{0};
  std::atomic<std::uint64_t> target_execs{0};

  Faults source_c2s, source_s2c, target_c2s, target_s2c;
  std::atomic<std::uint64_t> link_seq{0};

  std::unique_ptr<MigrationTarget> mig_target;
  std::unique_ptr<rpc::RpcClient> mig_client;
  std::thread mig_thread;

  std::mutex threads_mu;
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<RemoteCudaApi>> apis;
  std::vector<std::unique_ptr<core::AsyncRemoteCudaApi>> async_apis;
};

TEST_F(MigrateFixture, DrainFreezeRepliesTypedRetryableAndPreDecode) {
  const auto alice = add_source("alice");
  auto& api = connect("alice", std::nullopt);  // no retry: see the raw reply
  int n = 0;
  ASSERT_EQ(api.get_device_count(n), Error::kSuccess);

  obs::Counter& decodes =
      obs::Registry::global().counter("cricket_rpc_args_decode_total", {});
  source_tenants.begin_drain(alice);
  const auto decodes_before = decodes.value();
  // The freeze answers with the typed migrating status, pre-decode.
  EXPECT_EQ(api.get_device_count(n), Error::kMigrating);
  EXPECT_EQ(decodes.value(), decodes_before);
  // Not sticky, and the connection survives the rejection.
  EXPECT_EQ(api.get_device_count(n), Error::kMigrating);
  source_tenants.end_drain(alice);
  EXPECT_EQ(api.get_device_count(n), Error::kSuccess);
}

TEST_F(MigrateFixture, RedirectingConnectorFlipsAtomically) {
  EXPECT_EQ(redirect->flips(), 0u);
  auto t1 = redirect->dial();  // lands on the source fleet
  ASSERT_NE(t1, nullptr);
  redirect->set_target(target_factory());
  EXPECT_EQ(redirect->flips(), 1u);
  auto t2 = redirect->dial();
  ASSERT_NE(t2, nullptr);
  t1->shutdown();
  t2->shutdown();
}

TEST_F(MigrateFixture, HappyPathPreservesDataHandlesQuotaExactlyOnce) {
  tenancy::TenantQuota quota;
  quota.device_mem_bytes = 8u << 20;
  add_source("alice", quota);
  auto& api = connect("alice");

  cuda::DevPtr buf = 0;
  ASSERT_EQ(api.malloc(buf, 4096), Error::kSuccess);
  std::vector<std::uint8_t> data(4096);
  sim::Xoshiro256ss rng(7);
  rng.fill_bytes(data);
  ASSERT_EQ(api.memcpy_h2d(buf, data), Error::kSuccess);
  cuda::ModuleId mod = 0;
  const auto image = fatbin::cubin_serialize(mark_image());
  ASSERT_EQ(api.module_load(mod, image), Error::kSuccess);
  cuda::FuncId fn = 0;
  ASSERT_EQ(api.module_get_function(fn, mod, "mig_mark"), Error::kSuccess);
  cuda::StreamId stream = 0;
  ASSERT_EQ(api.stream_create(stream), Error::kSuccess);
  cuda::EventId event = 0;
  ASSERT_EQ(api.event_create(event), Error::kSuccess);
  ASSERT_EQ(api.event_record(event, stream), Error::kSuccess);
  ASSERT_EQ(api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0, mark_params(1)),
            Error::kSuccess);
  ASSERT_EQ(api.device_synchronize(), Error::kSuccess);
  EXPECT_EQ(source_execs.load(), 1u);
  const auto used_before =
      source_tenants.stats(*source_tenants.find("alice")).mem_used_bytes;
  obs::Counter& redirects = obs::Registry::global().counter(
      "cricket_rpc_migrating_redirects_total", {});
  const auto redirects_before = redirects.value();

  const auto report = do_migrate();
  ASSERT_TRUE(report.committed) << report.error;
  EXPECT_EQ(report.phase, MigrationPhase::kFlip);
  EXPECT_EQ(report.sessions, 1u);
  EXPECT_GT(report.image_bytes, 4096u);  // at least the allocation contents
  EXPECT_GT(report.chunks, 0u);
  EXPECT_EQ(redirect->flips(), 1u);

  // The same client object keeps working: its next call is bounced with
  // kMigrating, reconnects through the flipped redirect, and lands on the
  // target — where the old pointer still holds the old bytes.
  std::vector<std::uint8_t> out(4096);
  ASSERT_EQ(api.memcpy_d2h(out, buf), Error::kSuccess);
  EXPECT_EQ(out, data);
  EXPECT_GT(redirects.value(), redirects_before);

  // Old module/function/stream/event handles survived the move.
  ASSERT_EQ(api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0, mark_params(2)),
            Error::kSuccess);
  ASSERT_EQ(api.device_synchronize(), Error::kSuccess);
  EXPECT_EQ(api.stream_synchronize(stream), Error::kSuccess);
  EXPECT_EQ(api.event_record(event, stream), Error::kSuccess);
  // Exactly-once: one launch ran on the source, one on the target, and the
  // migration re-executed nothing.
  EXPECT_EQ(source_execs.load(), 1u);
  EXPECT_EQ(target_execs.load(), 1u);

  // Quota state moved with the tenant and is still enforced.
  const auto alice2 = target_tenants.find("alice");
  ASSERT_TRUE(alice2.has_value());
  EXPECT_EQ(target_tenants.stats(*alice2).mem_used_bytes, used_before);
  EXPECT_EQ(target_tenants.shard_device(*alice2),
            static_cast<std::uint32_t>(target_node->device_count()) - 1);
  cuda::DevPtr big = 0;
  EXPECT_EQ(api.malloc(big, 16u << 20), Error::kQuotaExceeded);
}

TEST_F(MigrateFixture, RetryAcrossFlipIsAnsweredFromMigratedDrc) {
  // Deterministic lost-reply orchestration: the source->client link swallows
  // exactly the 4th reply — the launch below. The kernel executes on the
  // source, the client never hears about it, and by the time its retry goes
  // out the tenant has migrated. The retry must be answered from the
  // MIGRATED duplicate-request cache, not re-executed anywhere.
  source_s2c = faultnet::FaultSpec::parse("partition_after=3,partition_len=1");
  add_source("alice");
  // Long attempt timeout: the migration completes inside the client's first
  // wait, so the retry crosses the flip.
  auto& api = connect("alice", deep_retry(4s));

  cuda::DevPtr buf = 0;
  ASSERT_EQ(api.malloc(buf, 64), Error::kSuccess);  // reply 1
  cuda::ModuleId mod = 0;
  const auto image = fatbin::cubin_serialize(mark_image());
  ASSERT_EQ(api.module_load(mod, image), Error::kSuccess);  // reply 2
  cuda::FuncId fn = 0;
  ASSERT_EQ(api.module_get_function(fn, mod, "mig_mark"),
            Error::kSuccess);  // reply 3

  Error launch_err = Error::kRpcFailure;
  std::thread caller([&] {
    // Reply 4: swallowed by the partition window.
    launch_err = api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0,
                                   mark_params(7));
  });
  // Wait until the launch has executed server-side, then migrate while the
  // client is still waiting for the reply it will never get.
  while (source_execs.load() == 0) std::this_thread::sleep_for(1ms);
  const auto report = do_migrate();
  caller.join();

  ASSERT_TRUE(report.committed) << report.error;
  EXPECT_EQ(launch_err, Error::kSuccess);
  // DRC-verified exactly-once: the kernel ran exactly once, on the source;
  // the post-flip retry was satisfied from the migrated cache.
  EXPECT_EQ(source_execs.load(), 1u);
  EXPECT_EQ(target_execs.load(), 0u);

  // The adopted session is fully live on the target afterwards.
  ASSERT_EQ(api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0, mark_params(8)),
            Error::kSuccess);
  ASSERT_EQ(api.device_synchronize(), Error::kSuccess);
  EXPECT_EQ(target_execs.load(), 1u);
}

TEST_F(MigrateFixture, MultiSessionTenantAdoptionIsPerClient) {
  // Two clients of the same tenant. Client A's launch reply is swallowed
  // just before the migration, so its retry crosses the flip; client B
  // reconnects to the target FIRST. Adoption is keyed by client identity,
  // so B cannot be handed A's bundle — A's retry must still be answered
  // from A's migrated DRC entries, and each client must find its own
  // allocations on the target.
  source_s2c = faultnet::FaultSpec::parse("partition_after=3,partition_len=1");
  add_source("alice");
  auto& a = connect("alice", deep_retry(4s));
  auto& b = connect("alice");

  // B: two calls only — its link never reaches the partition window.
  cuda::DevPtr b_buf = 0;
  ASSERT_EQ(b.malloc(b_buf, 128), Error::kSuccess);
  const std::vector<std::uint8_t> b_data(128, 0xB0);
  ASSERT_EQ(b.memcpy_h2d(b_buf, b_data), Error::kSuccess);

  // A: replies 1-3 land; reply 4 (the launch) is swallowed.
  cuda::DevPtr a_buf = 0;
  ASSERT_EQ(a.malloc(a_buf, 128), Error::kSuccess);
  cuda::ModuleId mod = 0;
  ASSERT_EQ(a.module_load(mod, fatbin::cubin_serialize(mark_image())),
            Error::kSuccess);
  cuda::FuncId fn = 0;
  ASSERT_EQ(a.module_get_function(fn, mod, "mig_mark"), Error::kSuccess);
  Error launch_err = Error::kRpcFailure;
  std::thread caller([&] {
    launch_err =
        a.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0, mark_params(7));
  });
  while (source_execs.load() == 0) std::this_thread::sleep_for(1ms);
  const auto report = do_migrate();
  ASSERT_TRUE(report.committed) << report.error;
  EXPECT_EQ(report.sessions, 2u);

  // B lands on the target first — while A is still waiting out its attempt
  // timeout. FIFO adoption by tenant name alone would hand B the bundle
  // staged for A here.
  std::vector<std::uint8_t> b_out(128);
  ASSERT_EQ(b.memcpy_d2h(b_out, b_buf), Error::kSuccess);
  EXPECT_EQ(b_out, b_data);

  caller.join();
  ASSERT_EQ(launch_err, Error::kSuccess);
  // Exactly-once: A's retry was satisfied from A's own migrated DRC.
  EXPECT_EQ(source_execs.load(), 1u);
  EXPECT_EQ(target_execs.load(), 0u);

  // A's session is fully adopted too: its allocation and handles are live.
  const std::vector<std::uint8_t> a_data(128, 0xA0);
  ASSERT_EQ(a.memcpy_h2d(a_buf, a_data), Error::kSuccess);
  std::vector<std::uint8_t> a_out(128);
  ASSERT_EQ(a.memcpy_d2h(a_out, a_buf), Error::kSuccess);
  EXPECT_EQ(a_out, a_data);
  ASSERT_EQ(a.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0, mark_params(8)),
            Error::kSuccess);
  ASSERT_EQ(a.device_synchronize(), Error::kSuccess);
  EXPECT_EQ(target_execs.load(), 1u);
}

TEST_F(MigrateFixture, UnknownCommitOutcomeKeepsTenantFrozenUntilResolved) {
  add_source("alice");
  auto& api = connect("alice", std::nullopt);  // raw client: observes freeze
  int n = 0;
  ASSERT_EQ(api.get_device_count(n), Error::kSuccess);

  // Control link where only replies fault: begin (1) and chunk (2) answer
  // normally, then the partition swallows the commit reply and the next
  // five. Every REQUEST lands — the commit really does execute on the
  // target; only the coordinator's knowledge of it is lost.
  auto [client_end, server_end] = rpc::make_pipe_pair();
  std::unique_ptr<rpc::Transport> s =
      std::make_unique<faultnet::FaultyTransport>(
          std::move(server_end),
          faultnet::FaultSpec::parse("partition_after=2,partition_len=6"));
  mig_target = std::make_unique<MigrationTarget>(*target_server);
  mig_thread = mig_target->serve_async(std::move(s));
  rpc::ClientOptions co;
  co.retry.enabled = true;
  co.retry.max_attempts = 1;  // surface the lost reply as an exception
  co.retry.attempt_timeout = 250ms;
  mig_client = make_migrate_client(std::move(client_end), co);
  MigrationOptions options;
  options.resolve_attempts = 3;
  options.resolve_backoff = 1ms;
  MigrationCoordinator coordinator(*source_server, *mig_client, redirect.get(),
                                   target_factory(), options);

  // First attempt: commit reply lost, and all three mig_abort probes lost
  // too. The outcome is genuinely unknown — the coordinator must neither
  // flip nor unfreeze.
  const auto first = coordinator.migrate("alice");
  EXPECT_FALSE(first.committed);
  EXPECT_TRUE(first.ambiguous);
  EXPECT_EQ(first.phase, MigrationPhase::kTransfer);
  EXPECT_EQ(redirect->flips(), 0u);
  // The commit DID land: the tenant is registered on the target...
  EXPECT_TRUE(target_tenants.find("alice").has_value());
  // ...so resuming service on the source would be a split brain. The tenant
  // stays frozen instead.
  EXPECT_EQ(api.get_device_count(n), Error::kMigrating);

  // Once replies get through again, the same coordinator resolves the
  // remembered ticket — committed — and completes with the flip alone:
  // nothing is re-transferred, nothing re-imported.
  const auto second = coordinator.migrate("alice");
  ASSERT_TRUE(second.committed) << second.error;
  EXPECT_FALSE(second.ambiguous);
  EXPECT_EQ(redirect->flips(), 1u);
  EXPECT_EQ(mig_target->committed_count(), 1u);
}

TEST_F(MigrateFixture, RefusedCommitReapsThePendingTransfer) {
  add_source("alice");
  auto& api = connect("alice");
  int n = 0;
  ASSERT_EQ(api.get_device_count(n), Error::kSuccess);

  // A target with no SessionManager refuses the commit with an error CODE,
  // not an exception. The coordinator must still reap its ticket — else the
  // buffered image stays pinned against max_pending_transfers forever.
  auto bare_node = cuda::GpuNode::make_a100();
  CricketServer bare(*bare_node);
  MigrationTarget target(bare);
  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto serve = target.serve_async(std::move(server_end));
  {
    rpc::ClientOptions co;
    co.retry = deep_retry();
    auto client = make_migrate_client(std::move(client_end), co);
    MigrationCoordinator coordinator(*source_server, *client, nullptr, {});
    const auto report = coordinator.migrate("alice");
    EXPECT_FALSE(report.committed);
    EXPECT_FALSE(report.ambiguous);
    EXPECT_EQ(report.phase, MigrationPhase::kTransfer);
    EXPECT_EQ(target.pending_count(), 0u);
    EXPECT_EQ(target.committed_count(), 0u);
    // The abort also unfroze alice on the source.
    EXPECT_EQ(api.get_device_count(n), Error::kSuccess);
  }
  serve.join();
}

TEST_F(MigrateFixture, PipelinedChannelSurvivesMigration) {
  add_source("alice");
  core::AsyncClientConfig config;
  config.tenant = "alice";
  config.retry = deep_retry();
  config.reconnect = redirect->factory();
  async_apis.push_back(std::make_unique<core::AsyncRemoteCudaApi>(
      redirect->dial(), source_node->clock(), config));
  auto& api = *async_apis.back();

  cuda::ModuleId mod = 0;
  const auto image = fatbin::cubin_serialize(mark_image());
  ASSERT_EQ(api.module_load(mod, image), Error::kSuccess);
  cuda::FuncId fn = 0;
  ASSERT_EQ(api.module_get_function(fn, mod, "mig_mark"), Error::kSuccess);

  // Fire-and-forget launches straddle the flip: some land before the
  // freeze, some are bounced with kMigrating and resubmitted by the channel
  // through the flipped redirect.
  for (std::uint32_t i = 0; i < 4; ++i)
    ASSERT_EQ(api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0,
                                mark_params(i)),
              Error::kSuccess);
  const auto report = do_migrate();
  ASSERT_TRUE(report.committed) << report.error;
  for (std::uint32_t i = 4; i < 8; ++i)
    ASSERT_EQ(api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0,
                                mark_params(i)),
              Error::kSuccess);
  ASSERT_EQ(api.drain(), Error::kSuccess);
  // Exactly-once across the pipeline: every queued launch executed once,
  // wherever it landed.
  EXPECT_EQ(source_execs.load() + target_execs.load(), 8u);
  EXPECT_GT(target_execs.load(), 0u);
}

// Sustained client traffic while the tenant migrates, with the given fault
// mix on every client link (both directions, source and target). Asserts
// zero failed calls; with `kernels`, also exactly-once execution.
void run_faulted_migration(MigrateFixture& f, const faultnet::FaultSpec& spec,
                           bool kernels) {
  f.source_c2s = f.source_s2c = f.target_c2s = f.target_s2c = spec;
  f.add_source("alice");
  auto& api = f.connect("alice");

  cuda::FuncId fn = 0;
  if (kernels) {
    cuda::ModuleId mod = 0;
    const auto image = fatbin::cubin_serialize(mark_image());
    ASSERT_EQ(api.module_load(mod, image), Error::kSuccess);
    ASSERT_EQ(api.module_get_function(fn, mod, "mig_mark"), Error::kSuccess);
  }

  constexpr std::uint32_t kCalls = 30;
  std::atomic<std::uint32_t> completed{0};
  Error first_failure = Error::kSuccess;
  std::thread traffic([&] {
    for (std::uint32_t i = 0; i < kCalls; ++i) {
      Error err;
      if (kernels) {
        err = api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0,
                                mark_params(i));
      } else {
        int n = 0;
        err = api.get_device_count(n);
      }
      if (err != Error::kSuccess) {
        first_failure = err;
        break;
      }
      completed.fetch_add(1);
    }
  });

  // Let some calls land on the source first, then migrate mid-stream so the
  // faults hit the drain, transfer, and flip phases under live traffic.
  while (completed.load() < 5) std::this_thread::sleep_for(1ms);
  const auto report = f.do_migrate();
  traffic.join();

  EXPECT_EQ(first_failure, Error::kSuccess);
  EXPECT_EQ(completed.load(), kCalls);
  ASSERT_TRUE(report.committed) << report.error;
  if (kernels) {
    // Connection-preserving faults: the per-connection DRC plus the
    // migrated DRC keep every launch exactly-once.
    EXPECT_EQ(f.source_execs.load() + f.target_execs.load(), kCalls);
    EXPECT_GT(f.target_execs.load(), 0u);
  }
}

TEST_F(MigrateFixture, SurvivesDropsOnClientLinks) {
  run_faulted_migration(*this, faultnet::FaultSpec::parse("drop=0.15,seed=11"),
                        /*kernels=*/true);
}

TEST_F(MigrateFixture, SurvivesPartitionOnClientLinks) {
  run_faulted_migration(
      *this,
      faultnet::FaultSpec::parse("partition_after=8,partition_len=3,seed=12"),
      /*kernels=*/true);
}

TEST_F(MigrateFixture, SurvivesResetsOnClientLinks) {
  // Resets sever connections outright; the retry layer reconnects through
  // the redirect. Idempotent traffic only: a reset between execution and
  // reply on the SAME server re-executes on a fresh connection by design
  // (the DRC is per-connection), so exactly-once is asserted only for the
  // migration paths above.
  run_faulted_migration(*this, faultnet::FaultSpec::parse("reset=0.03,seed=13"),
                        /*kernels=*/false);
}

TEST_F(MigrateFixture, SurvivesDropsOnControlLink) {
  tenancy::TenantQuota quota;
  quota.device_mem_bytes = 1u << 20;
  add_source("alice", quota);
  auto& api = connect("alice");
  cuda::DevPtr buf = 0;
  ASSERT_EQ(api.malloc(buf, 256), Error::kSuccess);
  std::vector<std::uint8_t> data(256, 0x42);
  ASSERT_EQ(api.memcpy_h2d(buf, data), Error::kSuccess);

  // The coordinator's transfer channel drops messages; its retry layer plus
  // the target's duplicate-chunk tolerance and idempotent commit must land
  // the image exactly once.
  const auto report =
      do_migrate(faultnet::FaultSpec::parse("drop=0.2,seed=21"));
  ASSERT_TRUE(report.committed) << report.error;
  EXPECT_EQ(mig_target->committed_count(), 1u);

  std::vector<std::uint8_t> out(256);
  ASSERT_EQ(api.memcpy_d2h(out, buf), Error::kSuccess);
  EXPECT_EQ(out, data);
  const auto alice2 = target_tenants.find("alice");
  ASSERT_TRUE(alice2.has_value());
  EXPECT_EQ(target_tenants.stats(*alice2).mem_used_bytes, 256u);
}

TEST_F(MigrateFixture, DrainTimeoutAbortsAndSourceResumes) {
  const auto alice = add_source("alice");
  auto& api = connect("alice");
  int n = 0;
  ASSERT_EQ(api.get_device_count(n), Error::kSuccess);

  // Hold the tenant "in flight" artificially so the drain cannot quiesce.
  ASSERT_TRUE(source_tenants.admit_call(alice, 1).admitted);
  MigrationOptions options;
  options.drain_timeout = 50ms;
  const auto report = do_migrate(std::nullopt, options);
  EXPECT_FALSE(report.committed);
  EXPECT_EQ(report.phase, MigrationPhase::kDrain);
  EXPECT_EQ(redirect->flips(), 0u);
  source_tenants.complete_call(alice);

  // The abort unfroze the tenant: the source keeps serving as if nothing
  // happened, and nothing leaked onto the target.
  EXPECT_EQ(api.get_device_count(n), Error::kSuccess);
  EXPECT_FALSE(target_tenants.find("alice").has_value());
}

}  // namespace
}  // namespace cricket::migrate
