#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "rpcl/codegen.hpp"
#include "rpcl/lexer.hpp"
#include "rpcl/parser.hpp"
#include "rpcl/sema.hpp"

namespace cricket::rpcl {
namespace {

// ---------------------------------- lexer ----------------------------------

TEST(Lexer, BasicTokens) {
  const auto toks = tokenize("struct foo { int bar; };");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "struct");
  EXPECT_EQ(toks[2].kind, TokKind::kLBrace);
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(Lexer, Numbers) {
  const auto toks = tokenize("17 -5 0x20 010");
  EXPECT_EQ(toks[0].number, 17);
  EXPECT_EQ(toks[1].number, -5);
  EXPECT_EQ(toks[2].number, 0x20);
  EXPECT_EQ(toks[3].number, 8);  // octal
}

TEST(Lexer, CommentsAreStripped) {
  const auto toks = tokenize(R"(
    /* block
       comment */
    const A = 1; // trailing
    % #include <passthrough.h>
    const B = 2;
  )");
  int idents = 0;
  for (const auto& t : toks)
    if (t.kind == TokKind::kIdentifier) ++idents;
  EXPECT_EQ(idents, 4);  // const A const B
}

TEST(Lexer, UnterminatedCommentThrows) {
  EXPECT_THROW((void)tokenize("/* oops"), ParseError);
}

TEST(Lexer, BadCharacterThrows) {
  EXPECT_THROW((void)tokenize("const $ = 1;"), ParseError);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = tokenize("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, TracksColumns) {
  const auto toks = tokenize("  foo bar\n    baz");
  EXPECT_EQ(toks[0].col, 3);
  EXPECT_EQ(toks[1].col, 7);
  EXPECT_EQ(toks[2].line, 2);
  EXPECT_EQ(toks[2].col, 5);
}

TEST(Lexer, ColumnsResetAfterBlockComment) {
  const auto toks = tokenize("/* one\n   two */ foo");
  EXPECT_EQ(toks[0].line, 2);
  EXPECT_EQ(toks[0].col, 11);
}

// --------------------------------- parser ----------------------------------

constexpr const char* kSmallSpec = R"(
const MAX_NAME = 64;

enum op_kind {
  OP_READ = 0,
  OP_WRITE = 1
};

typedef unsigned hyper dev_ptr;

struct request {
  op_kind kind;
  dev_ptr ptr;
  opaque payload<>;
  string label<MAX_NAME>;
  int dims[3];
  *unsigned int maybe_flags;
};

union result switch (int err) {
  case 0:
    opaque data<>;
  default:
    void;
};

program TESTPROG {
  version TESTVERS {
    void null(void) = 0;
    request echo(request) = 1;
    unsigned hyper add(unsigned int, unsigned int) = 2;
  } = 1;
} = 0x20000099;
)";

TEST(Parser, ParsesFullSpec) {
  const SpecFile spec = parse_spec(kSmallSpec);
  EXPECT_EQ(spec.consts.size(), 1u);
  EXPECT_EQ(spec.consts[0].value, 64);
  ASSERT_EQ(spec.enums.size(), 1u);
  EXPECT_EQ(spec.enums[0].values[1].first, "OP_WRITE");
  ASSERT_EQ(spec.typedefs.size(), 1u);
  ASSERT_EQ(spec.structs.size(), 1u);
  ASSERT_EQ(spec.unions.size(), 1u);
  ASSERT_EQ(spec.programs.size(), 1u);
  EXPECT_EQ(spec.programs[0].number, 0x20000099u);
  ASSERT_EQ(spec.programs[0].versions.size(), 1u);
  EXPECT_EQ(spec.programs[0].versions[0].procs.size(), 3u);
}

TEST(Parser, StructFieldDecorations) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const StructDef* req = spec.find_struct("request");
  ASSERT_NE(req, nullptr);
  ASSERT_EQ(req->fields.size(), 6u);
  EXPECT_EQ(req->fields[2].type.decoration,
            TypeRef::Decoration::kVariableArray);
  EXPECT_EQ(req->fields[3].type.bound, 64u);  // via const MAX_NAME
  EXPECT_EQ(req->fields[4].type.decoration, TypeRef::Decoration::kFixedArray);
  EXPECT_EQ(req->fields[4].type.bound, 3u);
  EXPECT_EQ(req->fields[5].type.decoration, TypeRef::Decoration::kOptional);
}

TEST(Parser, ProcedureSignatures) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const auto& procs = spec.programs[0].versions[0].procs;
  EXPECT_TRUE(procs[0].result.is_void());
  EXPECT_TRUE(procs[0].args.empty());
  EXPECT_EQ(procs[1].args.size(), 1u);
  EXPECT_EQ(procs[2].args.size(), 2u);
  EXPECT_EQ(procs[2].number, 2u);
}

TEST(Parser, EnumValuesUsableAsConstants) {
  const SpecFile spec = parse_spec(R"(
    enum e { A = 5 };
    struct s { int xs[A]; };
  )");
  EXPECT_EQ(spec.structs[0].fields[0].type.bound, 5u);
}

TEST(Parser, UndefinedTypeRejected) {
  EXPECT_THROW((void)parse_spec("struct s { nosuchtype x; };"), ParseError);
}

TEST(Parser, DuplicateTypeNameRejected) {
  EXPECT_THROW((void)parse_spec("struct s { int a; }; struct s { int b; };"),
               ParseError);
}

TEST(Parser, DuplicateProcNumberRejected) {
  EXPECT_THROW((void)parse_spec(R"(
    program P { version V {
      void a(void) = 1;
      void b(void) = 1;
    } = 1; } = 99;
  )"),
               ParseError);
}

TEST(Parser, SyntaxErrorHasLineNumber) {
  try {
    (void)parse_spec("const A = ;\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
  }
}

TEST(Parser, UnknownConstantRejected) {
  EXPECT_THROW((void)parse_spec("struct s { int xs[UNDEFINED]; };"),
               ParseError);
}

// --------------------------------- codegen ---------------------------------

TEST(Codegen, EmitsExpectedDeclarations) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const std::string header =
      generate_header(spec, {.ns = "testgen", .source_name = "small.x"});

  // Types.
  EXPECT_NE(header.find("struct request {"), std::string::npos);
  EXPECT_NE(header.find("enum class op_kind : std::int32_t"),
            std::string::npos);
  EXPECT_NE(header.find("using dev_ptr = std::uint64_t;"), std::string::npos);
  EXPECT_NE(header.find("std::array<std::int32_t, 3> dims{};"),
            std::string::npos);
  EXPECT_NE(header.find("std::optional<std::uint32_t> maybe_flags{};"),
            std::string::npos);
  // Serializers.
  EXPECT_NE(header.find("inline void xdr_encode(::cricket::xdr::Encoder& "
                        "enc, const request& v)"),
            std::string::npos);
  // Program constants.
  EXPECT_NE(header.find("TESTPROG_PROG = 536871065u"), std::string::npos);
  EXPECT_NE(header.find("ECHO_PROC = 1u"), std::string::npos);
  // Client stub and service skeleton.
  EXPECT_NE(header.find("class TESTVERSClient {"), std::string::npos);
  EXPECT_NE(header.find("class TESTVERSService {"), std::string::npos);
  EXPECT_NE(header.find("virtual std::uint64_t add(std::uint32_t a0, "
                        "std::uint32_t a1) = 0;"),
            std::string::npos);
  EXPECT_NE(header.find("void register_into"), std::string::npos);
}

TEST(Codegen, UnionBecomesTaggedStruct) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const std::string header = generate_header(spec, {.ns = "t"});
  EXPECT_NE(header.find("struct result {"), std::string::npos);
  EXPECT_NE(header.find("std::int32_t err{};"), std::string::npos);
  EXPECT_NE(header.find("std::optional<std::vector<std::uint8_t>> data;"),
            std::string::npos);
}

TEST(Codegen, HeaderIsSelfDescribing) {
  const SpecFile spec = parse_spec("const X = 1;");
  const std::string header =
      generate_header(spec, {.ns = "t", .source_name = "origin.x"});
  EXPECT_NE(header.find("GENERATED by rpclgen from origin.x"),
            std::string::npos);
  EXPECT_NE(header.find("#pragma once"), std::string::npos);
}

}  // namespace
}  // namespace cricket::rpcl

// ----------------------- declared-bounds enforcement ------------------------

namespace cricket::rpcl {
namespace {

// ----------------------------------- sema ----------------------------------

/// One seeded-bad spec per lint rule: the analyzer must report exactly this
/// rule at exactly this line (1-based; every spec string starts with '\n',
/// so the first content line is line 2).
struct BadSpecCase {
  const char* rule;
  Severity severity;
  int line;
  const char* spec;
};

const BadSpecCase kBadSpecs[] = {
    {"RPCL001", Severity::kError, 3, R"(
program A { version V { void p(void) = 1; } = 1; } = 5;
program B { version W { void q(void) = 1; } = 1; } = 5;
)"},
    {"RPCL002", Severity::kError, 4, R"(
program A {
  version V1 { void p(void) = 1; } = 1;
  version V2 { void q(void) = 1; } = 1;
} = 5;
)"},
    {"RPCL003", Severity::kError, 4, R"(
program P { version V {
  void a(void) = 1;
  void b(void) = 1;
} = 1; } = 9;
)"},
    {"RPCL004", Severity::kError, 3, R"(
struct s { int a; };
struct s { int b; };
)"},
    {"RPCL004", Severity::kError, 3, R"(
const LIMIT = 1;
const LIMIT = 2;
)"},
    {"RPCL005", Severity::kError, 2, R"(
struct opaque { int a; };
)"},
    {"RPCL006", Severity::kWarning, 2, R"(
struct s { opaque data<>; };
)"},
    {"RPCL007", Severity::kError, 2, R"(
struct s { opaque data<2000000000>; };
)"},
    {"RPCL008", Severity::kError, 2, R"(
struct s { nosuchtype x; };
)"},
    {"RPCL009", Severity::kWarning, 2, R"(
struct never_referenced { int a; };
)"},
    {"RPCL010", Severity::kWarning, 4, R"(
program P { version V {
  void a(void) = 5;
  void b(void) = 3;
} = 1; } = 9;
)"},
};

TEST(Sema, EachRuleFiresWithRuleIdAndLine) {
  for (const auto& c : kBadSpecs) {
    SCOPED_TRACE(std::string(c.rule) + " @ line " + std::to_string(c.line));
    const SpecFile spec = parse_spec_unchecked(c.spec);
    const SemaResult result = analyze(spec);
    const Diagnostic* hit = nullptr;
    for (const auto& d : result.diagnostics)
      if (d.rule == c.rule) {
        hit = &d;
        break;
      }
    ASSERT_NE(hit, nullptr) << "rule did not fire";
    EXPECT_EQ(hit->severity, c.severity);
    EXPECT_EQ(hit->loc.line, c.line) << hit->message;
    EXPECT_GT(hit->loc.col, 0);
  }
}

TEST(Sema, CleanSpecHasNoDiagnostics) {
  const SpecFile spec = parse_spec_unchecked(R"(
struct point { int x; int y; };
program P { version V { point get(void) = 1; } = 1; } = 9;
)");
  const SemaResult result = analyze(spec);
  EXPECT_TRUE(result.diagnostics.empty())
      << (result.diagnostics.empty()
              ? ""
              : format_diagnostic(result.diagnostics[0], "spec"));
}

TEST(Sema, MaxBoundOptionIsRespected) {
  const SpecFile spec = parse_spec_unchecked("struct s { opaque d<32>; };");
  EXPECT_EQ(analyze(spec, {.max_bound = 16}).error_count(), 1u);
  EXPECT_EQ(analyze(spec, {.max_bound = 32}).error_count(), 0u);
}

TEST(Sema, BoundBudgetCountsElementWireSize) {
  // 8 hypers = 64 wire bytes: over a 32-byte budget even though the element
  // count alone is under it.
  const SpecFile spec =
      parse_spec_unchecked("struct s { unsigned hyper d<8>; };");
  EXPECT_EQ(analyze(spec, {.max_bound = 32}).error_count(), 1u);
  EXPECT_EQ(analyze(spec, {.max_bound = 64}).error_count(), 0u);
}

TEST(Sema, WarningsAsErrorsFlipsOk) {
  const SpecFile spec =
      parse_spec_unchecked("struct s { opaque data<>; };\n"
                           "program P { version V { int u(s) = 1; } = 1; }"
                           " = 9;");
  const SemaResult result = analyze(spec);
  EXPECT_EQ(result.error_count(), 0u);
  EXPECT_GE(result.warning_count(), 1u);
  EXPECT_TRUE(result.ok({}));
  EXPECT_FALSE(result.ok({.warnings_as_errors = true}));
}

TEST(Sema, FormatDiagnosticIsCompilerStyle) {
  const Diagnostic d{Severity::kWarning, "RPCL006", "unbounded opaque",
                     {12, 7}};
  EXPECT_EQ(format_diagnostic(d, "spec.x"),
            "spec.x:12:7: warning: unbounded opaque [RPCL006]");
}

TEST(Sema, ParseSpecStillThrowsOnFirstError) {
  // parse_spec's historical contract: error diagnostics throw ParseError
  // carrying the offending line; warnings do not throw (kSmallSpec has an
  // unbounded opaque and must keep parsing — see ParsesFullSpec above).
  try {
    (void)parse_spec("\nstruct s { nosuchtype x; };");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("RPCL008"), std::string::npos);
  }
}

TEST(Sema, CommittedCricketSpecLintsClean) {
  // The golden check mirrored by the build: rpclgen --lint --Werror must
  // accept src/cricket/specs/cricket.x with zero errors AND zero warnings.
  std::ifstream in(CRICKET_SPEC_X);
  ASSERT_TRUE(in.is_open()) << "cannot open " << CRICKET_SPEC_X;
  std::ostringstream source;
  source << in.rdbuf();
  const SpecFile spec = parse_spec_unchecked(source.str());
  const SemaResult result = analyze(spec);
  for (const auto& d : result.diagnostics)
    ADD_FAILURE() << format_diagnostic(d, "cricket.x");
  EXPECT_TRUE(result.ok({.warnings_as_errors = true}));
}

TEST(Codegen, EmitsBoundsChecksForDeclaredLimits) {
  const SpecFile spec = parse_spec(R"(
    struct bounded {
      string label<32>;
      opaque blob<1024>;
      int values<8>;
      opaque unlimited<>;
    };
  )");
  const std::string header = generate_header(spec, {.ns = "t"});
  EXPECT_NE(header.find("v.label.size() > 32u"), std::string::npos);
  EXPECT_NE(header.find("v.blob.size() > 1024u"), std::string::npos);
  EXPECT_NE(header.find("v.values.size() > 8u"), std::string::npos);
  // Unbounded fields get no check.
  EXPECT_EQ(header.find("v.unlimited.size() >"), std::string::npos);
  EXPECT_NE(header.find("exceeds declared bound"), std::string::npos);
}

}  // namespace
}  // namespace cricket::rpcl
