#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "rpcl/bounds.hpp"
#include "rpcl/codegen.hpp"
#include "rpcl/lexer.hpp"
#include "rpcl/parser.hpp"
#include "rpcl/sema.hpp"

namespace cricket::rpcl {
namespace {

// ---------------------------------- lexer ----------------------------------

TEST(Lexer, BasicTokens) {
  const auto toks = tokenize("struct foo { int bar; };");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "struct");
  EXPECT_EQ(toks[2].kind, TokKind::kLBrace);
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(Lexer, Numbers) {
  const auto toks = tokenize("17 -5 0x20 010");
  EXPECT_EQ(toks[0].number, 17);
  EXPECT_EQ(toks[1].number, -5);
  EXPECT_EQ(toks[2].number, 0x20);
  EXPECT_EQ(toks[3].number, 8);  // octal
}

TEST(Lexer, CommentsAreStripped) {
  const auto toks = tokenize(R"(
    /* block
       comment */
    const A = 1; // trailing
    % #include <passthrough.h>
    const B = 2;
  )");
  int idents = 0;
  for (const auto& t : toks)
    if (t.kind == TokKind::kIdentifier) ++idents;
  EXPECT_EQ(idents, 4);  // const A const B
}

TEST(Lexer, UnterminatedCommentThrows) {
  EXPECT_THROW((void)tokenize("/* oops"), ParseError);
}

TEST(Lexer, BadCharacterThrows) {
  EXPECT_THROW((void)tokenize("const $ = 1;"), ParseError);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = tokenize("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, TracksColumns) {
  const auto toks = tokenize("  foo bar\n    baz");
  EXPECT_EQ(toks[0].col, 3);
  EXPECT_EQ(toks[1].col, 7);
  EXPECT_EQ(toks[2].line, 2);
  EXPECT_EQ(toks[2].col, 5);
}

TEST(Lexer, ColumnsResetAfterBlockComment) {
  const auto toks = tokenize("/* one\n   two */ foo");
  EXPECT_EQ(toks[0].line, 2);
  EXPECT_EQ(toks[0].col, 11);
}

// --------------------------------- parser ----------------------------------

constexpr const char* kSmallSpec = R"(
const MAX_NAME = 64;

enum op_kind {
  OP_READ = 0,
  OP_WRITE = 1
};

typedef unsigned hyper dev_ptr;

struct request {
  op_kind kind;
  dev_ptr ptr;
  opaque payload<>;
  string label<MAX_NAME>;
  int dims[3];
  *unsigned int maybe_flags;
};

union result switch (int err) {
  case 0:
    opaque data<>;
  default:
    void;
};

program TESTPROG {
  version TESTVERS {
    void null(void) = 0;
    request echo(request) = 1;
    unsigned hyper add(unsigned int, unsigned int) = 2;
  } = 1;
} = 0x20000099;
)";

TEST(Parser, ParsesFullSpec) {
  const SpecFile spec = parse_spec(kSmallSpec);
  EXPECT_EQ(spec.consts.size(), 1u);
  EXPECT_EQ(spec.consts[0].value, 64);
  ASSERT_EQ(spec.enums.size(), 1u);
  EXPECT_EQ(spec.enums[0].values[1].first, "OP_WRITE");
  ASSERT_EQ(spec.typedefs.size(), 1u);
  ASSERT_EQ(spec.structs.size(), 1u);
  ASSERT_EQ(spec.unions.size(), 1u);
  ASSERT_EQ(spec.programs.size(), 1u);
  EXPECT_EQ(spec.programs[0].number, 0x20000099u);
  ASSERT_EQ(spec.programs[0].versions.size(), 1u);
  EXPECT_EQ(spec.programs[0].versions[0].procs.size(), 3u);
}

TEST(Parser, StructFieldDecorations) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const StructDef* req = spec.find_struct("request");
  ASSERT_NE(req, nullptr);
  ASSERT_EQ(req->fields.size(), 6u);
  EXPECT_EQ(req->fields[2].type.decoration,
            TypeRef::Decoration::kVariableArray);
  EXPECT_EQ(req->fields[3].type.bound, 64u);  // via const MAX_NAME
  EXPECT_EQ(req->fields[4].type.decoration, TypeRef::Decoration::kFixedArray);
  EXPECT_EQ(req->fields[4].type.bound, 3u);
  EXPECT_EQ(req->fields[5].type.decoration, TypeRef::Decoration::kOptional);
}

TEST(Parser, ProcedureSignatures) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const auto& procs = spec.programs[0].versions[0].procs;
  EXPECT_TRUE(procs[0].result.is_void());
  EXPECT_TRUE(procs[0].args.empty());
  EXPECT_EQ(procs[1].args.size(), 1u);
  EXPECT_EQ(procs[2].args.size(), 2u);
  EXPECT_EQ(procs[2].number, 2u);
}

TEST(Parser, EnumValuesUsableAsConstants) {
  const SpecFile spec = parse_spec(R"(
    enum e { A = 5 };
    struct s { int xs[A]; };
  )");
  EXPECT_EQ(spec.structs[0].fields[0].type.bound, 5u);
}

TEST(Parser, UndefinedTypeRejected) {
  EXPECT_THROW((void)parse_spec("struct s { nosuchtype x; };"), ParseError);
}

TEST(Parser, DuplicateTypeNameRejected) {
  EXPECT_THROW((void)parse_spec("struct s { int a; }; struct s { int b; };"),
               ParseError);
}

TEST(Parser, DuplicateProcNumberRejected) {
  EXPECT_THROW((void)parse_spec(R"(
    program P { version V {
      void a(void) = 1;
      void b(void) = 1;
    } = 1; } = 99;
  )"),
               ParseError);
}

TEST(Parser, SyntaxErrorHasLineNumber) {
  try {
    (void)parse_spec("const A = ;\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
  }
}

TEST(Parser, UnknownConstantRejected) {
  EXPECT_THROW((void)parse_spec("struct s { int xs[UNDEFINED]; };"),
               ParseError);
}

// --------------------------------- codegen ---------------------------------

TEST(Codegen, EmitsExpectedDeclarations) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const std::string header =
      generate_header(spec, {.ns = "testgen", .source_name = "small.x"});

  // Types.
  EXPECT_NE(header.find("struct request {"), std::string::npos);
  EXPECT_NE(header.find("enum class op_kind : std::int32_t"),
            std::string::npos);
  EXPECT_NE(header.find("using dev_ptr = std::uint64_t;"), std::string::npos);
  EXPECT_NE(header.find("std::array<std::int32_t, 3> dims{};"),
            std::string::npos);
  EXPECT_NE(header.find("std::optional<std::uint32_t> maybe_flags{};"),
            std::string::npos);
  // Serializers.
  EXPECT_NE(header.find("inline void xdr_encode(::cricket::xdr::Encoder& "
                        "enc, const request& v)"),
            std::string::npos);
  // Program constants.
  EXPECT_NE(header.find("TESTPROG_PROG = 536871065u"), std::string::npos);
  EXPECT_NE(header.find("ECHO_PROC = 1u"), std::string::npos);
  // Client stub and service skeleton.
  EXPECT_NE(header.find("class TESTVERSClient {"), std::string::npos);
  EXPECT_NE(header.find("class TESTVERSService {"), std::string::npos);
  EXPECT_NE(header.find("virtual std::uint64_t add(std::uint32_t a0, "
                        "std::uint32_t a1) = 0;"),
            std::string::npos);
  EXPECT_NE(header.find("void register_into"), std::string::npos);
}

TEST(Codegen, UnionBecomesTaggedStruct) {
  const SpecFile spec = parse_spec(kSmallSpec);
  const std::string header = generate_header(spec, {.ns = "t"});
  EXPECT_NE(header.find("struct result {"), std::string::npos);
  EXPECT_NE(header.find("std::int32_t err{};"), std::string::npos);
  EXPECT_NE(header.find("std::optional<std::vector<std::uint8_t>> data;"),
            std::string::npos);
}

TEST(Codegen, HeaderIsSelfDescribing) {
  const SpecFile spec = parse_spec("const X = 1;");
  const std::string header =
      generate_header(spec, {.ns = "t", .source_name = "origin.x"});
  EXPECT_NE(header.find("GENERATED by rpclgen from origin.x"),
            std::string::npos);
  EXPECT_NE(header.find("#pragma once"), std::string::npos);
}

}  // namespace
}  // namespace cricket::rpcl

// ----------------------- declared-bounds enforcement ------------------------

namespace cricket::rpcl {
namespace {

// ----------------------------------- sema ----------------------------------

/// One seeded-bad spec per lint rule: the analyzer must report exactly this
/// rule at exactly this line (1-based; every spec string starts with '\n',
/// so the first content line is line 2).
struct BadSpecCase {
  const char* rule;
  Severity severity;
  int line;
  const char* spec;
};

const BadSpecCase kBadSpecs[] = {
    {"RPCL001", Severity::kError, 3, R"(
program A { version V { void p(void) = 1; } = 1; } = 5;
program B { version W { void q(void) = 1; } = 1; } = 5;
)"},
    {"RPCL002", Severity::kError, 4, R"(
program A {
  version V1 { void p(void) = 1; } = 1;
  version V2 { void q(void) = 1; } = 1;
} = 5;
)"},
    {"RPCL003", Severity::kError, 4, R"(
program P { version V {
  void a(void) = 1;
  void b(void) = 1;
} = 1; } = 9;
)"},
    {"RPCL004", Severity::kError, 3, R"(
struct s { int a; };
struct s { int b; };
)"},
    {"RPCL004", Severity::kError, 3, R"(
const LIMIT = 1;
const LIMIT = 2;
)"},
    {"RPCL005", Severity::kError, 2, R"(
struct opaque { int a; };
)"},
    {"RPCL006", Severity::kWarning, 2, R"(
struct s { opaque data<>; };
)"},
    {"RPCL007", Severity::kError, 2, R"(
struct s { opaque data<2000000000>; };
)"},
    {"RPCL008", Severity::kError, 2, R"(
struct s { nosuchtype x; };
)"},
    {"RPCL009", Severity::kWarning, 2, R"(
struct never_referenced { int a; };
)"},
    {"RPCL010", Severity::kWarning, 4, R"(
program P { version V {
  void a(void) = 5;
  void b(void) = 3;
} = 1; } = 9;
)"},
    // wiretaint: 'tainted' only fits wire-decoded argument-side integer
    // scalars. Everything else is RPCL016.
    {"RPCL016", Severity::kError, 2, R"(
struct s { tainted float x; };
)"},
    {"RPCL016", Severity::kError, 2, R"(
struct s { tainted opaque d<8>; };
)"},
    {"RPCL016", Severity::kError, 2, R"(
program P { version V { tainted int f(void) = 1; } = 1; } = 9;
)"},
    {"RPCL016", Severity::kError, 2, R"(
union u switch (tainted int d) { case 0: void; default: void; };
)"},
};

TEST(Sema, EachRuleFiresWithRuleIdAndLine) {
  for (const auto& c : kBadSpecs) {
    SCOPED_TRACE(std::string(c.rule) + " @ line " + std::to_string(c.line));
    const SpecFile spec = parse_spec_unchecked(c.spec);
    const SemaResult result = analyze(spec);
    const Diagnostic* hit = nullptr;
    for (const auto& d : result.diagnostics)
      if (d.rule == c.rule) {
        hit = &d;
        break;
      }
    ASSERT_NE(hit, nullptr) << "rule did not fire";
    EXPECT_EQ(hit->severity, c.severity);
    EXPECT_EQ(hit->loc.line, c.line) << hit->message;
    EXPECT_GT(hit->loc.col, 0);
  }
}

TEST(Sema, CleanSpecHasNoDiagnostics) {
  const SpecFile spec = parse_spec_unchecked(R"(
struct point { int x; int y; };
program P { version V { point get(void) = 1; } = 1; } = 9;
)");
  const SemaResult result = analyze(spec);
  EXPECT_TRUE(result.diagnostics.empty())
      << (result.diagnostics.empty()
              ? ""
              : format_diagnostic(result.diagnostics[0], "spec"));
}

TEST(Sema, MaxBoundOptionIsRespected) {
  const SpecFile spec = parse_spec_unchecked("struct s { opaque d<32>; };");
  EXPECT_EQ(analyze(spec, {.max_bound = 16}).error_count(), 1u);
  EXPECT_EQ(analyze(spec, {.max_bound = 32}).error_count(), 0u);
}

TEST(Sema, BoundBudgetCountsElementWireSize) {
  // 8 hypers = 64 wire bytes: over a 32-byte budget even though the element
  // count alone is under it.
  const SpecFile spec =
      parse_spec_unchecked("struct s { unsigned hyper d<8>; };");
  EXPECT_EQ(analyze(spec, {.max_bound = 32}).error_count(), 1u);
  EXPECT_EQ(analyze(spec, {.max_bound = 64}).error_count(), 0u);
}

TEST(Sema, WarningsAsErrorsFlipsOk) {
  const SpecFile spec =
      parse_spec_unchecked("struct s { opaque data<>; };\n"
                           "program P { version V { int u(s) = 1; } = 1; }"
                           " = 9;");
  const SemaResult result = analyze(spec);
  EXPECT_EQ(result.error_count(), 0u);
  EXPECT_GE(result.warning_count(), 1u);
  EXPECT_TRUE(result.ok({}));
  EXPECT_FALSE(result.ok({.warnings_as_errors = true}));
}

TEST(Sema, FormatDiagnosticIsCompilerStyle) {
  const Diagnostic d{Severity::kWarning, "RPCL006", "unbounded opaque",
                     {12, 7}};
  EXPECT_EQ(format_diagnostic(d, "spec.x"),
            "spec.x:12:7: warning: unbounded opaque [RPCL006]");
}

TEST(Sema, ParseSpecStillThrowsOnFirstError) {
  // parse_spec's historical contract: error diagnostics throw ParseError
  // carrying the offending line; warnings do not throw (kSmallSpec has an
  // unbounded opaque and must keep parsing — see ParsesFullSpec above).
  try {
    (void)parse_spec("\nstruct s { nosuchtype x; };");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("RPCL008"), std::string::npos);
  }
}

TEST(Sema, CommittedCricketSpecLintsClean) {
  // The golden check mirrored by the build: rpclgen --lint --Werror must
  // accept src/cricket/specs/cricket.x with zero errors AND zero warnings.
  std::ifstream in(CRICKET_SPEC_X);
  ASSERT_TRUE(in.is_open()) << "cannot open " << CRICKET_SPEC_X;
  std::ostringstream source;
  source << in.rdbuf();
  const SpecFile spec = parse_spec_unchecked(source.str());
  const SemaResult result = analyze(spec);
  for (const auto& d : result.diagnostics)
    ADD_FAILURE() << format_diagnostic(d, "cricket.x");
  EXPECT_TRUE(result.ok({.warnings_as_errors = true}));
}

TEST(Codegen, EmitsBoundsChecksForDeclaredLimits) {
  const SpecFile spec = parse_spec(R"(
    struct bounded {
      string label<32>;
      opaque blob<1024>;
      int values<8>;
      opaque unlimited<>;
    };
  )");
  const std::string header = generate_header(spec, {.ns = "t"});
  EXPECT_NE(header.find("v.label.size() > 32u"), std::string::npos);
  EXPECT_NE(header.find("v.blob.size() > 1024u"), std::string::npos);
  EXPECT_NE(header.find("v.values.size() > 8u"), std::string::npos);
  // Unbounded fields get no check.
  EXPECT_EQ(header.find("v.unlimited.size() >"), std::string::npos);
  EXPECT_NE(header.find("exceeds declared bound"), std::string::npos);
}

// ---------------------------------- bounds ---------------------------------

const SizeInterval* find_type(const BoundsResult& r, const std::string& name) {
  for (const auto& t : r.types)
    if (t.name == name) return &t.size;
  return nullptr;
}

const ProcBoundsInfo* find_proc(const BoundsResult& r,
                                const std::string& name) {
  for (const auto& p : r.procs)
    if (p.name == name) return &p;
  return nullptr;
}

TEST(Bounds, IntervalLatticePropagation) {
  // Every lattice rule at once: struct = sum, fixed opaque padded as a
  // unit, variable opaque/string = count + padded bound, optional =
  // discriminant + value, fixed array = count x element, variable array =
  // count + bound x element max, union = discriminant + [min/max over arms].
  const SpecFile spec = parse_spec_unchecked(R"(
struct s {
  int a;
  unsigned hyper b;
  opaque fixed[5];
  opaque var<9>;
  string str<7>;
  *int opt;
  int arr[3];
  float farr<2>;
};
union u switch (int t) {
  case 0: void;
  case 1: s val;
};
program P { version V { u f(s, int) = 1; } = 1; } = 9;
)");
  const BoundsResult r = compute_bounds(spec);
  EXPECT_TRUE(r.ok());
  const auto* s = find_type(r, "s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, (SizeInterval{48, 80, true}));
  const auto* u = find_type(r, "u");
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(*u, (SizeInterval{4, 84, true}));
  const auto* f = find_proc(r, "f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->args, (SizeInterval{52, 84, true}));
  EXPECT_EQ(f->result, (SizeInterval{4, 84, true}));
  EXPECT_EQ(r.budget, 0u);  // no CRICKET_MAX_PAYLOAD, no --proc-budget
}

TEST(Bounds, GoldenIntervalsForCricketSpec) {
  std::ifstream in(CRICKET_SPEC_X);
  ASSERT_TRUE(in.is_open()) << "cannot open " << CRICKET_SPEC_X;
  std::ostringstream source;
  source << in.rdbuf();
  const SpecFile spec = parse_spec_unchecked(source.str());
  const BoundsResult r = compute_bounds(spec);
  for (const auto& d : r.diagnostics)
    ADD_FAILURE() << format_diagnostic(d, "cricket.x");
  EXPECT_TRUE(r.ok({.warnings_as_errors = true}));

  constexpr std::uint64_t kPayload = 1073741824;  // CRICKET_MAX_PAYLOAD
  EXPECT_EQ(r.max_payload, kPayload);
  EXPECT_EQ(r.budget, kPayload + 64 * 1024);

  EXPECT_EQ(*find_type(r, "rpc_dim3"), (SizeInterval{12, 12, true}));
  EXPECT_EQ(*find_type(r, "dev_props_result"), (SizeInterval{28, 284, true}));
  EXPECT_EQ(*find_type(r, "data_result"),
            (SizeInterval{8, 8 + kPayload, true}));

  const auto* count = find_proc(r, "rpc_get_device_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->args, (SizeInterval{0, 0, true}));
  EXPECT_EQ(count->result, (SizeInterval{8, 8, true}));

  const auto* h2d = find_proc(r, "rpc_memcpy_h2d");
  ASSERT_NE(h2d, nullptr);
  EXPECT_EQ(h2d->args, (SizeInterval{12, 12 + kPayload, true}));
  EXPECT_EQ(h2d->result, (SizeInterval{4, 4, true}));

  const auto* launch = find_proc(r, "rpc_launch_kernel");
  ASSERT_NE(launch, nullptr);
  EXPECT_EQ(launch->args.min, 48u);
  EXPECT_EQ(launch->args.max, 48 + kPayload);

  // Every procedure is within the budget — the property the generated
  // static_asserts pin at compile time.
  for (const auto& p : r.procs) {
    EXPECT_TRUE(p.args.bounded && p.args.max <= r.budget) << p.name;
    EXPECT_TRUE(p.result.bounded && p.result.max <= r.budget) << p.name;
  }
}

/// Seeded-bad specs for the bounds rules, mirroring kBadSpecs: the pass
/// must report exactly this rule at exactly this line.
const BadSpecCase kBadBoundsSpecs[] = {
    // args unbounded transitively (through a named struct)
    {"RPCL011", Severity::kError, 3, R"(
struct s { opaque data<>; };
program P { version V { void u(s) = 1; } = 1; } = 9;
)"},
    // result unbounded directly
    {"RPCL011", Severity::kError, 2, R"(
program P { version V { string r(void) = 1; } = 1; } = 9;
)"},
    // bounded product overflows the 32-bit wire length
    {"RPCL012", Severity::kError, 2, R"(
struct big { unsigned hyper d<600000000>; };
program P { version V { void u(big) = 1; } = 1; } = 9;
)"},
    // one union arm dominates the worst case
    {"RPCL013", Severity::kWarning, 2, R"(
union u switch (int tag) {
  case 0: opaque blob<1000000>;
  case 1: int small;
};
program P { version V { void f(u) = 1; } = 1; } = 9;
)"},
    // self-recursion through an optional
    {"RPCL014", Severity::kError, 2, R"(
struct node { int v; *node next; };
program P { version V { void f(node) = 1; } = 1; } = 9;
)"},
    // mutual recursion (reported at the closing back-reference)
    {"RPCL014", Severity::kError, 3, R"(
struct a { b x; };
struct b { a y; };
program P { version V { void f(a) = 1; } = 1; } = 9;
)"},
    // auto budget: CRICKET_MAX_PAYLOAD + 64 KiB allowance, exceeded
    {"RPCL015", Severity::kError, 4, R"(
const CRICKET_MAX_PAYLOAD = 1024;
struct s { opaque d<66600>; };
program P { version V { void f(s) = 1; } = 1; } = 9;
)"},
};

TEST(Bounds, EachRuleFiresWithRuleIdAndLine) {
  for (const auto& c : kBadBoundsSpecs) {
    SCOPED_TRACE(std::string(c.rule) + " @ line " + std::to_string(c.line));
    const SpecFile spec = parse_spec_unchecked(c.spec);
    const BoundsResult result = compute_bounds(spec);
    const Diagnostic* hit = nullptr;
    for (const auto& d : result.diagnostics)
      if (d.rule == c.rule) {
        hit = &d;
        break;
      }
    ASSERT_NE(hit, nullptr) << "rule did not fire";
    EXPECT_EQ(hit->severity, c.severity);
    EXPECT_EQ(hit->loc.line, c.line) << hit->message;
    EXPECT_FALSE(result.ok({.warnings_as_errors = true}));
  }
}

TEST(Bounds, SaturatedArithmeticIsReportedNotWrapped) {
  // a.max ~ 4e9 (u32-clean), b.max ~ 1.6e19 (overflows u32), c.max would be
  // ~6.4e19 > UINT64_MAX: the computation must saturate and say so instead
  // of wrapping around to a small "certified" bound.
  const SpecFile spec = parse_spec_unchecked(R"(
struct a { opaque d<4000000000>; };
struct b { a v[4000000000]; };
struct c { b w[4]; };
program P { version V { void f(c) = 1; } = 1; } = 9;
)");
  const BoundsResult r = compute_bounds(spec);
  EXPECT_FALSE(r.ok());
  bool saturated = false;
  for (const auto& d : r.diagnostics) {
    EXPECT_EQ(d.rule, "RPCL012");
    if (d.message.find("saturates") != std::string::npos) saturated = true;
  }
  EXPECT_TRUE(saturated);
}

TEST(Bounds, ExplicitProcBudgetOverridesAuto) {
  const SpecFile spec = parse_spec_unchecked(R"(
struct s { opaque d<2048>; };
program P { version V { void f(s) = 1; } = 1; } = 9;
)");
  EXPECT_TRUE(compute_bounds(spec).ok());  // no budget at all
  const BoundsResult tight = compute_bounds(spec, {.proc_budget = 1024});
  EXPECT_EQ(tight.budget, 1024u);
  ASSERT_EQ(tight.error_count(), 1u);
  EXPECT_EQ(tight.diagnostics[0].rule, "RPCL015");
  EXPECT_TRUE(compute_bounds(spec, {.proc_budget = 4096}).ok());
}

TEST(Bounds, UnusedUnboundedTypeIsTotalButNotAnError) {
  // RPCL011 is a per-procedure property: an unbounded type no procedure
  // reaches stays legal, and the emitted table is total (sentinel max).
  const SpecFile spec = parse_spec_unchecked(R"(
struct scratch { opaque data<>; };
program P { version V { int f(int) = 1; } = 1; } = 9;
)");
  const BoundsResult r = compute_bounds(spec);
  EXPECT_TRUE(r.ok());
  const auto* scratch = find_type(r, "scratch");
  ASSERT_NE(scratch, nullptr);
  EXPECT_FALSE(scratch->bounded);
  EXPECT_EQ(scratch->min, 4u);
  const std::string header =
      generate_bounds_header(spec, r, {.ns = "t", .source_name = "t.x"});
  EXPECT_NE(header.find("::cricket::rpc::kUnboundedWireSize"),
            std::string::npos);
}

TEST(Bounds, GeneratedHeaderHasTablesBudgetAndAsserts) {
  const SpecFile spec = parse_spec_unchecked(R"(
const CRICKET_MAX_PAYLOAD = 4096;
struct s { opaque d<512>; };
program P { version V { s f(s) = 1; } = 1; } = 9;
)");
  const BoundsResult r = compute_bounds(spec);
  ASSERT_TRUE(r.ok());
  const std::string header =
      generate_bounds_header(spec, r, {.ns = "t::proto", .source_name = "t.x"});
  EXPECT_NE(header.find("namespace t::proto::bounds {"), std::string::npos);
  EXPECT_NE(header.find("kMaxPayload = 4096ull"), std::string::npos);
  EXPECT_NE(header.find("kProcBudget = " + std::to_string(4096 + 65536)),
            std::string::npos);
  EXPECT_NE(header.find("TypeWireBounds kTypeBounds[]"), std::string::npos);
  EXPECT_NE(header.find("ProcWireBounds kProcBounds[]"), std::string::npos);
  EXPECT_NE(header.find("{\"s\", 4ull, 516ull}"), std::string::npos);
  EXPECT_NE(header.find("\"f\"},"), std::string::npos);
  EXPECT_NE(
      header.find("static_assert(kProcBounds[0].args_max <= kProcBudget"),
      std::string::npos);
  EXPECT_NE(
      header.find("static_assert(kProcBounds[0].result_max <= kProcBudget"),
      std::string::npos);
}

TEST(Bounds, NoBudgetMeansNoAsserts) {
  const SpecFile spec = parse_spec_unchecked(
      "program P { version V { int f(int) = 1; } = 1; } = 9;");
  const BoundsResult r = compute_bounds(spec);
  ASSERT_TRUE(r.ok());
  const std::string header =
      generate_bounds_header(spec, r, {.ns = "t", .source_name = "t.x"});
  EXPECT_EQ(header.find("static_assert("), std::string::npos);
  EXPECT_EQ(header.find("kProcBudget"), std::string::npos);
}


// --------------------------------- wiretaint --------------------------------

TEST(Parser, TaintedAttributeIsCapturedOnFieldsArgsAndTypedefs) {
  const SpecFile spec = parse_spec(R"(
typedef tainted unsigned hyper handle_t;
struct req { tainted unsigned hyper len; unsigned hyper untainted; };
program P { version V {
  int f(tainted unsigned int, handle_t) = 1;
} = 1; } = 9;
)");
  EXPECT_TRUE(spec.typedefs.at(0).type.tainted);
  EXPECT_TRUE(spec.structs.at(0).fields.at(0).type.tainted);
  EXPECT_FALSE(spec.structs.at(0).fields.at(1).type.tainted);
  const auto& proc = spec.programs.at(0).versions.at(0).procs.at(0);
  EXPECT_TRUE(proc.args.at(0).tainted);
  // The second arg is a typedef reference: the *use* is untainted, the
  // taint lives on the typedef and is resolved at codegen time.
  EXPECT_FALSE(proc.args.at(1).tainted);
  EXPECT_FALSE(proc.result.tainted);
}

TEST(Sema, TaintedThroughTypedefChainToIntegerScalarIsClean) {
  const SpecFile spec = parse_spec_unchecked(R"(
typedef unsigned hyper bytes_t;
typedef bytes_t len_t;
struct req { tainted len_t n; };
program P { version V { int f(req) = 1; } = 1; } = 9;
)");
  const SemaResult result = analyze(spec);
  for (const auto& d : result.diagnostics)
    EXPECT_NE(d.rule, "RPCL016") << format_diagnostic(d, "spec");
}

const char* const kTaintSpec = R"(
typedef tainted unsigned hyper handle_t;
struct req {
  tainted unsigned hyper len;
  tainted int dim;
  unsigned hyper plain;
  opaque data<64>;
};
program P { version V {
  int f(req) = 1;
  int g(tainted unsigned hyper, handle_t, string<16>) = 2;
} = 1; } = 0x21000001;
)";

TEST(Codegen, TaintModeWrapsDecodedScalarsServerSideOnly) {
  const SpecFile spec = parse_spec(kTaintSpec);
  const std::string header =
      generate_header(spec, {.ns = "t", .taint = true});
  // Struct fields: annotated scalars wrap, everything else stays plain.
  EXPECT_NE(header.find(
                "::cricket::xdr::Untrusted<std::uint64_t> len{};"),
            std::string::npos);
  EXPECT_NE(header.find("::cricket::xdr::Untrusted<std::int32_t> dim{};"),
            std::string::npos);
  EXPECT_NE(header.find("std::uint64_t plain{};"), std::string::npos);
  // Skeleton virtuals take Untrusted for tainted scalar args, including
  // taint applied through the typedef.
  EXPECT_NE(header.find("virtual std::int32_t g("
                        "::cricket::xdr::Untrusted<std::uint64_t> a0, "
                        "::cricket::xdr::Untrusted<handle_t> a1, "
                        "std::string a2) = 0;"),
            std::string::npos);
  // The client stub is the trusted side: it must stay plain. Slice off the
  // client-stub class and assert no Untrusted appears inside it.
  const auto stub_pos = header.find("class VClient");
  ASSERT_NE(stub_pos, std::string::npos);
  const auto stub_end = header.find("\n};", stub_pos);
  const std::string stub = header.substr(stub_pos, stub_end - stub_pos);
  EXPECT_EQ(stub.find("Untrusted"), std::string::npos) << stub;
  // The taint namespace publishes the bounds-derived ceilings and a
  // per-field validator for every wrapped struct field.
  EXPECT_NE(header.find("namespace taint {"), std::string::npos);
  EXPECT_NE(header.find("kMaxPayloadBytes"), std::string::npos);
  EXPECT_NE(header.find("validate_req_len"), std::string::npos);
  EXPECT_NE(header.find("validate_req_dim"), std::string::npos);
  EXPECT_EQ(header.find("validate_req_plain"), std::string::npos);
}

TEST(Codegen, WithoutTaintModeAnnotationsAreInert) {
  const SpecFile spec = parse_spec(kTaintSpec);
  const std::string header = generate_header(spec, {.ns = "t"});
  EXPECT_EQ(header.find("Untrusted"), std::string::npos);
  EXPECT_EQ(header.find("namespace taint"), std::string::npos);
}

std::string read_spec(const char* path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream source;
  source << in.rdbuf();
  return source.str();
}

TEST(Codegen, GoldenTaintHeaderForCommittedCricketSpec) {
  const SpecFile spec = parse_spec(read_spec(CRICKET_SPEC_X));
  const std::string header = generate_header(
      spec, {.ns = "cricket::core::proto", .taint = true});
  // The load-bearing wrappings the server sweep relies on.
  EXPECT_NE(header.find("virtual u64_result rpc_malloc("
                        "::cricket::xdr::Untrusted<std::uint64_t> a0) = 0;"),
            std::string::npos);
  EXPECT_NE(header.find("::cricket::xdr::Untrusted<std::uint32_t> x{};"),
            std::string::npos);  // rpc_dim3
  // ptr_t taints at use sites through the tainted typedef; the alias
  // itself stays a plain alias.
  EXPECT_NE(header.find("using ptr_t = std::uint64_t;"), std::string::npos);
  EXPECT_NE(header.find("::cricket::xdr::Untrusted<ptr_t>"),
            std::string::npos);
  EXPECT_NE(header.find("kMaxPayloadBytes = 1073741824ull;"),
            std::string::npos);
  const auto stub_pos = header.find("class CRICKETVERSClient");
  ASSERT_NE(stub_pos, std::string::npos);
  const auto stub_end = header.find("\n};", stub_pos);
  EXPECT_EQ(header.substr(stub_pos, stub_end - stub_pos).find("Untrusted"),
            std::string::npos);
}

TEST(Codegen, GoldenTaintHeaderForCommittedMigrateSpec) {
  const SpecFile spec = parse_spec(read_spec(MIGRATE_SPEC_X));
  const std::string header = generate_header(
      spec, {.ns = "cricket::migrate::proto", .taint = true});
  EXPECT_NE(header.find(
                "::cricket::xdr::Untrusted<std::uint64_t> offset{};"),
            std::string::npos);
  EXPECT_NE(header.find(
                "::cricket::xdr::Untrusted<std::uint64_t> ticket{};"),
            std::string::npos);
  // The checksum is only ever compared against a recomputed value; it is
  // deliberately not tainted.
  EXPECT_NE(header.find("std::uint64_t checksum{};"), std::string::npos);
  EXPECT_NE(header.find("kMaxPayloadBytes = 262164ull;"), std::string::npos);
  const auto stub_pos = header.find("class MIGRATEVERSClient");
  ASSERT_NE(stub_pos, std::string::npos);
  const auto stub_end = header.find("\n};", stub_pos);
  EXPECT_EQ(header.substr(stub_pos, stub_end - stub_pos).find("Untrusted"),
            std::string::npos);
}

#ifdef RPCLGEN_BIN
int run_rpclgen(const std::string& args) {
  const int rc =
      std::system((std::string(RPCLGEN_BIN) + " " + args + " >/dev/null 2>&1")
                      .c_str());
  return WEXITSTATUS(rc);
}

TEST(Cli, EmitTaintArgParsingIsStrict) {
  // --emit-taint is a header-generation flag; combining it with the other
  // modes (or misspelling it) is a usage error, exit code 2.
  EXPECT_EQ(run_rpclgen("--emit-taint --lint " CRICKET_SPEC_X), 2);
  EXPECT_EQ(run_rpclgen("--emit-bounds --emit-taint " CRICKET_SPEC_X), 2);
  EXPECT_EQ(run_rpclgen("--emit-tain " CRICKET_SPEC_X " /dev/null"), 2);
  EXPECT_EQ(run_rpclgen("--emit-taint " CRICKET_SPEC_X " /dev/null"), 0);
  EXPECT_EQ(run_rpclgen("--help"), 0);
}
#endif  // RPCLGEN_BIN

}  // namespace
}  // namespace cricket::rpcl
