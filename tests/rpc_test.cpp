#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "rpc/client.hpp"
#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "sim/rng.hpp"
#include "xdr/taint.hpp"

namespace cricket::rpc {
namespace {

constexpr std::uint32_t kProg = 0x20000001;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcAdd = 1;
constexpr std::uint32_t kProcEcho = 2;
constexpr std::uint32_t kProcFail = 3;
constexpr std::uint32_t kProcConcatN = 4;
constexpr std::uint32_t kProcValidate = 5;

ServiceRegistry make_test_registry() {
  ServiceRegistry reg;
  reg.register_typed<std::uint32_t, std::uint32_t, std::uint32_t>(
      kProg, kVers, kProcAdd,
      [](std::uint32_t a, std::uint32_t b) { return a + b; });
  reg.register_typed<std::vector<std::uint8_t>, std::vector<std::uint8_t>>(
      kProg, kVers, kProcEcho,
      [](std::vector<std::uint8_t> data) { return data; });
  reg.register_typed<std::uint32_t, std::uint32_t>(
      kProg, kVers, kProcFail, [](std::uint32_t) -> std::uint32_t {
        throw std::runtime_error("handler exploded");
      });
  reg.register_typed<std::string, std::string, std::uint32_t>(
      kProg, kVers, kProcConcatN, [](const std::string& s, std::uint32_t n) {
        std::string out;
        for (std::uint32_t i = 0; i < n; ++i) out += s;
        return out;
      });
  // wiretaint: the handler validates its tainted scalar; the dispatch layer
  // turns the TaintError into a kGarbageArgs reply.
  reg.register_typed<std::uint64_t, xdr::Untrusted<std::uint64_t>>(
      kProg, kVers, kProcValidate, [](xdr::Untrusted<std::uint64_t> n) {
        return n.validate(1000, "test scalar");
      });
  return reg;
}

/// Client + in-process server fixture over a pipe pair.
class RpcPipeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = make_test_registry();
    auto [client_end, server_end] = make_pipe_pair();
    server_end_ = std::move(server_end);
    server_thread_ = std::thread([this] {
      serve_transport(registry_, *server_end_);
    });
    client_ = std::make_unique<RpcClient>(std::move(client_end), kProg, kVers);
  }

  void TearDown() override {
    client_.reset();  // shuts down the client->server direction
    if (server_thread_.joinable()) server_thread_.join();
  }

  ServiceRegistry registry_;
  std::unique_ptr<Transport> server_end_;
  std::unique_ptr<RpcClient> client_;
  std::thread server_thread_;
};

TEST_F(RpcPipeTest, NullProcedurePings) { EXPECT_NO_THROW(client_->ping()); }

TEST_F(RpcPipeTest, TypedCallReturnsSum) {
  EXPECT_EQ((client_->call<std::uint32_t>(kProcAdd, std::uint32_t{2},
                                          std::uint32_t{40})),
            42u);
}

TEST_F(RpcPipeTest, ManySequentialCallsIncrementXids) {
  for (std::uint32_t i = 0; i < 500; ++i) {
    EXPECT_EQ((client_->call<std::uint32_t>(kProcAdd, i, i)), 2 * i);
  }
  EXPECT_EQ(client_->stats().calls, 500u);
}

TEST_F(RpcPipeTest, EchoLargePayloadRoundTrips) {
  sim::Xoshiro256ss rng(3);
  std::vector<std::uint8_t> payload(3u << 20);  // 3 MiB: forces fragmentation
  rng.fill_bytes(payload);
  const auto echoed =
      client_->call<std::vector<std::uint8_t>>(kProcEcho, payload);
  EXPECT_EQ(echoed, payload);
}

TEST_F(RpcPipeTest, UnknownProcedureIsProcUnavail) {
  try {
    client_->call_void(999);
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kProcUnavail);
  }
}

TEST_F(RpcPipeTest, HandlerExceptionIsSystemErr) {
  try {
    (void)client_->call<std::uint32_t>(kProcFail, std::uint32_t{1});
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kSystemErr);
  }
}

TEST_F(RpcPipeTest, TruncatedArgsAreGarbageArgs) {
  // kProcAdd wants two u32s; send one.
  xdr::Encoder enc;
  enc.put_u32(1);
  try {
    (void)client_->call_raw(kProcAdd, enc.bytes());
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kGarbageArgs);
  }
}

TEST_F(RpcPipeTest, TaintValidationFailureIsGarbageArgs) {
  // In-bound value validates and the plain result comes back.
  EXPECT_EQ(client_->call<std::uint64_t>(kProcValidate,
                                         xdr::Untrusted<std::uint64_t>(1000)),
            1000u);
  // Out-of-bound value dies in validate(): a typed kGarbageArgs reply, the
  // same class a malformed argument body gets — never a crash or
  // kSystemErr.
  try {
    (void)client_->call<std::uint64_t>(kProcValidate,
                                       xdr::Untrusted<std::uint64_t>(1001));
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kGarbageArgs);
  }
}

TEST_F(RpcPipeTest, TrailingArgsAreGarbageArgs) {
  xdr::Encoder enc;
  enc.put_u32(1);
  enc.put_u32(2);
  enc.put_u32(3);  // extra
  try {
    (void)client_->call_raw(kProcAdd, enc.bytes());
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kGarbageArgs);
  }
}

TEST_F(RpcPipeTest, StatsCountBytesBothWays) {
  (void)client_->call<std::uint32_t>(kProcAdd, std::uint32_t{1},
                                     std::uint32_t{2});
  EXPECT_GT(client_->stats().bytes_sent, 0u);
  EXPECT_GT(client_->stats().bytes_received, 0u);
}

TEST_F(RpcPipeTest, MultiArgStringProcedure) {
  EXPECT_EQ((client_->call<std::string>(kProcConcatN, std::string("ab"),
                                        std::uint32_t{3})),
            "ababab");
}

TEST(RpcVersioning, WrongVersionReportsMismatchBounds) {
  ServiceRegistry reg = make_test_registry();
  auto [client_end, server_end] = make_pipe_pair();
  std::thread server([&reg, t = std::move(server_end)]() mutable {
    serve_transport(reg, *t);
  });
  {
    RpcClient client(std::move(client_end), kProg, /*vers=*/99);
    try {
      client.ping();
      FAIL() << "expected RpcError";
    } catch (const RpcError& e) {
      EXPECT_EQ(e.kind(), RpcError::Kind::kProgMismatch);
      EXPECT_NE(std::string(e.what()).find("1..1"), std::string::npos);
    }
  }
  server.join();
}

TEST(RpcVersioning, UnknownProgramIsProgUnavail) {
  ServiceRegistry reg = make_test_registry();
  auto [client_end, server_end] = make_pipe_pair();
  std::thread server([&reg, t = std::move(server_end)]() mutable {
    serve_transport(reg, *t);
  });
  {
    RpcClient client(std::move(client_end), /*prog=*/0xBAD, kVers);
    try {
      client.ping();
      FAIL() << "expected RpcError";
    } catch (const RpcError& e) {
      EXPECT_EQ(e.kind(), RpcError::Kind::kProgUnavail);
    }
  }
  server.join();
}

/// In-process peer that answers every call with a success reply carrying the
/// wrong xid — a misbehaving (or pipelining) server on a synchronous channel.
class WrongXidTransport final : public Transport {
 public:
  void send(std::span<const std::uint8_t> data) override {
    inbox_.insert(inbox_.end(), data.begin(), data.end());
    while (inbox_.size() >= 4) {
      const std::uint32_t header =
          (std::uint32_t{inbox_[0]} << 24) | (std::uint32_t{inbox_[1]} << 16) |
          (std::uint32_t{inbox_[2]} << 8) | std::uint32_t{inbox_[3]};
      const bool last = (header & 0x8000'0000u) != 0;
      const std::size_t len = header & 0x7FFF'FFFFu;
      if (inbox_.size() < 4 + len) break;
      record_.insert(record_.end(), inbox_.begin() + 4,
                     inbox_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
      inbox_.erase(inbox_.begin(),
                   inbox_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
      if (!last) continue;
      const CallMsg call = decode_call(record_);
      record_.clear();
      ReplyMsg reply;
      reply.xid = call.xid + 1;  // the misbehaviour under test
      append_record_marked(outbox_, encode_reply(reply));
    }
  }

  std::size_t recv(std::span<std::uint8_t> out) override {
    if (outbox_.empty()) return 0;
    const std::size_t n = std::min(out.size(), outbox_.size());
    std::copy_n(outbox_.begin(), n, out.begin());
    outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<std::ptrdiff_t>(n));
    return n;
  }

  void shutdown() override {}

 private:
  std::vector<std::uint8_t> inbox_;
  std::vector<std::uint8_t> record_;
  std::vector<std::uint8_t> outbox_;
};

TEST(RpcXidMatching, MismatchedReplyXidIsBadReplyWithBothXids) {
  ClientOptions options;
  options.initial_xid = 0x1000;
  RpcClient client(std::make_unique<WrongXidTransport>(), kProg, kVers,
                   options);
  try {
    client.ping();
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kBadReply);
    const std::string what = e.what();
    // Both the expected and the received xid are named in the message.
    EXPECT_NE(what.find(std::to_string(0x1000)), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(0x1001)), std::string::npos) << what;
  }
}

// ------------------------------ record marking ------------------------------

TEST(RecordMarking, SingleFragmentRoundTrip) {
  auto [a, b] = make_pipe_pair();
  RecordWriter writer(*a);
  RecordReader reader(*b);
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  writer.write_record(msg);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(reader.read_record(out));
  EXPECT_EQ(out, msg);
}

TEST(RecordMarking, EmptyRecordRoundTrip) {
  auto [a, b] = make_pipe_pair();
  RecordWriter writer(*a);
  RecordReader reader(*b);
  writer.write_record({});
  std::vector<std::uint8_t> out = {9};
  ASSERT_TRUE(reader.read_record(out));
  EXPECT_TRUE(out.empty());
}

TEST(RecordMarking, EofBeforeRecordReturnsFalse) {
  auto [a, b] = make_pipe_pair();
  a->shutdown();
  RecordReader reader(*b);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(reader.read_record(out));
}

TEST(RecordMarking, EofMidRecordThrows) {
  auto [a, b] = make_pipe_pair();
  // Header claiming 100 bytes, then only 10, then EOF.
  const std::uint8_t hdr[4] = {0x80, 0, 0, 100};
  a->send(hdr);
  const std::uint8_t partial[10] = {};
  a->send(partial);
  a->shutdown();
  RecordReader reader(*b);
  std::vector<std::uint8_t> out;
  EXPECT_THROW((void)reader.read_record(out), TransportError);
}

TEST(RecordMarking, OversizeRecordRejected) {
  auto [a, b] = make_pipe_pair();
  const std::uint8_t hdr[4] = {0x00, 0xFF, 0xFF, 0xFF};  // 16 MiB, not last
  a->send(hdr);
  RecordReader reader(*b, /*max_record=*/1024);
  std::vector<std::uint8_t> out;
  EXPECT_THROW((void)reader.read_record(out), TransportError);
}

// The paper (§2) singles out fragmented-message support as the reason the
// existing Rust onc_rpc crate was unusable for Cricket. Sweep fragment sizes
// against payload sizes to prove reassembly is exact.
struct FragmentCase {
  std::uint32_t max_fragment;
  std::size_t payload;
};

class RecordFragmentation : public ::testing::TestWithParam<FragmentCase> {};

TEST_P(RecordFragmentation, ReassemblesExactly) {
  const auto [max_fragment, payload_size] = GetParam();
  auto [a, b] = make_pipe_pair(/*capacity_bytes=*/1 << 22);
  RecordWriter writer(*a, max_fragment);
  RecordReader reader(*b);

  sim::Xoshiro256ss rng(payload_size * 31 + max_fragment);
  std::vector<std::uint8_t> msg(payload_size);
  rng.fill_bytes(msg);

  std::thread sender([&] { writer.write_record(msg); });
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(reader.read_record(out));
  sender.join();
  EXPECT_EQ(out, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecordFragmentation,
    ::testing::Values(FragmentCase{1, 1}, FragmentCase{1, 17},
                      FragmentCase{7, 100}, FragmentCase{64, 64},
                      FragmentCase{64, 65}, FragmentCase{1024, 1 << 16},
                      FragmentCase{4096, (1 << 20) + 3},
                      FragmentCase{RecordWriter::kDefaultMaxFragment, 1 << 21}));

TEST(RecordMarking, BackToBackRecordsKeepBoundaries) {
  auto [a, b] = make_pipe_pair();
  RecordWriter writer(*a, /*max_fragment=*/8);
  RecordReader reader(*b);
  std::vector<std::vector<std::uint8_t>> msgs;
  sim::Xoshiro256ss rng(5);
  for (std::size_t len : {0u, 1u, 8u, 9u, 100u, 31u}) {
    std::vector<std::uint8_t> m(len);
    rng.fill_bytes(m);
    msgs.push_back(m);
  }
  std::thread sender([&] {
    for (const auto& m : msgs) writer.write_record(m);
    a->shutdown();
  });
  for (const auto& expected : msgs) {
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(reader.read_record(out));
    EXPECT_EQ(out, expected);
  }
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(reader.read_record(out));
  sender.join();
}

// ------------------------------- rpc messages -------------------------------

TEST(RpcMsg, CallRoundTrip) {
  CallMsg call;
  call.xid = 77;
  call.prog = kProg;
  call.vers = kVers;
  call.proc = kProcAdd;
  call.cred = AuthSysParms{.stamp = 1,
                           .machinename = "unikernel0",
                           .uid = 1000,
                           .gid = 100,
                           .gids = {100, 10}}
                  .to_opaque();
  call.args = {0, 0, 0, 1};
  const auto wire = encode_call(call);
  const CallMsg out = decode_call(wire);
  EXPECT_EQ(out.xid, 77u);
  EXPECT_EQ(out.prog, kProg);
  EXPECT_EQ(out.vers, kVers);
  EXPECT_EQ(out.proc, kProcAdd);
  EXPECT_EQ(out.args, call.args);
  const auto sys = AuthSysParms::from_opaque(out.cred);
  EXPECT_EQ(sys.machinename, "unikernel0");
  EXPECT_EQ(sys.uid, 1000u);
  EXPECT_EQ(sys.gids.size(), 2u);
}

TEST(RpcMsg, ReplySuccessRoundTrip) {
  ReplyMsg reply;
  reply.xid = 5;
  reply.accept_stat = AcceptStat::kSuccess;
  reply.results = {9, 9, 9, 9};
  const ReplyMsg out = decode_reply(encode_reply(reply));
  EXPECT_EQ(out.xid, 5u);
  EXPECT_EQ(out.stat, ReplyStat::kAccepted);
  EXPECT_EQ(out.accept_stat, AcceptStat::kSuccess);
  EXPECT_EQ(out.results, reply.results);
}

TEST(RpcMsg, ReplyProgMismatchCarriesBounds) {
  ReplyMsg reply;
  reply.xid = 6;
  reply.accept_stat = AcceptStat::kProgMismatch;
  reply.mismatch = MismatchInfo{2, 4};
  const ReplyMsg out = decode_reply(encode_reply(reply));
  ASSERT_TRUE(out.mismatch.has_value());
  EXPECT_EQ(out.mismatch->low, 2u);
  EXPECT_EQ(out.mismatch->high, 4u);
}

TEST(RpcMsg, ReplyDeniedAuthError) {
  ReplyMsg reply;
  reply.xid = 7;
  reply.stat = ReplyStat::kDenied;
  reply.reject_stat = RejectStat::kAuthError;
  reply.auth_stat = AuthStat::kTooWeak;
  const ReplyMsg out = decode_reply(encode_reply(reply));
  EXPECT_EQ(out.stat, ReplyStat::kDenied);
  EXPECT_EQ(out.reject_stat, RejectStat::kAuthError);
  EXPECT_EQ(out.auth_stat, AuthStat::kTooWeak);
}

TEST(RpcMsg, ReplyQuotaExceededCarriesReason) {
  ReplyMsg reply;
  reply.xid = 8;
  reply.accept_stat = AcceptStat::kQuotaExceeded;
  reply.quota_reason = QuotaReason::kRateLimited;
  const ReplyMsg out = decode_reply(encode_reply(reply));
  EXPECT_EQ(out.stat, ReplyStat::kAccepted);
  EXPECT_EQ(out.accept_stat, AcceptStat::kQuotaExceeded);
  EXPECT_EQ(out.quota_reason, QuotaReason::kRateLimited);
  EXPECT_TRUE(out.results.empty());
}

TEST(RpcMsg, ReplyQuotaExceededInvalidReasonThrows) {
  ReplyMsg reply;
  reply.xid = 8;
  reply.accept_stat = AcceptStat::kQuotaExceeded;
  reply.quota_reason = QuotaReason::kSessionLimit;
  auto wire = encode_reply(reply);
  // The reason word is the 4-byte body after the 24-byte accepted header.
  wire.back() = 9;  // past kSessionLimit
  EXPECT_THROW((void)decode_reply(wire), RpcFormatError);
}

TEST(RpcMsg, QuotaReasonNames) {
  EXPECT_STREQ(quota_reason_name(QuotaReason::kUnspecified), "unspecified");
  EXPECT_STREQ(quota_reason_name(QuotaReason::kRateLimited), "rate_limited");
  EXPECT_STREQ(quota_reason_name(QuotaReason::kOutstandingCalls),
               "outstanding_calls");
  EXPECT_STREQ(quota_reason_name(QuotaReason::kDeviceMemory),
               "device_memory");
  EXPECT_STREQ(quota_reason_name(QuotaReason::kSessionLimit),
               "session_limit");
}

TEST(RpcMsg, PeekCallCredentialMatchesFullDecode) {
  CallMsg call;
  call.xid = 0x1234;
  call.cred = AuthSysParms{
      .stamp = 7, .machinename = "tenant-a", .uid = 3, .gid = 4, .gids = {}}
                  .to_opaque();
  call.args = {1, 2, 3, 4};
  const auto wire = encode_call(call);
  const OpaqueAuth cred = peek_call_credential(wire);
  EXPECT_EQ(cred.flavor, AuthFlavor::kSys);
  EXPECT_EQ(cred.body, call.cred.body);
  EXPECT_EQ(AuthSysParms::from_opaque(cred).machinename, "tenant-a");
  // Same structural strictness as peek_call_header.
  ReplyMsg reply;
  reply.xid = 1;
  EXPECT_THROW((void)peek_call_credential(encode_reply(reply)),
               RpcFormatError);
}

TEST(RpcMsg, DecodeCallRejectsReply) {
  ReplyMsg reply;
  reply.xid = 1;
  EXPECT_THROW((void)decode_call(encode_reply(reply)), RpcFormatError);
}

TEST(RpcMsg, DecodeRejectsWrongRpcVersion) {
  CallMsg call;
  call.xid = 1;
  auto wire = encode_call(call);
  wire[11] = 3;  // rpcvers lives at bytes 8..11 (big-endian)
  EXPECT_THROW((void)decode_call(wire), RpcFormatError);
}

TEST(RpcMsg, AuthSysRejectsOversizeGidList) {
  xdr::Encoder enc;
  enc.put_u32(0);
  enc.put_string("m");
  enc.put_u32(0);
  enc.put_u32(0);
  enc.put_u32(17);  // > 16 gids
  for (int i = 0; i < 17; ++i) enc.put_u32(0);
  OpaqueAuth auth;
  auth.flavor = AuthFlavor::kSys;
  auth.body = {enc.bytes().begin(), enc.bytes().end()};
  EXPECT_THROW((void)AuthSysParms::from_opaque(auth), RpcFormatError);
}

TEST(RpcMsg, PeekCallHeaderMatchesFullDecode) {
  CallMsg call;
  call.xid = 0xABCD;
  call.prog = kProg;
  call.vers = kVers;
  call.proc = kProcEcho;
  call.cred = AuthSysParms{
      .stamp = 1, .machinename = "uk", .uid = 1, .gid = 1, .gids = {}}
                  .to_opaque();
  call.args = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto wire = encode_call(call);
  const CallHeader hdr = peek_call_header(wire);
  EXPECT_EQ(hdr.xid, call.xid);
  EXPECT_EQ(hdr.prog, kProg);
  EXPECT_EQ(hdr.vers, kVers);
  EXPECT_EQ(hdr.proc, kProcEcho);
  // body_offset lands exactly on the encoded args.
  ASSERT_EQ(wire.size() - hdr.body_offset, call.args.size());
  EXPECT_EQ(decode_call(wire).args, call.args);
  // Replies and wrong rpcvers are rejected just like decode_call.
  ReplyMsg reply;
  reply.xid = 1;
  EXPECT_THROW((void)peek_call_header(encode_reply(reply)), RpcFormatError);
  auto bad = wire;
  bad[11] = 3;
  EXPECT_THROW((void)peek_call_header(bad), RpcFormatError);
}

TEST(RpcMsg, TruncatedCallEveryHeaderPrefixThrows) {
  CallMsg call;
  call.xid = 9;
  call.prog = kProg;
  call.vers = kVers;
  call.proc = kProcAdd;
  call.cred = AuthSysParms{
      .stamp = 3, .machinename = "uk0", .uid = 5, .gid = 5, .gids = {}}
                  .to_opaque();
  call.args = {0, 0, 0, 1};
  const auto wire = encode_call(call);
  const std::size_t body_offset = peek_call_header(wire).body_offset;
  for (std::size_t n = 0; n < body_offset; ++n) {
    SCOPED_TRACE("prefix length " + std::to_string(n));
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() + std::ptrdiff_t(n));
    bool decode_threw = false;
    try {
      (void)decode_call(prefix);
    } catch (const xdr::XdrError&) {
      decode_threw = true;
    } catch (const RpcFormatError&) {
      decode_threw = true;
    }
    EXPECT_TRUE(decode_threw);
    bool peek_threw = false;
    try {
      (void)peek_call_header(prefix);
    } catch (const xdr::XdrError&) {
      peek_threw = true;
    } catch (const RpcFormatError&) {
      peek_threw = true;
    }
    EXPECT_TRUE(peek_threw);
  }
  // Truncation inside the args region is not the header codec's problem:
  // the call decodes with shorter args (the typed layer rejects those).
  EXPECT_TRUE(
      decode_call(std::span(wire).first(body_offset)).args.empty());
}

TEST(RpcMsg, TruncatedReplyEveryPrefixThrows) {
  ReplyMsg mismatch;
  mismatch.xid = 6;
  mismatch.accept_stat = AcceptStat::kProgMismatch;
  mismatch.mismatch = MismatchInfo{2, 4};
  ReplyMsg denied;
  denied.xid = 7;
  denied.stat = ReplyStat::kDenied;
  denied.reject_stat = RejectStat::kAuthError;
  denied.auth_stat = AuthStat::kBadCred;
  for (const auto& wire : {encode_reply(mismatch), encode_reply(denied)}) {
    for (std::size_t n = 0; n < wire.size(); ++n) {
      SCOPED_TRACE("prefix length " + std::to_string(n));
      const std::vector<std::uint8_t> prefix(wire.begin(),
                                             wire.begin() + std::ptrdiff_t(n));
      bool threw = false;
      try {
        (void)decode_reply(prefix);
      } catch (const xdr::XdrError&) {
        threw = true;
      } catch (const RpcFormatError&) {
        threw = true;
      }
      EXPECT_TRUE(threw) << "early EOF must throw, never parse";
    }
  }
}

TEST(RpcMsg, ReplyInvalidAcceptStatThrows) {
  ReplyMsg reply;
  reply.xid = 5;
  auto wire = encode_reply(reply);
  // xid(4) mtype(4) reply_stat(4) verf flavor(4) verf len(4) accept_stat(4)
  ASSERT_EQ(wire.size(), 24u);
  wire[23] = 9;  // not a valid accept_stat
  EXPECT_THROW((void)decode_reply(wire), RpcFormatError);
}

TEST(RpcMsg, ReplyInvalidRejectAndAuthStatThrow) {
  ReplyMsg denied;
  denied.xid = 7;
  denied.stat = ReplyStat::kDenied;
  denied.reject_stat = RejectStat::kAuthError;
  denied.auth_stat = AuthStat::kBadCred;
  const auto wire = encode_reply(denied);
  // xid(4) mtype(4) reply_stat(4) reject_stat(4) auth_stat(4)
  ASSERT_EQ(wire.size(), 20u);
  auto bad_reject = wire;
  bad_reject[15] = 5;  // reject_stat must be 0 or 1
  EXPECT_THROW((void)decode_reply(bad_reject), RpcFormatError);
  auto bad_auth = wire;
  bad_auth[19] = 200;  // auth_stat outside kOk..kFailed
  EXPECT_THROW((void)decode_reply(bad_auth), RpcFormatError);
}

TEST(RpcMsg, ReplyTrailingGarbageAfterErrorBodyThrows) {
  ReplyMsg denied;
  denied.xid = 8;
  denied.stat = ReplyStat::kDenied;
  denied.reject_stat = RejectStat::kAuthError;
  denied.auth_stat = AuthStat::kTooWeak;
  auto wire = encode_reply(denied);
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(0);
  EXPECT_THROW((void)decode_reply(wire), xdr::XdrError);
}

// ------------------------- bounds decode pre-flight -------------------------

/// Same pipe fixture, with a wire-size bounds table installed: records whose
/// length cannot be a valid encoding of the addressed procedure's arguments
/// are answered with GarbageArgs before any decode or allocation happens.
class RpcPreflightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = make_test_registry();
    registry_.set_bounds(kBoundsTable);
    auto [client_end, server_end] = make_pipe_pair();
    server_end_ = std::move(server_end);
    server_thread_ =
        std::thread([this] { serve_transport(registry_, *server_end_); });
    client_ = std::make_unique<RpcClient>(std::move(client_end), kProg, kVers);
  }

  void TearDown() override {
    client_.reset();
    if (server_thread_.joinable()) server_thread_.join();
  }

  static constexpr ProcWireBounds kBoundsTable[] = {
      // echo: opaque<64> worst case = 4-byte count + 64 bytes
      {kProg, kVers, kProcEcho, 4, 68, 4, 68, "echo"},
      // add: exactly two u32s
      {kProg, kVers, kProcAdd, 8, 8, 4, 4, "add"},
  };

  ServiceRegistry registry_;
  std::unique_ptr<Transport> server_end_;
  std::unique_ptr<RpcClient> client_;
  std::thread server_thread_;
};

obs::Counter& preflight_rejected_counter() {
  return obs::Registry::global().counter(
      "cricket_rpc_preflight_rejected_total", {},
      "Records rejected by wire-size bounds pre-flight before decode");
}

obs::Counter& args_decode_counter() {
  return obs::Registry::global().counter("cricket_rpc_args_decode_total", {},
                                         "Typed argument decode attempts");
}

TEST_F(RpcPreflightTest, InRangeRecordsPassThrough) {
  const std::vector<std::uint8_t> payload(60, 0x42);  // 64 encoded: in range
  EXPECT_EQ(client_->call<std::vector<std::uint8_t>>(kProcEcho, payload),
            payload);
  EXPECT_EQ(
      (client_->call<std::uint32_t>(kProcAdd, std::uint32_t{20},
                                    std::uint32_t{22})),
      42u);
}

TEST_F(RpcPreflightTest, OversizedRecordRejectedBeforeDecode) {
  const std::uint64_t rejected_before = preflight_rejected_counter().value();
  const std::uint64_t decodes_before = args_decode_counter().value();
  try {
    // 100-byte payload encodes to 104 > the proven max of 68.
    (void)client_->call<std::vector<std::uint8_t>>(
        kProcEcho, std::vector<std::uint8_t>(100, 0x42));
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kGarbageArgs);
  }
  EXPECT_EQ(preflight_rejected_counter().value(), rejected_before + 1);
  // The proof of "before decode": the typed decode counter never moved.
  EXPECT_EQ(args_decode_counter().value(), decodes_before);
}

TEST_F(RpcPreflightTest, UndersizedRecordRejectedBeforeDecode) {
  const std::uint64_t rejected_before = preflight_rejected_counter().value();
  const std::uint64_t decodes_before = args_decode_counter().value();
  xdr::Encoder enc;
  enc.put_u32(1);  // add needs exactly 8 bytes of args
  try {
    (void)client_->call_raw(kProcAdd, enc.bytes());
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcError::Kind::kGarbageArgs);
  }
  EXPECT_EQ(preflight_rejected_counter().value(), rejected_before + 1);
  EXPECT_EQ(args_decode_counter().value(), decodes_before);
}

TEST_F(RpcPreflightTest, ProcsOutsideTheTableAreNotPreflighted) {
  const std::uint64_t rejected_before = preflight_rejected_counter().value();
  EXPECT_EQ((client_->call<std::string>(kProcConcatN, std::string("xy"),
                                        std::uint32_t{2})),
            "xyxy");
  EXPECT_EQ(preflight_rejected_counter().value(), rejected_before);
}

// --------------------------- real TCP integration ---------------------------

TEST(RpcTcp, LoopbackCallsWork) {
  const ServiceRegistry reg = make_test_registry();
  TcpRpcServer server(reg, std::make_unique<TcpListener>());
  auto conn = TcpTransport::connect_loopback(server.port());
  RpcClient client(std::move(conn), kProg, kVers);
  EXPECT_EQ((client.call<std::uint32_t>(kProcAdd, std::uint32_t{20},
                                        std::uint32_t{22})),
            42u);
  sim::Xoshiro256ss rng(4);
  std::vector<std::uint8_t> payload(1 << 20);
  rng.fill_bytes(payload);
  EXPECT_EQ((client.call<std::vector<std::uint8_t>>(kProcEcho, payload)),
            payload);
}

TEST(RpcTcp, MultipleConcurrentClients) {
  const ServiceRegistry reg = make_test_registry();
  TcpRpcServer server(reg, std::make_unique<TcpListener>());
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        RpcClient client(TcpTransport::connect_loopback(server.port()), kProg,
                         kVers);
        for (std::uint32_t i = 0; i < 200; ++i) {
          const auto want = static_cast<std::uint32_t>(t) + i;
          if (client.call<std::uint32_t>(kProcAdd,
                                         static_cast<std::uint32_t>(t), i) !=
              want)
            ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ------------------------------- byte queues --------------------------------

TEST(ByteQueue, BlocksUntilDataArrives) {
  ByteQueue q(16);
  std::thread producer([&] {
    const std::uint8_t data[3] = {1, 2, 3};
    q.push(data);
  });
  std::uint8_t out[3] = {};
  std::size_t got = 0;
  while (got < 3) got += q.pop(std::span(out + got, 3 - got));
  producer.join();
  EXPECT_EQ(out[2], 3);
}

TEST(ByteQueue, PushBlocksWhenFullThenDrains) {
  ByteQueue q(4);
  std::vector<std::uint8_t> big(64);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i);
  std::thread producer([&] {
    q.push(big);
    q.close();
  });
  std::vector<std::uint8_t> out;
  std::uint8_t buf[8];
  for (;;) {
    const std::size_t n = q.pop(buf);
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  producer.join();
  EXPECT_EQ(out, big);
}

TEST(ByteQueue, PushAfterCloseThrows) {
  ByteQueue q(4);
  q.close();
  const std::uint8_t b[1] = {0};
  EXPECT_THROW(q.push(b), TransportError);
}

}  // namespace
}  // namespace cricket::rpc

// -------------------------------- portmapper --------------------------------

#include "rpc/portmap.hpp"

namespace cricket::rpc {
namespace {

TEST(Portmap, SetGetportUnsetLocally) {
  Portmapper pm;
  EXPECT_TRUE(pm.set({kProg, 1, kIpProtoTcp, 5001}));
  EXPECT_FALSE(pm.set({kProg, 1, kIpProtoTcp, 5002}));  // duplicate refused
  EXPECT_TRUE(pm.set({kProg, 1, kIpProtoUdp, 5001}));   // other proto fine
  EXPECT_EQ(pm.getport(kProg, 1, kIpProtoTcp), 5001u);
  EXPECT_EQ(pm.getport(kProg, 2, kIpProtoTcp), 0u);  // not registered
  EXPECT_TRUE(pm.unset(kProg, 1));
  EXPECT_EQ(pm.getport(kProg, 1, kIpProtoTcp), 0u);
  EXPECT_FALSE(pm.unset(kProg, 1));  // already gone
}

TEST(Portmap, MappingXdrRoundTrip) {
  const PmapMapping m{0x20000C81, 1, kIpProtoTcp, 49152};
  xdr::Encoder enc;
  xdr_encode(enc, m);
  EXPECT_EQ(enc.size(), 16u);  // four u32 fields, RFC 1833 layout
  xdr::Decoder dec(enc.bytes());
  PmapMapping out;
  xdr_decode(dec, out);
  EXPECT_EQ(out, m);
}

TEST(Portmap, WireProtocolOverPipe) {
  Portmapper pm;
  ServiceRegistry registry;
  pm.register_into(registry);
  auto [client_end, server_end] = make_pipe_pair();
  std::thread server([&registry, t = std::move(server_end)]() mutable {
    serve_transport(registry, *t);
  });
  {
    PortmapClient client(std::move(client_end));
    EXPECT_TRUE(client.set({777, 3, kIpProtoTcp, 9999}));
    EXPECT_EQ(client.getport(777, 3), 9999u);
    EXPECT_EQ(client.getport(777, 4), 0u);
    const auto mappings = client.dump();
    ASSERT_EQ(mappings.size(), 1u);
    EXPECT_EQ(mappings[0].port, 9999u);
    EXPECT_TRUE(client.unset(777, 3));
    EXPECT_TRUE(client.dump().empty());
  }
  server.join();
}

TEST(Portmap, DiscoverThenConnectFlow) {
  // The full deployment flow: a service registers its ephemeral TCP port
  // with the portmapper; a client discovers it and dials.
  const ServiceRegistry service = make_test_registry();
  TcpRpcServer service_server(service, std::make_unique<TcpListener>());

  Portmapper pm;
  ServiceRegistry pm_registry;
  pm.register_into(pm_registry);
  TcpRpcServer pm_server(pm_registry, std::make_unique<TcpListener>());

  // Service side registers itself.
  {
    PortmapClient reg(TcpTransport::connect_loopback(pm_server.port()));
    ASSERT_TRUE(reg.set({kProg, kVers, kIpProtoTcp, service_server.port()}));
  }
  // Client side discovers and calls.
  PortmapClient discover(TcpTransport::connect_loopback(pm_server.port()));
  const auto port = discover.getport(kProg, kVers);
  ASSERT_NE(port, 0u);
  RpcClient client(TcpTransport::connect_loopback(
                       static_cast<std::uint16_t>(port)),
                   kProg, kVers);
  EXPECT_EQ((client.call<std::uint32_t>(kProcAdd, std::uint32_t{40},
                                        std::uint32_t{2})),
            42u);
}

}  // namespace
}  // namespace cricket::rpc
