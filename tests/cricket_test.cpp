#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <thread>

#include "cricket/checkpoint.hpp"
#include "cricket/client.hpp"
#include "cricket/scheduler.hpp"
#include "cricket/server.hpp"
#include "cricket/transfer.hpp"
#include "cudart/raii.hpp"
#include "env/environment.hpp"
#include "fatbin/cubin.hpp"
#include "sim/rng.hpp"

namespace cricket::core {
namespace {

using cuda::Error;

fatbin::CubinImage saxpy_image() {
  fatbin::CubinImage img;
  img.sm_arch = 75;
  fatbin::KernelDescriptor k;
  k.name = "remote_saxpy";
  k.params = {{.size = 8, .align = 8, .is_pointer = true},
              {.size = 8, .align = 8, .is_pointer = true},
              {.size = 4, .align = 4, .is_pointer = false},
              {.size = 4, .align = 4, .is_pointer = false}};
  img.kernels.push_back(k);
  fatbin::GlobalSymbol g;
  g.name = "g_bias";
  g.size = 4;
  g.init = {0, 0, 128, 63};  // 1.0f little-endian
  img.globals.push_back(g);
  img.code = fatbin::make_pseudo_isa(256, 9);
  return img;
}

void register_saxpy(gpusim::KernelRegistry& reg) {
  reg.register_kernel("remote_saxpy", [](gpusim::LaunchContext& ctx) {
    const auto y = ctx.ptr_param(0);
    const auto x = ctx.ptr_param(1);
    const float a = ctx.param<float>(2);
    const auto n = ctx.param<std::uint32_t>(3);
    if (!ctx.timing_only()) {
      auto ys = ctx.mem_as<float>(y, n);
      auto xs = ctx.mem_as<float>(x, n);
      for (std::uint32_t i = 0; i < n; ++i) ys[i] += a * xs[i];
    }
    ctx.charge_flops(2.0 * n);
    ctx.charge_dram_bytes(12.0 * n);
  });
}

/// Full client<->server stack over an in-process pipe (no cost shaping):
/// exercises the generated stubs, the session, and the LocalCudaApi.
struct CricketFixture : ::testing::Test {
  CricketFixture()
      : node(cuda::GpuNode::make_paper_testbed()), server(*node) {
    register_saxpy(node->registry());
    auto [client_end, server_end] = rpc::make_pipe_pair();
    server_thread = server.serve_async(std::move(server_end));
    api = std::make_unique<RemoteCudaApi>(std::move(client_end),
                                          node->clock());
  }

  ~CricketFixture() override {
    api.reset();  // closes the connection; server session cleans up
    if (server_thread.joinable()) server_thread.join();
  }

  std::unique_ptr<cuda::GpuNode> node;
  CricketServer server;
  std::unique_ptr<RemoteCudaApi> api;
  std::thread server_thread;
};

TEST_F(CricketFixture, DeviceEnumerationForwarded) {
  int count = 0;
  ASSERT_EQ(api->get_device_count(count), Error::kSuccess);
  EXPECT_EQ(count, 4);
  cuda::DeviceInfo info;
  ASSERT_EQ(api->get_device_properties(info, 0), Error::kSuccess);
  EXPECT_EQ(info.name, "NVIDIA A100-SXM4-40GB");
  EXPECT_EQ(info.sm_arch, 80u);
}

TEST_F(CricketFixture, SetDeviceErrorsForwarded) {
  EXPECT_EQ(api->set_device(2), Error::kSuccess);
  EXPECT_EQ(api->set_device(17), Error::kInvalidDevice);
}

TEST_F(CricketFixture, MemoryRoundTripThroughRpc) {
  cuda::DevPtr p = 0;
  ASSERT_EQ(api->malloc(p, 4096), Error::kSuccess);
  std::vector<std::uint8_t> in(4096);
  std::iota(in.begin(), in.end(), std::uint8_t{0});
  ASSERT_EQ(api->memcpy_h2d(p, in), Error::kSuccess);
  std::vector<std::uint8_t> out(4096);
  ASSERT_EQ(api->memcpy_d2h(out, p), Error::kSuccess);
  EXPECT_EQ(out, in);
  EXPECT_EQ(api->free(p), Error::kSuccess);
  EXPECT_EQ(api->free(p), Error::kInvalidDevicePointer);
}

TEST_F(CricketFixture, RemoteKernelLaunchComputes) {
  cuda::Module mod(*api, fatbin::cubin_serialize(saxpy_image()));
  const auto fn = mod.function("remote_saxpy");

  constexpr std::uint32_t n = 512;
  cuda::DeviceBuffer x(*api, n * 4), y(*api, n * 4);
  std::vector<float> xs(n), ys(n, 10.0f);
  for (std::uint32_t i = 0; i < n; ++i) xs[i] = static_cast<float>(i);
  x.upload_values<float>(xs);
  y.upload_values<float>(ys);

  cuda::ParamPacker params;
  params.add_ptr(y).add_ptr(x).add(0.5f).add(n);
  ASSERT_EQ(api->launch_kernel(fn, {2, 1, 1}, {256, 1, 1}, 0,
                               gpusim::kDefaultStream, params.bytes()),
            Error::kSuccess);
  ASSERT_EQ(api->device_synchronize(), Error::kSuccess);
  const auto out = y.download_values<float>(n);
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(out[i], 10.0f + 0.5f * static_cast<float>(i));
}

TEST_F(CricketFixture, ModuleGlobalAccessibleRemotely) {
  cuda::Module mod(*api, fatbin::cubin_serialize(saxpy_image()));
  const auto g = mod.global("g_bias");
  std::vector<std::uint8_t> bytes(4);
  ASSERT_EQ(api->memcpy_d2h(bytes, g), Error::kSuccess);
  float v;
  std::memcpy(&v, bytes.data(), 4);
  EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST_F(CricketFixture, CompressedCubinUploadWorks) {
  // Ship the compressed form; the server decompresses before metadata
  // extraction (the paper's fatbin-decompression contribution, §3.3).
  const auto compressed =
      fatbin::lz_compress(fatbin::cubin_serialize(saxpy_image()));
  cuda::ModuleId mod = 0;
  ASSERT_EQ(api->module_load(mod, compressed), Error::kSuccess);
  cuda::FuncId fn = 0;
  EXPECT_EQ(api->module_get_function(fn, mod, "remote_saxpy"),
            Error::kSuccess);
  EXPECT_EQ(api->module_unload(mod), Error::kSuccess);
}

TEST_F(CricketFixture, GarbageModuleImageRejected) {
  cuda::ModuleId mod = 0;
  const std::vector<std::uint8_t> junk = {9, 9, 9, 9, 9};
  EXPECT_EQ(api->module_load(mod, junk), Error::kInvalidKernelImage);
}

TEST_F(CricketFixture, StreamsAndEventsForwarded) {
  cuda::StreamId s = 0;
  ASSERT_EQ(api->stream_create(s), Error::kSuccess);
  cuda::EventId e1 = 0, e2 = 0;
  ASSERT_EQ(api->event_create(e1), Error::kSuccess);
  ASSERT_EQ(api->event_create(e2), Error::kSuccess);
  ASSERT_EQ(api->event_record(e1, s), Error::kSuccess);
  ASSERT_EQ(api->event_record(e2, s), Error::kSuccess);
  ASSERT_EQ(api->event_synchronize(e2), Error::kSuccess);
  float ms = -1;
  ASSERT_EQ(api->event_elapsed_ms(ms, e1, e2), Error::kSuccess);
  EXPECT_GE(ms, 0.0f);
  EXPECT_EQ(api->event_destroy(e1), Error::kSuccess);
  EXPECT_EQ(api->event_destroy(e2), Error::kSuccess);
  EXPECT_EQ(api->stream_destroy(s), Error::kSuccess);
}

TEST_F(CricketFixture, ForwardedSolverSolvesSystem) {
  const int n = 32;
  sim::Xoshiro256ss rng(5);
  std::vector<float> A(static_cast<std::size_t>(n) * n);
  for (auto& v : A) v = rng.next_float() - 0.5f;
  for (int i = 0; i < n; ++i)
    A[static_cast<std::size_t>(i) * n + i] += static_cast<float>(n);
  std::vector<float> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.next_float();
  std::vector<float> b(static_cast<std::size_t>(n), 0.0f);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] +=
          A[static_cast<std::size_t>(j) * n + i] *
          x_true[static_cast<std::size_t>(j)];

  cuda::DeviceBuffer dA(*api, A.size() * 4), dB(*api, b.size() * 4),
      dPiv(*api, static_cast<std::size_t>(n) * 4), dInfo(*api, 4);
  dA.upload_values<float>(A);
  dB.upload_values<float>(b);
  ASSERT_EQ(api->solver_sgetrf(n, dA.get(), n, dPiv.get(), dInfo.get()),
            Error::kSuccess);
  ASSERT_EQ(api->solver_sgetrs(n, 1, dA.get(), n, dPiv.get(), dB.get(), n,
                               dInfo.get()),
            Error::kSuccess);
  const auto x = dB.download_values<float>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-2f);
}

TEST_F(CricketFixture, ApiCallAccountingMatchesClient) {
  cuda::DevPtr p = 0;
  (void)api->malloc(p, 64);
  (void)api->free(p);
  int c;
  (void)api->get_device_count(c);
  EXPECT_EQ(api->stats().api_calls, 3u);
  EXPECT_EQ(server.stats().rpcs.load(), 3u);
}

TEST_F(CricketFixture, EveryCallAdvancesVirtualTime) {
  const auto t0 = node->clock().now();
  int c;
  (void)api->get_device_count(c);
  EXPECT_GT(node->clock().now(), t0);
}

TEST(CricketSessionCleanup, DisconnectFreesLeakedResources) {
  auto node = cuda::GpuNode::make_a100();
  register_saxpy(node->registry());
  CricketServer server(*node);
  const auto base_allocs = node->device(0).memory().allocation_count();
  {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    auto thread = server.serve_async(std::move(server_end));
    {
      RemoteCudaApi api(std::move(client_end), node->clock());
      cuda::DevPtr p = 0;
      ASSERT_EQ(api.malloc(p, 1024), Error::kSuccess);
      cuda::ModuleId mod = 0;
      ASSERT_EQ(api.module_load(
                    mod, fatbin::cubin_serialize(saxpy_image())),
                Error::kSuccess);
      cuda::StreamId s = 0;
      ASSERT_EQ(api.stream_create(s), Error::kSuccess);
      // Client "crashes" without freeing anything.
    }
    thread.join();
  }
  EXPECT_EQ(node->device(0).memory().allocation_count(), base_allocs);
}

TEST(CricketMultiClient, ConcurrentSessionsAreIsolated) {
  auto node = cuda::GpuNode::make_a100();
  register_saxpy(node->registry());
  CricketServer server(*node);

  constexpr int kClients = 6;
  std::vector<std::thread> serve_threads;
  std::vector<std::thread> client_threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    serve_threads.push_back(server.serve_async(std::move(server_end)));
    client_threads.emplace_back([&, ce = std::move(client_end), c]() mutable {
      try {
        RemoteCudaApi api(std::move(ce), node->clock());
        cuda::DeviceBuffer buf(api, 1024);
        std::vector<std::uint8_t> data(1024,
                                       static_cast<std::uint8_t>(c + 1));
        buf.upload(data);
        std::vector<std::uint8_t> out(1024);
        buf.download(out);
        if (out != data) ++failures;
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : client_threads) t.join();
  for (auto& t : serve_threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().sessions.load(), static_cast<std::uint64_t>(kClients));
}

// ------------------------------- environments -------------------------------

TEST(CricketOverEnvironments, WorksOnEveryTableOneRow) {
  for (const auto& environment : env::all_environments()) {
    auto node = cuda::GpuNode::make_a100();
    register_saxpy(node->registry());
    CricketServer server(*node);
    auto conn = env::connect(environment, node->clock());
    auto thread = server.serve_async(std::move(conn.server));
    {
      RemoteCudaApi api(std::move(conn.guest), node->clock(),
                        ClientConfig{.flavor = environment.flavor,
                                     .profile = environment.profile});
      cuda::DeviceBuffer buf(api, 256);
      std::vector<std::uint8_t> data(256, 0x3C);
      buf.upload(data);
      std::vector<std::uint8_t> out(256);
      buf.download(out);
      EXPECT_EQ(out, data) << environment.name;
    }
    thread.join();
  }
}

// --------------------------------- scheduler --------------------------------

TEST(Scheduler, FifoNeverDelays) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFifo, clock);
  sched.session_open(1);
  sched.session_open(2);
  sched.record_usage(1, 100 * sim::kMillisecond);
  EXPECT_EQ(sched.admit(1), 0);
}

TEST(Scheduler, FairShareDelaysTheHog) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                        /*quantum=*/sim::kMillisecond);
  sched.session_open(1);
  sched.session_open(2);
  sched.record_usage(1, 50 * sim::kMillisecond);  // session 1 hogs
  EXPECT_GT(sched.admit(1), 0);                   // hog waits
  EXPECT_EQ(sched.admit(2), 0);                   // laggard sails through
  const auto s = sched.stats(1);
  EXPECT_GT(s.total_wait_ns, 0);
}

TEST(Scheduler, SingleSessionNeverDelayed) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock);
  sched.session_open(1);
  sched.record_usage(1, sim::kSecond);
  EXPECT_EQ(sched.admit(1), 0);
}

TEST(Scheduler, NewcomerStartsLevel) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                        sim::kMillisecond);
  sched.session_open(1);
  sched.record_usage(1, 100 * sim::kMillisecond);
  sched.session_open(2);  // late joiner starts at min(others)
  // Session 1 at 100ms, session 2 at 0... no: newcomer levels to min = 100ms.
  EXPECT_EQ(sched.admit(1), 0);
}

// --------------------------------- transfer ---------------------------------

TEST(Transfer, StripeCoversRangeExactly) {
  const auto parts = stripe(100, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::pair<std::size_t, std::size_t>{0, 33}));
  EXPECT_EQ(parts[1], (std::pair<std::size_t, std::size_t>{33, 33}));
  EXPECT_EQ(parts[2], (std::pair<std::size_t, std::size_t>{66, 34}));
}

TEST(Transfer, StripedSendGatherRoundTrip) {
  auto [client, serverLanes] = make_lane_pairs(4);
  sim::SimClock clock;
  vnet::NetworkProfile profile;
  sim::Xoshiro256ss rng(8);
  std::vector<std::uint8_t> data(1 << 20);
  rng.fill_bytes(data);

  std::thread sender(
      [&] { send_striped(client, data, profile, clock); });
  std::vector<std::uint8_t> out(data.size());
  gather_striped(serverLanes, out);
  sender.join();
  EXPECT_EQ(out, data);
}

TEST(Transfer, ParallelSocketsCheaperThanSerialCharge) {
  sim::SimClock serial_clock, parallel_clock;
  vnet::NetworkProfile profile;
  profile.guest.per_packet_ns = 3000;
  profile.guest.copy_ns_per_byte = 0.05;
  const std::size_t bytes = 64 << 20;
  serial_clock.advance(vnet::tx_cpu_cost(profile, bytes) +
                       vnet::wire_time(profile, bytes));

  auto [client, serverLanes] = make_lane_pairs(8);
  std::vector<std::uint8_t> data(bytes, 1);
  std::thread drain([&] {
    std::vector<std::uint8_t> out(bytes);
    gather_striped(serverLanes, out);
  });
  send_striped(client, data, profile, parallel_clock);
  drain.join();
  EXPECT_LT(parallel_clock.now(), serial_clock.now());
}

TEST(CricketTransferMethods, ParallelSocketsTransferCorrectly) {
  auto node = cuda::GpuNode::make_a100();
  CricketServer server(*node);
  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto [client_lanes, server_lanes] = make_lane_pairs(4);
  auto thread =
      server.serve_async(std::move(server_end), std::move(server_lanes));
  {
    ClientConfig cfg;
    cfg.transfer = TransferMethod::kParallelSockets;
    RemoteCudaApi api(std::move(client_end), node->clock(), cfg,
                      std::move(client_lanes));
    sim::Xoshiro256ss rng(13);
    std::vector<std::uint8_t> data(2 << 20);
    rng.fill_bytes(data);
    cuda::DevPtr p = 0;
    ASSERT_EQ(api.malloc(p, data.size()), Error::kSuccess);
    ASSERT_EQ(api.memcpy_h2d(p, data), Error::kSuccess);
    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(api.memcpy_d2h(out, p), Error::kSuccess);
    EXPECT_EQ(out, data);
    (void)api.free(p);
  }
  thread.join();
}

TEST(CricketTransferMethods, SharedMemoryIsZeroRpc) {
  auto node = cuda::GpuNode::make_a100();
  CricketServer server(*node);
  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto thread = server.serve_async(std::move(server_end));
  {
    ClientConfig cfg;
    cfg.transfer = TransferMethod::kSharedMemory;
    cfg.local_node = node.get();
    RemoteCudaApi api(std::move(client_end), node->clock(), cfg);
    cuda::DevPtr p = 0;
    ASSERT_EQ(api.malloc(p, 1024), Error::kSuccess);
    const auto rpcs_before = server.stats().rpcs.load();
    std::vector<std::uint8_t> data(1024, 0x66);
    ASSERT_EQ(api.memcpy_h2d(p, data), Error::kSuccess);
    std::vector<std::uint8_t> out(1024);
    ASSERT_EQ(api.memcpy_d2h(out, p), Error::kSuccess);
    EXPECT_EQ(out, data);
    // Bulk data did not cross the RPC channel at all.
    EXPECT_EQ(server.stats().rpcs.load(), rpcs_before);
    (void)api.free(p);
  }
  thread.join();
}

// ----------------------------- checkpoint/restart ---------------------------

struct TempDir {
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("cricket_ckpt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::filesystem::path path;
};

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  auto node = cuda::GpuNode::make_a100();
  register_saxpy(node->registry());
  auto& dev = node->device(0);
  const auto p = dev.malloc(512);
  dev.memset(p, 0x5A, 512);
  const auto mod = dev.load_module(fatbin::cubin_serialize(saxpy_image()));
  (void)dev.get_function(mod, "remote_saxpy");

  const auto snap = dev.snapshot();
  const auto decoded = decode_checkpoint(encode_checkpoint(snap));
  EXPECT_EQ(decoded.allocations.size(), snap.allocations.size());
  EXPECT_EQ(decoded.modules.size(), snap.modules.size());
  EXPECT_EQ(decoded.functions.size(), snap.functions.size());
  EXPECT_EQ(decoded.next_id, snap.next_id);
}

TEST(Checkpoint, CorruptFileRejected) {
  const std::vector<std::uint8_t> junk = {'C', 'K', 'P', 'T', 0, 0, 0, 9};
  EXPECT_THROW((void)decode_checkpoint(junk), CheckpointError);
  const std::vector<std::uint8_t> junk2 = {'X', 'X', 'X', 'X'};
  EXPECT_THROW((void)decode_checkpoint(junk2), CheckpointError);
}

TEST(Checkpoint, RestoreIntoFreshDevicePreservesEverything) {
  TempDir tmp;
  auto node1 = cuda::GpuNode::make_a100();
  register_saxpy(node1->registry());
  auto& dev1 = node1->device(0);

  const auto p = dev1.malloc(1024);
  std::vector<std::uint8_t> content(1024);
  sim::Xoshiro256ss rng(21);
  rng.fill_bytes(content);
  dev1.memcpy_h2d(p, content);
  const auto mod = dev1.load_module(fatbin::cubin_serialize(saxpy_image()));
  const auto fn = dev1.get_function(mod, "remote_saxpy");
  const auto file = (tmp.path / "dev.ckpt").string();
  checkpoint_to_file(dev1, file);

  // A brand-new server node restores: pointers and handles must be valid.
  auto node2 = cuda::GpuNode::make_a100();
  register_saxpy(node2->registry());
  auto& dev2 = node2->device(0);
  restore_from_file(dev2, file);

  std::vector<std::uint8_t> out(1024);
  dev2.memcpy_d2h(out, p);  // same pointer value works
  EXPECT_EQ(out, content);
  // The old function handle launches on the restored device.
  const auto x = dev2.malloc(4 * 4);
  const auto y = dev2.malloc(4 * 4);
  std::vector<float> xs = {1, 2, 3, 4}, ys = {0, 0, 0, 0};
  dev2.memcpy_h2d(x, {reinterpret_cast<std::uint8_t*>(xs.data()), 16});
  dev2.memcpy_h2d(y, {reinterpret_cast<std::uint8_t*>(ys.data()), 16});
  std::vector<std::uint8_t> params(24);
  std::memcpy(params.data(), &y, 8);
  std::memcpy(params.data() + 8, &x, 8);
  const float a = 2.0f;
  const std::uint32_t n = 4;
  std::memcpy(params.data() + 16, &a, 4);
  std::memcpy(params.data() + 20, &n, 4);
  dev2.launch(fn, {1, 1, 1}, {4, 1, 1}, 0, gpusim::kDefaultStream, params);
  dev2.stream_synchronize(gpusim::kDefaultStream);
  std::vector<float> result(4);
  dev2.memcpy_d2h({reinterpret_cast<std::uint8_t*>(result.data()), 16}, y);
  EXPECT_FLOAT_EQ(result[1], 4.0f);
}

TEST(Checkpoint, RestoreRequiresPristineDevice) {
  TempDir tmp;
  auto node = cuda::GpuNode::make_a100();
  auto& dev = node->device(0);
  (void)dev.malloc(64);
  const auto file = (tmp.path / "x.ckpt").string();
  checkpoint_to_file(dev, file);
  EXPECT_THROW(restore_from_file(dev, file), gpusim::DeviceError);
}

TEST(Checkpoint, RpcCheckpointRestoreEndToEnd) {
  TempDir tmp;
  auto node = cuda::GpuNode::make_a100();
  register_saxpy(node->registry());
  ServerOptions opts;
  opts.checkpoint_dir = tmp.path.string();
  std::vector<std::uint8_t> data(256, 0xAB);
  cuda::DevPtr p = 0;

  {
    CricketServer server(*node, opts);
    auto [client_end, server_end] = rpc::make_pipe_pair();
    auto thread = server.serve_async(std::move(server_end));
    {
      RemoteCudaApi api(std::move(client_end), node->clock());
      ASSERT_EQ(api.malloc(p, 256), Error::kSuccess);
      ASSERT_EQ(api.memcpy_h2d(p, data), Error::kSuccess);
      ASSERT_EQ(api.checkpoint("session.ckpt"), Error::kSuccess);
      // Path traversal is refused.
      EXPECT_EQ(api.checkpoint("../evil.ckpt"), Error::kInvalidValue);
      (void)api.free(p);  // avoid leak-cleanup freeing after restore
    }
    thread.join();
  }

  // Fresh node + server; restore over RPC, then read the old pointer.
  auto node2 = cuda::GpuNode::make_a100();
  register_saxpy(node2->registry());
  CricketServer server2(*node2, opts);
  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto thread = server2.serve_async(std::move(server_end));
  {
    RemoteCudaApi api(std::move(client_end), node2->clock());
    ASSERT_EQ(api.restore("session.ckpt"), Error::kSuccess);
    std::vector<std::uint8_t> out(256);
    ASSERT_EQ(api.memcpy_d2h(out, p), Error::kSuccess);
    EXPECT_EQ(out, data);
  }
  thread.join();
}

}  // namespace
}  // namespace cricket::core

// --------------------- checkpoint property & scheduler archive --------------

namespace cricket::core {
namespace {

/// Property: random device states survive checkpoint encode/decode/restore
/// with bit-identical memory contents.
class CheckpointProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointProperty, RandomDeviceStateRoundTrips) {
  sim::Xoshiro256ss rng(GetParam());
  auto node1 = cuda::GpuNode::make_a100();
  register_saxpy(node1->registry());
  auto& dev1 = node1->device(0);

  // Random allocation pattern with interleaved frees (creates holes, so
  // restore must place allocations at exact addresses, not just in order).
  std::vector<std::pair<gpusim::DevPtr, std::vector<std::uint8_t>>> live;
  std::vector<gpusim::DevPtr> all;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t size = 1 + rng.next() % 10'000;
    const auto p = dev1.malloc(size);
    std::vector<std::uint8_t> content(size);
    rng.fill_bytes(content);
    dev1.memcpy_h2d(p, content);
    live.emplace_back(p, std::move(content));
    all.push_back(p);
  }
  // Free every third allocation.
  for (std::size_t i = 0; i < all.size(); i += 3) {
    dev1.free(all[i]);
    live.erase(std::find_if(live.begin(), live.end(), [&](const auto& e) {
      return e.first == all[i];
    }));
  }
  if (rng.next() % 2) {
    (void)dev1.load_module(fatbin::cubin_serialize(saxpy_image()));
  }

  const auto snap = dev1.snapshot();
  const auto restored = decode_checkpoint(encode_checkpoint(snap));

  auto node2 = cuda::GpuNode::make_a100();
  register_saxpy(node2->registry());
  auto& dev2 = node2->device(0);
  dev2.restore(restored);

  for (const auto& [ptr, content] : live) {
    std::vector<std::uint8_t> out(content.size());
    dev2.memcpy_d2h(out, ptr);
    EXPECT_EQ(out, content) << "allocation at " << std::hex << ptr;
  }
  EXPECT_EQ(dev2.memory().bytes_in_use(), dev1.memory().bytes_in_use());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(SchedulerArchive, StatsSurviveSessionClose) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock);
  sched.session_open(7);
  (void)sched.admit(7);
  sched.record_usage(7, 42 * sim::kMillisecond);
  sched.session_close(7);
  const auto stats = sched.stats(7);
  EXPECT_EQ(stats.launches, 1u);
  EXPECT_EQ(stats.device_time_ns, 42 * sim::kMillisecond);
}

TEST(SchedulerArchive, UnknownSessionIsEmpty) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFifo, clock);
  EXPECT_EQ(sched.stats(999).launches, 0u);
}

TEST(Scheduler, FairShareWaitIsCapped) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                        /*quantum=*/sim::kMillisecond);
  sched.session_open(1);
  sched.session_open(2);
  sched.record_usage(1, 10 * sim::kSecond);  // absurd lead
  // Work-conserving cap: one admit never waits more than a few quanta.
  EXPECT_LE(sched.admit(1), 4 * sim::kMillisecond);
}

}  // namespace
}  // namespace cricket::core
