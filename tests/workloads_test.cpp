#include <gtest/gtest.h>

#include <thread>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "workloads/bandwidth_test.hpp"
#include "workloads/histogram.hpp"
#include "workloads/kernels.hpp"
#include "workloads/linear_solver.hpp"
#include "workloads/matrix_mul.hpp"

namespace cricket::workloads {
namespace {

env::ClientFlavor rust_flavor() {
  return env::make_environment(env::EnvKind::kNativeRust).flavor;
}
env::ClientFlavor c_flavor() {
  return env::make_environment(env::EnvKind::kNativeC).flavor;
}

/// Runs workloads against a *local* CudaApi (no RPC) — validates numerics.
struct LocalWorkloads : ::testing::Test {
  LocalWorkloads() : node(cuda::GpuNode::make_a100()), api(*node) {
    register_sample_kernels(node->registry());
  }
  std::unique_ptr<cuda::GpuNode> node;
  cuda::LocalCudaApi api;
};

TEST_F(LocalWorkloads, MatrixMulVerifiesSmall) {
  MatrixMulConfig cfg;
  cfg.hA = 64;
  cfg.wA = 64;
  cfg.wB = 64;
  cfg.iterations = 3;
  const auto report = run_matrix_mul(api, node->clock(), rust_flavor(), cfg);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.kernel_launches, 3u);
  EXPECT_GT(report.total_ns, 0);
  EXPECT_EQ(report.bytes_to_device, 2u * 64 * 64 * 4);
  EXPECT_EQ(report.bytes_from_device, 64u * 64 * 4);
}

TEST_F(LocalWorkloads, MatrixMulPaperShapeCallCount) {
  MatrixMulConfig cfg;
  cfg.hA = 32;
  cfg.wA = 32;
  cfg.wB = 32;
  cfg.iterations = 1000;
  cfg.verify = false;
  const auto report = run_matrix_mul(api, node->clock(), rust_flavor(), cfg);
  // Paper: 100 041 calls for 100 000 iterations — iterations + ~41 setup.
  EXPECT_GE(report.api_calls, cfg.iterations);
  EXPECT_LE(report.api_calls, cfg.iterations + 50);
}

TEST_F(LocalWorkloads, LinearSolverVerifies) {
  LinearSolverConfig cfg;
  cfg.n = 64;
  cfg.iterations = 2;
  const auto report =
      run_linear_solver(api, node->clock(), rust_flavor(), cfg);
  EXPECT_TRUE(report.verified);
  // One wire upload of the matrix; the per-iteration volume is d2d.
  EXPECT_GE(report.bytes_to_device, 64u * 64 * 4);
  EXPECT_GT(report.bytes_d2d, 2u * 64 * 64 * 4);
}

TEST_F(LocalWorkloads, LinearSolverTransferDominatedLikePaper) {
  // Paper: 20 047 calls vs 6.07 GiB of memory transfers — few calls, heavy
  // memcpy volume, most of it device-local (the wire only carries the
  // matrix once).
  LinearSolverConfig cfg;
  cfg.n = 900;
  cfg.iterations = 10;
  cfg.verify = false;
  const auto report =
      run_linear_solver(api, node->clock(), rust_flavor(), cfg);
  EXPECT_LT(report.api_calls, 200u);
  EXPECT_GT(report.memcpy_volume(), 60ull << 20);  // ~65 MB for 10 iters
  EXPECT_GT(report.bytes_d2d, report.bytes_to_device);
}

TEST_F(LocalWorkloads, HistogramVerifies) {
  HistogramConfig cfg;
  cfg.data_bytes = 1 << 20;
  cfg.iterations = 5;
  const auto report = run_histogram(api, node->clock(), rust_flavor(), cfg);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.kernel_launches, 10u);
}

TEST_F(LocalWorkloads, HistogramCallCountMatchesPaperShape) {
  HistogramConfig cfg;
  cfg.data_bytes = 1 << 16;
  cfg.iterations = 100;
  cfg.verify = false;
  const auto report = run_histogram(api, node->clock(), rust_flavor(), cfg);
  // Paper: 80 033 calls for its iteration count — 2*iters + ~33 setup.
  EXPECT_GE(report.api_calls, 2u * cfg.iterations);
  EXPECT_LE(report.api_calls, 2u * cfg.iterations + 40);
}

TEST_F(LocalWorkloads, CFlavorInitSlowerThanRust) {
  HistogramConfig cfg;
  cfg.data_bytes = 4 << 20;
  cfg.iterations = 1;
  cfg.verify = false;
  const auto rust = run_histogram(api, node->clock(), rust_flavor(), cfg);
  const auto c = run_histogram(api, node->clock(), c_flavor(), cfg);
  EXPECT_GT(c.init_ns, rust.init_ns * 2);
}

TEST_F(LocalWorkloads, BandwidthTestBothDirectionsVerify) {
  BandwidthConfig cfg;
  cfg.bytes = 8 << 20;
  cfg.runs = 2;
  for (const auto dir :
       {CopyDirection::kHostToDevice, CopyDirection::kDeviceToHost}) {
    cfg.direction = dir;
    const auto report =
        run_bandwidth_test(api, node->clock(), rust_flavor(), cfg);
    EXPECT_TRUE(report.base.verified);
    EXPECT_GT(report.mib_per_s, 0.0);
  }
}

/// The same workloads through the full Cricket RPC stack.
struct RemoteWorkloads : ::testing::Test {
  RemoteWorkloads() : node(cuda::GpuNode::make_a100()), server(*node) {
    register_sample_kernels(node->registry());
    auto [client_end, server_end] = rpc::make_pipe_pair();
    server_thread = server.serve_async(std::move(server_end));
    api = std::make_unique<core::RemoteCudaApi>(std::move(client_end),
                                                node->clock());
  }
  ~RemoteWorkloads() override {
    api.reset();
    if (server_thread.joinable()) server_thread.join();
  }

  std::unique_ptr<cuda::GpuNode> node;
  core::CricketServer server;
  std::unique_ptr<core::RemoteCudaApi> api;
  std::thread server_thread;
};

TEST_F(RemoteWorkloads, MatrixMulOverRpcVerifies) {
  MatrixMulConfig cfg;
  cfg.hA = 64;
  cfg.wA = 64;
  cfg.wB = 64;
  cfg.iterations = 2;
  const auto report = run_matrix_mul(*api, node->clock(), rust_flavor(), cfg);
  EXPECT_TRUE(report.verified);
  // The client-side call count agrees with the workload's own accounting.
  EXPECT_EQ(api->stats().api_calls, report.api_calls);
}

TEST_F(RemoteWorkloads, LinearSolverOverRpcVerifies) {
  LinearSolverConfig cfg;
  cfg.n = 48;
  cfg.iterations = 2;
  const auto report =
      run_linear_solver(*api, node->clock(), rust_flavor(), cfg);
  EXPECT_TRUE(report.verified);
}

TEST_F(RemoteWorkloads, HistogramOverRpcVerifies) {
  HistogramConfig cfg;
  cfg.data_bytes = 1 << 18;
  cfg.iterations = 3;
  const auto report = run_histogram(*api, node->clock(), rust_flavor(), cfg);
  EXPECT_TRUE(report.verified);
}

TEST_F(RemoteWorkloads, BandwidthOverRpcVerifies) {
  BandwidthConfig cfg;
  cfg.bytes = 4 << 20;
  cfg.runs = 2;
  const auto report =
      run_bandwidth_test(*api, node->clock(), rust_flavor(), cfg);
  EXPECT_TRUE(report.base.verified);
}

TEST_F(RemoteWorkloads, TimingOnlyModeStillChargesTime) {
  MatrixMulConfig cfg;
  cfg.hA = 32;
  cfg.wA = 32;
  cfg.wB = 32;
  cfg.iterations = 50;
  cfg.verify = false;
  node->device(0).set_timing_only(true);
  const auto t0 = node->clock().now();
  const auto report = run_matrix_mul(*api, node->clock(), rust_flavor(), cfg);
  node->device(0).set_timing_only(false);
  EXPECT_GT(node->clock().now(), t0);
  EXPECT_EQ(report.kernel_launches, 50u);
}

/// Workload sweep across every Table 1 environment: the full pipeline the
/// figure benches use, at miniature scale.
class WorkloadAcrossEnvironments
    : public ::testing::TestWithParam<env::EnvKind> {};

TEST_P(WorkloadAcrossEnvironments, HistogramRunsAndVerifies) {
  const auto environment = env::make_environment(GetParam());
  auto node = cuda::GpuNode::make_a100();
  register_sample_kernels(node->registry());
  core::CricketServer server(*node);
  auto conn = env::connect(environment, node->clock());
  auto thread = server.serve_async(std::move(conn.server));
  {
    core::RemoteCudaApi api(std::move(conn.guest), node->clock(),
                            core::ClientConfig{.flavor = environment.flavor,
                                               .profile = environment.profile});
    HistogramConfig cfg;
    cfg.data_bytes = 1 << 18;
    cfg.iterations = 2;
    const auto report =
        run_histogram(api, node->clock(), environment.flavor, cfg);
    EXPECT_TRUE(report.verified) << environment.name;
  }
  thread.join();
}

INSTANTIATE_TEST_SUITE_P(TableOne, WorkloadAcrossEnvironments,
                         ::testing::Values(env::EnvKind::kNativeC,
                                           env::EnvKind::kNativeRust,
                                           env::EnvKind::kLinuxVm,
                                           env::EnvKind::kUnikraft,
                                           env::EnvKind::kRustyHermit));

}  // namespace
}  // namespace cricket::workloads
