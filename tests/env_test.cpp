#include <gtest/gtest.h>

#include <thread>

#include "env/environment.hpp"
#include "sim/rng.hpp"
#include "sim/sim_clock.hpp"
#include "vnet/cost_model.hpp"

namespace cricket::env {
namespace {

TEST(Environment, TableOneRowsMatchPaper) {
  const auto envs = all_environments();
  ASSERT_EQ(envs.size(), 5u);
  EXPECT_EQ(envs[0].name, "C");
  EXPECT_EQ(envs[0].app_lang, "C");
  EXPECT_EQ(envs[0].os, "Rocky Linux");
  EXPECT_EQ(envs[0].hypervisor, "-");
  EXPECT_EQ(envs[0].network, "native");
  EXPECT_EQ(envs[1].name, "Rust");
  EXPECT_EQ(envs[2].name, "Linux VM");
  EXPECT_EQ(envs[2].hypervisor, "QEMU");
  EXPECT_EQ(envs[2].network, "virtio");
  EXPECT_EQ(envs[3].name, "Unikraft");
  EXPECT_EQ(envs[4].name, "Hermit");
  EXPECT_EQ(envs[4].os, "Hermit");
}

TEST(Environment, OffloadMatrixMatchesPaperSection) {
  const auto hermit = make_environment(EnvKind::kRustyHermit);
  // §3.1: the paper added VIRTIO_NET_F_CSUM, GUEST_CSUM, MRG_RXBUF to Hermit.
  EXPECT_TRUE(hermit.profile.offloads.tx_checksum);
  EXPECT_TRUE(hermit.profile.offloads.rx_checksum);
  EXPECT_TRUE(hermit.profile.offloads.mrg_rxbuf);
  // §5: TSO is ongoing work, not present.
  EXPECT_FALSE(hermit.profile.offloads.tso);

  const auto unikraft = make_environment(EnvKind::kUnikraft);
  // §4.2: "Unikraft does not support checksum offloading, yet".
  EXPECT_FALSE(unikraft.profile.offloads.tx_checksum);
  EXPECT_FALSE(unikraft.profile.offloads.tso);

  const auto vm = make_environment(EnvKind::kLinuxVm);
  EXPECT_TRUE(vm.profile.offloads.tso);
  EXPECT_TRUE(vm.profile.offloads.tx_checksum);
}

TEST(Environment, UnikernelsHaveNoSyscallCost) {
  EXPECT_EQ(make_environment(EnvKind::kRustyHermit).profile.guest.syscall_ns,
            0);
  EXPECT_EQ(make_environment(EnvKind::kUnikraft).profile.guest.syscall_ns, 0);
  EXPECT_GT(make_environment(EnvKind::kLinuxVm).profile.guest.syscall_ns, 0);
}

TEST(Environment, FlavorsDifferAsMeasured) {
  const auto c = make_environment(EnvKind::kNativeC);
  const auto rust = make_environment(EnvKind::kNativeRust);
  EXPECT_FALSE(c.flavor.fast_rng);
  EXPECT_TRUE(rust.flavor.fast_rng);
  EXPECT_GT(c.flavor.launch_extra_ns, rust.flavor.launch_extra_ns);
}

TEST(Environment, PaperUsesMtu9000) {
  for (const auto& e : all_environments()) EXPECT_EQ(e.profile.ip_mtu, 9000u);
}

/// Round-trip virtual time of one small request/response across a
/// connection — the shape behind Fig. 6.
sim::Nanos measure_rtt(EnvKind kind, std::size_t req_bytes = 100,
                       std::size_t resp_bytes = 100) {
  sim::SimClock clock;
  const auto environment = make_environment(kind);
  auto conn = connect(environment, clock);

  std::thread server([&] {
    std::vector<std::uint8_t> buf(req_bytes);
    conn.server->recv_exact(buf);
    conn.server->send(std::vector<std::uint8_t>(resp_bytes, 0x5A));
  });

  const auto t0 = clock.now();
  conn.guest->send(std::vector<std::uint8_t>(req_bytes, 0xA5));
  std::vector<std::uint8_t> resp(resp_bytes);
  conn.guest->recv_exact(resp);
  server.join();
  const auto rtt = clock.now() - t0;
  conn.guest->shutdown();
  return rtt;
}

TEST(EnvironmentShape, Fig6OrderingNativeHermitUnikraftVm) {
  const auto rtt_native = measure_rtt(EnvKind::kNativeRust);
  const auto rtt_hermit = measure_rtt(EnvKind::kRustyHermit);
  const auto rtt_unikraft = measure_rtt(EnvKind::kUnikraft);
  const auto rtt_vm = measure_rtt(EnvKind::kLinuxVm);

  // Paper Fig. 6: Linux VM slowest, Hermit the best virtualized option, all
  // virtualized configs at least ~2x native.
  EXPECT_LT(rtt_native, rtt_hermit);
  EXPECT_LT(rtt_hermit, rtt_unikraft);
  EXPECT_LT(rtt_unikraft, rtt_vm);
  EXPECT_GT(rtt_hermit, rtt_native * 3 / 2);
  EXPECT_GT(rtt_vm, 2 * rtt_native);
}

TEST(EnvironmentShape, NativeCAndRustAreClose) {
  const auto c = measure_rtt(EnvKind::kNativeC);
  const auto rust = measure_rtt(EnvKind::kNativeRust);
  EXPECT_LT(std::abs(c - rust), c / 5);  // within 20%
}

/// One-way bulk throughput in MiB/s of guest-side send — the shape behind
/// Fig. 7 (host-to-device direction).
double measure_tx_mibps(EnvKind kind) {
  sim::SimClock clock;
  const auto environment = make_environment(kind);
  auto conn = connect(environment, clock);
  constexpr std::size_t kBytes = 32 << 20;

  std::thread server([&] {
    std::vector<std::uint8_t> buf(1 << 16);
    std::size_t got = 0;
    while (got < kBytes) {
      const std::size_t n = conn.server->recv(buf);
      if (n == 0) break;
      got += n;
    }
  });
  const auto t0 = clock.now();
  std::vector<std::uint8_t> chunk(1 << 20, 0x77);
  for (std::size_t sent = 0; sent < kBytes; sent += chunk.size())
    conn.guest->send(chunk);
  conn.guest->shutdown();
  server.join();
  const double secs = static_cast<double>(clock.now() - t0) / 1e9;
  return static_cast<double>(kBytes) / (1 << 20) / secs;
}

TEST(EnvironmentShape, Fig7BandwidthHierarchy) {
  const double native = measure_tx_mibps(EnvKind::kNativeRust);
  const double vm = measure_tx_mibps(EnvKind::kLinuxVm);
  const double hermit = measure_tx_mibps(EnvKind::kRustyHermit);
  const double unikraft = measure_tx_mibps(EnvKind::kUnikraft);

  // Paper Fig. 7: VM retains >= ~80% of native; unikernels collapse to
  // around a tenth of native because they lack TSO (and, for Unikraft,
  // checksum offload).
  EXPECT_GT(vm, 0.55 * native);
  EXPECT_LT(hermit, 0.25 * native);
  EXPECT_LT(unikraft, 0.25 * native);
  EXPECT_GT(hermit, 0.02 * native);
  EXPECT_GT(native, 3000.0);  // multi-GiB/s native on 100 GbE
}

TEST(Environment, ConnectionCarriesDataBothWays) {
  sim::SimClock clock;
  auto conn = connect(make_environment(EnvKind::kUnikraft), clock);
  sim::Xoshiro256ss rng(4);
  std::vector<std::uint8_t> req(200'000);
  rng.fill_bytes(req);

  std::thread server([&] {
    std::vector<std::uint8_t> buf(req.size());
    conn.server->recv_exact(buf);
    conn.server->send(buf);  // echo
  });
  conn.guest->send(req);
  std::vector<std::uint8_t> echoed(req.size());
  conn.guest->recv_exact(echoed);
  server.join();
  EXPECT_EQ(echoed, req);
}

}  // namespace
}  // namespace cricket::env
