#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "sim/rng.hpp"
#include "sim/sim_clock.hpp"
#include "sim/stats.hpp"

namespace cricket::sim {
namespace {

TEST(SimClock, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock;
  clock.advance(5);
  clock.advance(7);
  EXPECT_EQ(clock.now(), 12);
}

TEST(SimClock, NegativeAdvanceIsIgnored) {
  SimClock clock;
  clock.advance(10);
  clock.advance(-100);
  EXPECT_EQ(clock.now(), 10);
}

TEST(SimClock, ResetReturnsToZero) {
  SimClock clock;
  clock.advance(42);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClock, AdvanceSecondsConverts) {
  SimClock clock;
  clock.advance_seconds(1.5);
  EXPECT_EQ(clock.now(), 1'500'000'000);
}

TEST(SimClock, ConcurrentAdvanceIsLossless) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&clock] {
      for (int i = 0; i < kIters; ++i) clock.advance(3);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(clock.now(), Nanos{3} * kThreads * kIters);
}

TEST(SimStopwatch, MeasuresElapsedVirtualTime) {
  SimClock clock;
  SimStopwatch sw(clock);
  clock.advance(100);
  EXPECT_EQ(sw.elapsed(), 100);
  sw.restart();
  clock.advance(25);
  EXPECT_EQ(sw.elapsed(), 25);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (double x : {4.0, 8.0, 6.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(RunningStats, VarianceMatchesTwoPass) {
  RunningStats s;
  const std::vector<double> xs = {1.5, 2.5, 3.5, 4.5, 10.0, -3.0};
  double mean = 0;
  for (double x : xs) {
    s.add(x);
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Xoshiro256ss rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100 - 50;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Log2Histogram, CountsAndQuantiles) {
  Log2Histogram h;
  for (std::uint64_t i = 0; i < 100; ++i) h.add(10);   // bucket [8,16)
  for (std::uint64_t i = 0; i < 100; ++i) h.add(1000); // bucket [512,1024)
  EXPECT_EQ(h.total(), 200u);
  EXPECT_LE(h.quantile(0.25), 15u);
  EXPECT_GE(h.quantile(0.99), 512u);
}

TEST(Log2Histogram, ZeroGoesToFirstBucket) {
  Log2Histogram h;
  h.add(0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_LE(h.quantile(1.0), 1u);
}

TEST(Log2Histogram, QuantileEdgeCases) {
  const Log2Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);

  Log2Histogram h;
  h.add(10);  // bucket [8,16)
  // q <= 0 (and NaN) yield the lower edge of the first occupied bucket;
  // q >= 1 the upper edge of the last occupied one.
  EXPECT_EQ(h.quantile(0.0), 8u);
  EXPECT_EQ(h.quantile(-1.0), 8u);
  EXPECT_EQ(h.quantile(std::nan("")), 8u);
  EXPECT_EQ(h.quantile(1.0), 15u);
  EXPECT_EQ(h.quantile(2.0), 15u);
  // A single sample is every quantile.
  EXPECT_EQ(h.quantile(0.001), 15u);
  EXPECT_EQ(h.quantile(0.999), 15u);
}

TEST(Log2Histogram, BucketBoundsCoverFullRange) {
  EXPECT_EQ(Log2Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 1u);
  EXPECT_EQ(Log2Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Log2Histogram::bucket_index(2), 1u);
  // The top bucket absorbs everything up to UINT64_MAX without shifting by
  // 64 anywhere.
  const std::size_t top = Log2Histogram::bucket_count() - 1;
  EXPECT_EQ(Log2Histogram::bucket_upper(top),
            std::numeric_limits<std::uint64_t>::max());
  Log2Histogram h;
  h.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.bucket(top), 1u);
  EXPECT_EQ(h.quantile(1.0), std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, AddBucketClampsAndMergeSums) {
  Log2Histogram a;
  a.add_bucket(3, 5);                             // 5 samples in [8,15]
  a.add_bucket(Log2Histogram::bucket_count(), 2); // clamped to the top bucket
  EXPECT_EQ(a.total(), 7u);
  EXPECT_EQ(a.bucket(Log2Histogram::bucket_count() - 1), 2u);

  Log2Histogram b;
  for (int i = 0; i < 10; ++i) b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.total(), 17u);
  EXPECT_EQ(a.bucket(3), 5u);
  EXPECT_EQ(a.bucket(Log2Histogram::bucket_index(1000)), 10u);
  EXPECT_EQ(a.quantile(0.5), 1023u);  // 9th of 17 sits in the [512,1023] bucket
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(format_bytes(512.0), "512.0 B");
  EXPECT_EQ(format_bytes(2048.0), "2.0 KiB");
  EXPECT_EQ(format_bytes(512.0 * 1024 * 1024), "512.0 MiB");
}

TEST(Formatting, Nanos) {
  EXPECT_EQ(format_nanos(999.0), "999.00 ns");
  EXPECT_EQ(format_nanos(1.5e6), "1.50 ms");
  EXPECT_EQ(format_nanos(2.5e9), "2.50 s");
}

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDistinctSeedsDiffer) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, XoshiroDoubleInUnitInterval) {
  Xoshiro256ss rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, XoshiroFloatInUnitInterval) {
  Xoshiro256ss rng(10);
  for (int i = 0; i < 10'000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, FillBytesCoversAllValues) {
  Xoshiro256ss rng(11);
  std::vector<std::uint8_t> buf(1 << 16);
  rng.fill_bytes(buf);
  std::vector<int> seen(256, 0);
  for (auto b : buf) seen[b] = 1;
  int distinct = 0;
  for (int s : seen) distinct += s;
  EXPECT_EQ(distinct, 256);
}

TEST(Rng, FillBytesHandlesOddLengths) {
  Xoshiro256ss a(12), b(12);
  std::vector<std::uint8_t> x(13), y(13);
  a.fill_bytes(x);
  b.fill_bytes(y);
  EXPECT_EQ(x, y);
}

TEST(Rng, LegacyLcgMatchesReferenceRecurrence) {
  LegacyLcg lcg(1);
  // One step of the minimal-standard recurrence from seed 1.
  EXPECT_EQ(lcg.next(), (1103515245u * 1u + 12345u) & 0x7FFFFFFFu);
}

TEST(Rng, LegacyLcgZeroSeedIsCoerced) {
  LegacyLcg a(0), b(1);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, LegacyFloatInUnitInterval) {
  LegacyLcg lcg(77);
  for (int i = 0; i < 1000; ++i) {
    const float f = lcg.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(PickUnit, SelectsByMagnitude) {
  EXPECT_STREQ(pick_unit(10), "ns");
  EXPECT_STREQ(pick_unit(10'000), "us");
  EXPECT_STREQ(pick_unit(10'000'000), "ms");
  EXPECT_STREQ(pick_unit(10'000'000'000), "s");
}

}  // namespace
}  // namespace cricket::sim
