// obs subsystem: metrics registry + span tracing.
//
// Tracing state (collector, enabled flag, bound clock) is process-global, so
// every tracing test goes through TraceTest, which resets the collector and
// restores the disabled/unbound default on exit — tests stay order-independent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "sim/sim_clock.hpp"

namespace cricket::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, ObserveSnapshotReset) {
  Histogram h;
  h.observe(1);
  h.observe(1);
  h.observe(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 102u);
  const sim::Log2Histogram snap = h.snapshot();
  EXPECT_EQ(snap.total(), 3u);
  EXPECT_EQ(snap.bucket(sim::Log2Histogram::bucket_index(1)), 2u);
  EXPECT_EQ(snap.bucket(sim::Log2Histogram::bucket_index(100)), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Registry, GetOrCreateIsStableAndCanonical) {
  Registry reg;
  Counter& a = reg.counter("calls", {{"mode", "sync"}, {"env", "vm"}});
  Counter& b = reg.counter("calls", {{"env", "vm"}, {"mode", "sync"}});
  EXPECT_EQ(&a, &b) << "label order must not create a second series";
  Counter& c = reg.counter("calls", {{"env", "native"}, {"mode", "sync"}});
  EXPECT_NE(&a, &c);
}

TEST(Registry, SeriesNameFormat) {
  EXPECT_EQ(series_name("up", {}), "up");
  EXPECT_EQ(series_name("calls", {{"a", "1"}, {"b", "2"}}),
            "calls{a=\"1\",b=\"2\"}");
}

TEST(Registry, UniqueLabelSequences) {
  Registry reg;
  EXPECT_EQ(reg.unique_label("vnet"), "vnet0");
  EXPECT_EQ(reg.unique_label("vnet"), "vnet1");
  EXPECT_EQ(reg.unique_label("gpu"), "gpu0");
}

TEST(Registry, ResetZeroesInPlace) {
  Registry reg;
  Counter& c = reg.counter("calls");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u) << "the pre-reset reference must stay live";
  c.inc();
  EXPECT_EQ(reg.snapshot().counters.at("calls"), 1u);
}

TEST(Registry, PrometheusGolden) {
  Registry reg;
  reg.counter("rpc_calls_total", {{"mode", "sync"}}, "Forwarded calls").inc(3);
  reg.gauge("queue_depth", {}, "Depth").set(-2);
  Histogram& h = reg.histogram("lat_ns", {{"layer", "net.tx"}}, "Latency");
  h.observe(1);
  h.observe(1);
  h.observe(100);
  EXPECT_EQ(reg.prometheus_text(),
            "# HELP rpc_calls_total Forwarded calls\n"
            "# TYPE rpc_calls_total counter\n"
            "rpc_calls_total{mode=\"sync\"} 3\n"
            "# HELP queue_depth Depth\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth -2\n"
            "# HELP lat_ns Latency\n"
            "# TYPE lat_ns histogram\n"
            "lat_ns_bucket{layer=\"net.tx\",le=\"1\"} 2\n"
            "lat_ns_bucket{layer=\"net.tx\",le=\"127\"} 3\n"
            "lat_ns_bucket{layer=\"net.tx\",le=\"+Inf\"} 3\n"
            "lat_ns_sum{layer=\"net.tx\"} 102\n"
            "lat_ns_count{layer=\"net.tx\"} 3\n");
}

TEST(Snapshot, MergeSumsCountersAndHistograms) {
  Registry a;
  a.counter("calls").inc(2);
  a.gauge("depth").set(1);
  a.histogram("lat").observe(4);
  Registry b;
  b.counter("calls").inc(5);
  b.gauge("depth").set(9);
  b.histogram("lat").observe(4);
  b.histogram("lat").observe(1000);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("calls"), 7u);
  EXPECT_EQ(merged.gauges.at("depth"), 9) << "gauges keep the latest value";
  EXPECT_EQ(merged.histograms.at("lat").hist.total(), 3u);
  EXPECT_EQ(merged.histograms.at("lat").sum, 1008u);
}

TEST(Registry, ConcurrentBumpsAreLossless) {
  Registry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Get-or-create races with other registrants on purpose.
      Counter& c = reg.counter("calls", {{"shared", "yes"}});
      Histogram& h = reg.histogram("lat");
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("calls", {{"shared", "yes"}}).value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Base for every test that touches the global trace collector.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_.reset();
    bind_clock(&clock_);
    reset_trace();
    enable_tracing();
  }
  void TearDown() override {
    disable_tracing();
    reset_trace();
    bind_clock(nullptr);
  }
  sim::SimClock clock_;
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  disable_tracing();
  reset_trace();
  {
    Span span(Layer::kApp, "noop");
    clock_.advance(100);
  }
  instant(Layer::kApp);
  EXPECT_TRUE(collect_events().empty());
  EXPECT_EQ(events_recorded(), 0u);
  EXPECT_EQ(events_dropped(), 0u);
}

// Everything below needs spans to actually record — compiled out along with
// the hot path under -DCRICKET_OBS=OFF (the define propagates from
// cricket::obs). DisabledSpansRecordNothing above doubles as the check that
// the no-op surface stays callable.
#if !defined(CRICKET_OBS_DISABLE)

TEST_F(TraceTest, NestedSpansOnVirtualClock) {
  {
    Span outer(Layer::kClientCall, "outer");
    clock_.advance(100);
    {
      Span inner(Layer::kChanSend, "inner", 64);
      clock_.advance(50);
    }
    clock_.advance(25);
  }
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted parents-first: ascending start, longer duration on ties.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].start_ns, 0);
  EXPECT_EQ(events[0].dur_ns, 175);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].start_ns, 100);
  EXPECT_EQ(events[1].dur_ns, 50);
  EXPECT_EQ(events[1].arg, 64u);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, ScopedXidNestsAndRestores) {
  EXPECT_EQ(current_xid(), 0u);
  {
    ScopedXid outer(7);
    EXPECT_EQ(current_xid(), 7u);
    instant(Layer::kApp, "at7");
    {
      ScopedXid inner(9);
      EXPECT_EQ(current_xid(), 9u);
      instant(Layer::kApp, "at9");
    }
    EXPECT_EQ(current_xid(), 7u);
  }
  EXPECT_EQ(current_xid(), 0u);
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].xid, 7u);
  EXPECT_EQ(events[1].xid, 9u);
}

TEST_F(TraceTest, SpanCancelAndIdempotentFinish) {
  {
    Span dropped(Layer::kApp, "dropped");
    dropped.cancel();
  }
  Span kept(Layer::kApp, "kept");
  clock_.advance(10);
  kept.finish();
  clock_.advance(10);
  kept.finish();  // no second event
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "kept");
  EXPECT_EQ(events[0].dur_ns, 10);
}

TEST_F(TraceTest, InstantEventsAreZeroDuration) {
  clock_.advance(4000);
  instant(Layer::kChanReply, nullptr, 99);
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_EQ(events[0].dur_ns, 0);
  EXPECT_EQ(events[0].arg, 99u);
  EXPECT_STREQ(events[0].name, "chan.reply");
}

TEST_F(TraceTest, RingWraparoundKeepsLatestAndCounts) {
  enable_tracing(TraceOptions{.ring_capacity = 8, .latency_metrics = true});
  reset_trace();  // re-register this thread's ring at the small capacity
  for (int i = 0; i < 20; ++i)
    instant(Layer::kApp, "tick", static_cast<std::uint64_t>(i));
  const auto events = collect_events();
  EXPECT_EQ(events.size(), 8u);
  for (const auto& ev : events)
    EXPECT_GE(ev.arg, 12u) << "wraparound must keep the newest events";
  EXPECT_EQ(events_recorded(), 20u);
  EXPECT_EQ(events_dropped(), 12u);
}

TEST_F(TraceTest, ResetDropsEventsAndCounters) {
  instant(Layer::kApp);
  instant(Layer::kApp);
  EXPECT_EQ(events_recorded(), 2u);
  reset_trace();
  EXPECT_TRUE(collect_events().empty());
  EXPECT_EQ(events_recorded(), 0u);
  instant(Layer::kApp);
  EXPECT_EQ(collect_events().size(), 1u) << "recording resumes after reset";
}

TEST_F(TraceTest, SpansFeedLayerLatencyHistograms) {
  const Snapshot before = Registry::global().snapshot();
  const auto series = "cricket_span_latency_ns{layer=\"gpu.launch\"}";
  const std::uint64_t base = before.histograms.count(series)
                                 ? before.histograms.at(series).hist.total()
                                 : 0;
  {
    Span span(Layer::kGpuLaunch);
    clock_.advance(1 << 12);
  }
  const Snapshot after = Registry::global().snapshot();
  ASSERT_TRUE(after.histograms.count(series));
  EXPECT_EQ(after.histograms.at(series).hist.total(), base + 1);
}

TEST_F(TraceTest, ConcurrentSpansAndCollect) {
  constexpr int kThreads = 4;
  constexpr int kSpans = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([this, t] {
      ScopedXid xid(static_cast<std::uint32_t>(t) + 1);
      for (int i = 0; i < kSpans; ++i) {
        Span span(Layer::kNetTx, nullptr, static_cast<std::uint64_t>(i));
        clock_.advance(1);
      }
    });
  }
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_relaxed)) (void)collect_events();
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const auto events = collect_events();
  // Rings are per-thread and large enough: every span must be present.
  std::size_t net_tx = 0;
  for (const auto& ev : events)
    if (ev.layer == Layer::kNetTx) ++net_tx;
  EXPECT_EQ(net_tx, static_cast<std::size_t>(kThreads) * kSpans);
}

// ---------------------------------------------------------------------------
// Cross-thread xid propagation through a pipelined RPC server
// ---------------------------------------------------------------------------

TEST_F(TraceTest, PipelinedServerHandsXidAcrossThreads) {
  constexpr std::uint32_t kProg = 0x20000077;
  constexpr std::uint32_t kVers = 1;
  constexpr std::uint32_t kProcAdd = 1;
  rpc::ServiceRegistry registry;
  registry.register_typed<std::uint32_t, std::uint32_t, std::uint32_t>(
      kProg, kVers, kProcAdd,
      [](std::uint32_t a, std::uint32_t b) { return a + b; });

  auto [client_end, server_end] = rpc::make_pipe_pair();
  std::thread server([&registry, transport = std::move(server_end)] {
    rpc::serve_transport(registry, *transport,
                         rpc::ServeOptions{.workers = 2});
  });
  {
    rpc::RpcClient client(std::move(client_end), kProg, kVers);
    for (std::uint32_t i = 0; i < 4; ++i)
      EXPECT_EQ((client.call<std::uint32_t>(kProcAdd, i, i)), 2 * i);
  }  // closing the client ends the serve loop
  server.join();
  disable_tracing();

  const auto events = collect_events();
  bool found_cross_thread = false;
  for (const auto& dispatch : events) {
    if (std::string(dispatch.name) != "server.dispatch") continue;
    ASSERT_NE(dispatch.xid, 0u) << "worker threads must inherit the call xid";
    for (const auto& client_ev : events) {
      if (std::string(client_ev.name) != "client.serialize") continue;
      if (client_ev.xid == dispatch.xid && client_ev.tid != dispatch.tid)
        found_cross_thread = true;
    }
  }
  EXPECT_TRUE(found_cross_thread)
      << "expected a server.dispatch span sharing an xid with a "
         "client.serialize span on a different thread";
}

#endif  // !CRICKET_OBS_DISABLE

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ChromeTrace, JsonGolden) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{.start_ns = 1500,
                              .dur_ns = 2500,
                              .arg = 64,
                              .xid = 7,
                              .tid = 1,
                              .layer = Layer::kVnetTx,
                              .instant = false,
                              .name = nullptr});
  events.push_back(TraceEvent{.start_ns = 4000,
                              .dur_ns = 0,
                              .arg = 0,
                              .xid = 7,
                              .tid = 2,
                              .layer = Layer::kChanReply,
                              .instant = true,
                              .name = nullptr});
  EXPECT_EQ(chrome_trace_json(events),
            "{\"traceEvents\":[\n"
            "{\"name\":\"vnet.tx\",\"cat\":\"vnet\",\"ph\":\"X\","
            "\"ts\":1.500,\"dur\":2.500,\"pid\":1,\"tid\":1,"
            "\"args\":{\"xid\":7,\"arg\":64}},\n"
            "{\"name\":\"chan.reply\",\"cat\":\"chan\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":4.000,\"pid\":1,\"tid\":2,"
            "\"args\":{\"xid\":7,\"arg\":0}}\n"
            "]}\n");
}

TEST(ChromeTrace, EmptyEventListIsValidJson) {
  EXPECT_EQ(chrome_trace_json({}), "{\"traceEvents\":[\n]}\n");
}

TEST(LayerTable, NamesAndCategoriesAreComplete) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Layer::kCount); ++i) {
    const auto layer = static_cast<Layer>(i);
    ASSERT_NE(layer_name(layer), nullptr);
    ASSERT_NE(layer_category(layer), nullptr);
    EXPECT_GT(std::string(layer_name(layer)).size(), 0u);
  }
  EXPECT_STREQ(layer_name(Layer::kServerDispatch), "server.dispatch");
  EXPECT_STREQ(layer_category(Layer::kServerDispatch), "server");
  EXPECT_STREQ(layer_name(Layer::kGpuMemcpy), "gpu.memcpy");
  EXPECT_STREQ(layer_category(Layer::kGpuMemcpy), "gpu");
}

#if !defined(CRICKET_OBS_DISABLE)

TEST(TraceSessionTest, WritesTraceAndMetricsFiles) {
  const std::string trace_path = testing::TempDir() + "obs_trace_test.json";
  const std::string metrics_path = testing::TempDir() + "obs_metrics_test.txt";
  {
    TraceSession session(trace_path, metrics_path);
    EXPECT_TRUE(session.active());
    {
      Span span(Layer::kApp, "session-span");
    }
    EXPECT_TRUE(session.flush());
  }
  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good());
  std::stringstream trace_text;
  trace_text << trace_file.rdbuf();
  EXPECT_NE(trace_text.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("session-span"), std::string::npos);

  std::ifstream metrics_file(metrics_path);
  ASSERT_TRUE(metrics_file.good());
  std::stringstream metrics_text;
  metrics_text << metrics_file.rdbuf();
  EXPECT_NE(metrics_text.str().find("cricket_span_latency_ns"),
            std::string::npos);
  // Tracing was disabled by flush(); leave the collector clean.
  reset_trace();
}

#endif  // !CRICKET_OBS_DISABLE

}  // namespace
}  // namespace cricket::obs
