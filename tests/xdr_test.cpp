#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>
#include <cmath>

#include <type_traits>

#include "sim/rng.hpp"
#include "xdr/taint.hpp"
#include "xdr/xdr.hpp"

namespace cricket::xdr {
namespace {

enum class Color : std::int32_t { kRed = 0, kGreen = 1, kBlue = 7 };

TEST(XdrEncoder, U32IsBigEndian) {
  Encoder enc;
  enc.put_u32(0x01020304u);
  const auto b = enc.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
}

TEST(XdrEncoder, I32NegativeTwosComplement) {
  Encoder enc;
  enc.put_i32(-1);
  const auto b = enc.bytes();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b[static_cast<std::size_t>(i)], 0xFF);
}

TEST(XdrEncoder, HyperSplitsHighLow) {
  Encoder enc;
  enc.put_u64(0x0102030405060708ULL);
  const auto b = enc.bytes();
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[7], 0x08);
}

TEST(XdrEncoder, StringPadsToFour) {
  Encoder enc;
  enc.put_string("abcde");  // 4 len + 5 data + 3 pad
  EXPECT_EQ(enc.size(), 12u);
  const auto b = enc.bytes();
  EXPECT_EQ(b[3], 5);          // length
  EXPECT_EQ(b[4], 'a');
  EXPECT_EQ(b[9], 0);          // padding
  EXPECT_EQ(b[10], 0);
  EXPECT_EQ(b[11], 0);
}

TEST(XdrEncoder, OpaqueAlreadyAlignedHasNoPadding) {
  Encoder enc;
  const std::uint8_t data[4] = {1, 2, 3, 4};
  enc.put_opaque(data);
  EXPECT_EQ(enc.size(), 8u);  // 4 length + 4 data
}

TEST(XdrRoundTrip, AllScalarTypes) {
  Encoder enc;
  enc.put_u32(0xDEADBEEFu);
  enc.put_i32(std::numeric_limits<std::int32_t>::min());
  enc.put_u64(0xFEEDFACECAFEBEEFULL);
  enc.put_i64(std::numeric_limits<std::int64_t>::min());
  enc.put_bool(true);
  enc.put_bool(false);
  enc.put_f32(3.14159f);
  enc.put_f64(-2.718281828459045);
  enc.put_enum(Color::kBlue);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_i32(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(dec.get_u64(), 0xFEEDFACECAFEBEEFULL);
  EXPECT_EQ(dec.get_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_FLOAT_EQ(dec.get_f32(), 3.14159f);
  EXPECT_DOUBLE_EQ(dec.get_f64(), -2.718281828459045);
  EXPECT_EQ(dec.get_enum<Color>(), Color::kBlue);
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrRoundTrip, SpecialFloats) {
  Encoder enc;
  enc.put_f32(std::numeric_limits<float>::infinity());
  enc.put_f64(-std::numeric_limits<double>::infinity());
  enc.put_f32(std::numeric_limits<float>::quiet_NaN());
  enc.put_f64(0.0);
  enc.put_f64(-0.0);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_f32(), std::numeric_limits<float>::infinity());
  EXPECT_EQ(dec.get_f64(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(dec.get_f32()));
  EXPECT_EQ(dec.get_f64(), 0.0);
  EXPECT_TRUE(std::signbit(dec.get_f64()));
}

TEST(XdrRoundTrip, EmptyString) {
  Encoder enc;
  enc.put_string("");
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrRoundTrip, EmptyOpaque) {
  Encoder enc;
  enc.put_opaque({});
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_opaque().empty());
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrRoundTrip, FixedOpaque) {
  Encoder enc;
  const std::uint8_t data[5] = {9, 8, 7, 6, 5};
  enc.put_opaque_fixed(data);
  EXPECT_EQ(enc.size(), 8u);  // 5 + 3 pad, no length
  Decoder dec(enc.bytes());
  std::uint8_t out[5] = {};
  dec.get_opaque_fixed(out);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[4], 5);
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrDecoder, UnderrunThrows) {
  const std::uint8_t two[2] = {0, 0};
  Decoder dec(two);
  EXPECT_THROW((void)dec.get_u32(), XdrError);
}

TEST(XdrDecoder, InvalidBoolThrows) {
  Encoder enc;
  enc.put_u32(2);
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_bool(), XdrError);
}

TEST(XdrDecoder, NonZeroPaddingThrows) {
  // "a" + non-zero padding byte.
  const std::uint8_t bad[] = {0, 0, 0, 1, 'a', 0xFF, 0, 0};
  Decoder dec(bad);
  EXPECT_THROW((void)dec.get_string(), XdrError);
}

TEST(XdrDecoder, OverMaxLenThrows) {
  Encoder enc;
  enc.put_opaque(std::vector<std::uint8_t>(100));
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_opaque(/*max_len=*/50), XdrError);
}

TEST(XdrDecoder, LengthBeyondBufferThrows) {
  Encoder enc;
  enc.put_u32(1000);  // claims 1000 bytes follow; they do not
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_opaque(), XdrError);
}

TEST(XdrDecoder, ExpectExhaustedThrowsOnTrailing) {
  Encoder enc;
  enc.put_u32(1);
  enc.put_u32(2);
  Decoder dec(enc.bytes());
  (void)dec.get_u32();
  EXPECT_THROW(dec.expect_exhausted(), XdrError);
}

TEST(XdrAdl, VectorOfStructuredTypes) {
  std::vector<std::uint32_t> v = {1, 2, 3, 4, 5};
  Encoder enc;
  xdr_encode(enc, v);
  EXPECT_EQ(enc.size(), 4u + 4u * 5u);
  Decoder dec(enc.bytes());
  std::vector<std::uint32_t> out;
  xdr_decode(dec, out);
  EXPECT_EQ(out, v);
}

TEST(XdrAdl, HostileArrayCountRejected) {
  Encoder enc;
  enc.put_u32(0x40000000u);  // ~1G elements claimed in a 4-byte buffer
  Decoder dec(enc.bytes());
  std::vector<std::uint32_t> out;
  EXPECT_THROW(xdr_decode(dec, out), XdrError);
}

TEST(XdrAdl, HostileWideElementCountRejectedWithoutAllocation) {
  // Regression: the count guard must scale by the element's minimum wire
  // size and run BEFORE the vector is resized. A 16-byte message claiming
  // one billion 8-byte elements is rejected up front — the old guard
  // (remaining()/4 + 1, element-size-blind) admitted hostile counts to the
  // resize for every element type wider than 4 bytes.
  Encoder enc;
  enc.put_u32(1000000000u);  // claimed element count
  enc.put_u64(0);            // 12 bytes of actual payload follow the count
  enc.put_u32(0);
  Decoder dec(enc.bytes());
  std::vector<std::uint64_t> out;
  EXPECT_THROW(xdr_decode(dec, out), XdrError);
  EXPECT_TRUE(out.empty());  // thrown before any resize touched the output
}

TEST(XdrAdl, WideElementCountBoundaryIsExact) {
  Encoder enc;
  xdr_encode(enc, std::vector<std::uint64_t>{7, 8});  // count + 16 bytes
  {
    // Exactly-fitting count decodes.
    Decoder dec(enc.bytes());
    std::vector<std::uint64_t> out;
    xdr_decode(dec, out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{7, 8}));
  }
  // Same bytes with the count bumped by one: claims 24 > 16 remaining, and
  // the old guard's "+ 1" slack must not readmit it.
  std::vector<std::uint8_t> bytes(enc.bytes().begin(), enc.bytes().end());
  bytes[3] = 3;
  Decoder dec(bytes);
  std::vector<std::uint64_t> out;
  EXPECT_THROW(xdr_decode(dec, out), XdrError);
  EXPECT_TRUE(out.empty());
}

TEST(XdrDecoder, SkipOpaqueConsumesWithoutCopy) {
  Encoder enc;
  enc.put_opaque(std::vector<std::uint8_t>(10, 0xCD));  // 4 + 10 + 2 pad
  enc.put_u32(0xFEEDF00Du);
  Decoder dec(enc.bytes());
  dec.skip_opaque();
  EXPECT_EQ(dec.get_u32(), 0xFEEDF00Du);
  dec.expect_exhausted();
}

TEST(XdrDecoder, SkipOpaqueEnforcesMaxLenAndBuffer) {
  Encoder enc;
  enc.put_opaque(std::vector<std::uint8_t>(10, 0xCD));
  {
    Decoder dec(enc.bytes());
    EXPECT_THROW(dec.skip_opaque(8), XdrError);  // over caller's cap
  }
  Encoder lie;
  lie.put_u32(100);  // claims 100 bytes, none follow
  Decoder dec(lie.bytes());
  EXPECT_THROW(dec.skip_opaque(), XdrError);
}

TEST(XdrAdl, OptionalPresentAndAbsent) {
  std::optional<std::string> present = "hello";
  std::optional<std::string> absent;
  Encoder enc;
  xdr_encode(enc, present);
  xdr_encode(enc, absent);
  Decoder dec(enc.bytes());
  std::optional<std::string> p, a;
  xdr_decode(dec, p);
  xdr_decode(dec, a);
  EXPECT_EQ(p, "hello");
  EXPECT_FALSE(a.has_value());
}

TEST(XdrAdl, ToFromBytesRoundTrip) {
  const std::string s = "the quick brown fox";
  EXPECT_EQ(from_bytes<std::string>(to_bytes(s)), s);
}

TEST(XdrAdl, FromBytesRejectsTrailingGarbage) {
  auto bytes = to_bytes(std::uint32_t{7});
  bytes.push_back(0);
  EXPECT_THROW((void)from_bytes<std::uint32_t>(bytes), XdrError);
}

// Property sweep: random opaque payloads of every alignment class survive a
// round trip and always produce 4-byte-aligned encodings.
class XdrOpaqueProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XdrOpaqueProperty, RoundTripAndAlignment) {
  sim::Xoshiro256ss rng(GetParam() * 997 + 1);
  std::vector<std::uint8_t> payload(GetParam());
  rng.fill_bytes(payload);

  Encoder enc;
  enc.put_opaque(payload);
  EXPECT_EQ(enc.size() % 4, 0u);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_opaque(), payload);
  EXPECT_TRUE(dec.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Alignments, XdrOpaqueProperty,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 63, 64, 65, 1000,
                                           4096, 65537));

// Property sweep: random scalar sequences round-trip exactly.
class XdrFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XdrFuzzRoundTrip, MixedScalarSequence) {
  sim::Xoshiro256ss rng(GetParam());
  Encoder enc;
  std::vector<std::uint64_t> values;
  std::vector<int> kinds;
  for (int i = 0; i < 200; ++i) {
    const int kind = static_cast<int>(rng.next() % 4);
    const std::uint64_t v = rng.next();
    kinds.push_back(kind);
    values.push_back(v);
    switch (kind) {
      case 0: enc.put_u32(static_cast<std::uint32_t>(v)); break;
      case 1: enc.put_u64(v); break;
      case 2: enc.put_i32(static_cast<std::int32_t>(v)); break;
      default: enc.put_f64(static_cast<double>(v)); break;
    }
  }
  Decoder dec(enc.bytes());
  for (int i = 0; i < 200; ++i) {
    switch (kinds[static_cast<std::size_t>(i)]) {
      case 0:
        EXPECT_EQ(dec.get_u32(),
                  static_cast<std::uint32_t>(values[static_cast<std::size_t>(i)]));
        break;
      case 1:
        EXPECT_EQ(dec.get_u64(), values[static_cast<std::size_t>(i)]);
        break;
      case 2:
        EXPECT_EQ(dec.get_i32(),
                  static_cast<std::int32_t>(values[static_cast<std::size_t>(i)]));
        break;
      default:
        EXPECT_DOUBLE_EQ(
            dec.get_f64(),
            static_cast<double>(values[static_cast<std::size_t>(i)]));
        break;
    }
  }
  EXPECT_TRUE(dec.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XdrFuzzRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------- wiretaint: Untrusted<T> -------------------------

using U64 = Untrusted<std::uint64_t>;
using I32 = Untrusted<std::int32_t>;

// The whole point of the wrapper: a tainted scalar cannot silently become a
// plain one. Detected at compile time, asserted here so a future implicit
// conversion operator cannot sneak in.
static_assert(!std::is_convertible_v<U64, std::uint64_t>);
static_assert(!std::is_convertible_v<I32, std::int32_t>);
static_assert(!std::is_convertible_v<std::uint64_t, U64>,
              "wrapping must be an explicit, visible act");
static_assert(!std::is_assignable_v<std::uint64_t&, U64>);

TEST(UntrustedTaint, ValidateAcceptsInBoundAndThrowsBeyond) {
  EXPECT_EQ(U64(41).validate(41), 41u);
  EXPECT_EQ(U64(0).validate(41), 0u);
  EXPECT_THROW((void)U64(42).validate(41), TaintError);
  // Signed: negative values never validate against an upper bound.
  EXPECT_THROW((void)I32(-1).validate(100), TaintError);
  // And a TaintError is an XdrError, so dispatch maps it to kGarbageArgs.
  EXPECT_THROW((void)U64(42).validate(41), XdrError);
}

TEST(UntrustedTaint, ValidateRangeIsInclusiveBothEnds) {
  EXPECT_EQ(I32(5).validate_range(5, 9), 5);
  EXPECT_EQ(I32(9).validate_range(5, 9), 9);
  EXPECT_THROW((void)I32(4).validate_range(5, 9), TaintError);
  EXPECT_THROW((void)I32(10).validate_range(5, 9), TaintError);
}

TEST(UntrustedTaint, ValidateIndexIsExclusiveOfExtent) {
  EXPECT_EQ(U64(9).validate_index(10), 9u);
  EXPECT_THROW((void)U64(10).validate_index(10), TaintError);
  EXPECT_THROW((void)I32(-1).validate_index(10), TaintError);
}

TEST(UntrustedTaint, TryValidateNeverThrowsAndOnlyWritesOnSuccess) {
  std::uint64_t out = 77;
  EXPECT_FALSE(U64(42).try_validate(41, out));
  EXPECT_EQ(out, 77u);  // refused: out untouched
  EXPECT_TRUE(U64(41).try_validate(41, out));
  EXPECT_EQ(out, 41u);
  // Free-function spelling, bound up front.
  EXPECT_TRUE(try_validate(U64(3), std::uint64_t{8}, out));
  EXPECT_EQ(out, 3u);
}

TEST(UntrustedTaint, TrustUncheckedPassesRawValueThrough) {
  EXPECT_EQ(U64(~0ull).trust_unchecked("test: raw passthrough"), ~0ull);
  EXPECT_EQ(I32(-7).trust_unchecked("test: raw passthrough"), -7);
}

TEST(UntrustedTaint, ArithmeticPropagatesTaint) {
  // The result of mixing tainted and plain operands is tainted: the only
  // way to observe it is another exit.
  const U64 sum = U64(40) + 2u;
  static_assert(std::is_same_v<decltype(sum), const U64>);
  EXPECT_EQ(sum.validate(100), 42u);
  EXPECT_EQ((2u + U64(40)).validate(100), 42u);
  EXPECT_EQ((U64(40) + U64(2)).validate(100), 42u);
  EXPECT_EQ((U64(44) - 2u).validate(100), 42u);
  EXPECT_EQ((U64(21) * 2u).validate(100), 42u);
  EXPECT_EQ((U64(84) / 2u).validate(100), 42u);
}

TEST(UntrustedTaint, AdditionSaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // The classic offset+len wrap: saturates to max, so any bound check
  // downstream still refuses it.
  EXPECT_EQ((U64(kMax - 3) + 8u).trust_unchecked("test"), kMax);
  EXPECT_FALSE((U64(kMax - 3) + 8u) <= kMax - 1);
  constexpr std::int32_t kIMax = std::numeric_limits<std::int32_t>::max();
  constexpr std::int32_t kIMin = std::numeric_limits<std::int32_t>::min();
  EXPECT_EQ((I32(kIMax) + 1).trust_unchecked("test"), kIMax);
  EXPECT_EQ((I32(kIMin) + (-1)).trust_unchecked("test"), kIMin);
}

TEST(UntrustedTaint, SubtractionAndMultiplicationSaturate) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ((U64(3) - 8u).trust_unchecked("test"), 0u);  // clamps, no wrap
  EXPECT_EQ((U64(1ull << 60) * 1024u).trust_unchecked("test"), kMax);
  constexpr std::int32_t kIMax = std::numeric_limits<std::int32_t>::max();
  constexpr std::int32_t kIMin = std::numeric_limits<std::int32_t>::min();
  EXPECT_EQ((I32(kIMin) - 1).trust_unchecked("test"), kIMin);
  EXPECT_EQ((I32(kIMax) * 2).trust_unchecked("test"), kIMax);
  EXPECT_EQ((I32(kIMin) * 2).trust_unchecked("test"), kIMin);
}

TEST(UntrustedTaint, DivisionRefusesHostileDivisors) {
  EXPECT_THROW((void)(U64(42) / U64(0)), TaintError);
  EXPECT_THROW((void)(std::uint64_t{42} / U64(0)), TaintError);
  constexpr std::int32_t kIMin = std::numeric_limits<std::int32_t>::min();
  // INT_MIN / -1 is UB on plain ints; here it saturates.
  EXPECT_EQ((I32(kIMin) / -1).trust_unchecked("test"),
            std::numeric_limits<std::int32_t>::max());
}

TEST(UntrustedTaint, ComparisonsAreSignSafeAndDoNotUntaint) {
  // -1 reinterpreted as unsigned must NOT pass a size check.
  EXPECT_FALSE(I32(-1) > 0);
  EXPECT_TRUE(I32(-1) < 0u);  // cmp_less: true even against unsigned
  EXPECT_TRUE(U64(~0ull) > 0);
  EXPECT_TRUE(U64(5) == 5u);
  EXPECT_TRUE(U64(5) != 6u);
  EXPECT_TRUE(U64(5) <= 5u);
  EXPECT_TRUE(5u >= U64(5));
  EXPECT_TRUE(U64(4) < U64(5));
}

TEST(UntrustedTaint, DecodeTaintsAndEncodeRoundTrips) {
  Encoder enc;
  xdr_encode(enc, U64(0xDEADBEEFCAFEF00Dull));
  Decoder dec(enc.bytes());
  U64 v;
  xdr_decode(dec, v);
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(v.validate(~0ull), 0xDEADBEEFCAFEF00Dull);
}

}  // namespace
}  // namespace cricket::xdr
