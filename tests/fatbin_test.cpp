#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fatbin/cubin.hpp"
#include "fatbin/fatbin.hpp"
#include "fatbin/lz.hpp"
#include "sim/rng.hpp"

namespace cricket::fatbin {
namespace {

CubinImage sample_image(std::uint32_t arch = 80) {
  CubinImage img;
  img.sm_arch = arch;
  KernelDescriptor k;
  k.name = "matrixMulCUDA";
  k.params = {
      {.size = 8, .align = 8, .is_pointer = true},   // C
      {.size = 8, .align = 8, .is_pointer = true},   // A
      {.size = 8, .align = 8, .is_pointer = true},   // B
      {.size = 4, .align = 4, .is_pointer = false},  // wA
      {.size = 4, .align = 4, .is_pointer = false},  // wB
  };
  k.max_threads_per_block = 1024;
  k.static_shared_bytes = 2 * 32 * 32 * 4;
  k.num_regs = 40;
  img.kernels.push_back(k);

  KernelDescriptor h;
  h.name = "histogram64Kernel";
  h.params = {{.size = 8, .align = 8, .is_pointer = true},
              {.size = 8, .align = 8, .is_pointer = true},
              {.size = 4, .align = 4, .is_pointer = false}};
  img.kernels.push_back(h);

  GlobalSymbol g;
  g.name = "d_scale_factor";
  g.size = 8;
  g.init = {0, 0, 0, 0, 0, 0, 240, 63};  // 1.0 as little-endian double
  img.globals.push_back(g);

  img.code = make_pseudo_isa(4096, /*seed=*/arch);
  return img;
}

// ---------------------------------- LZ -------------------------------------

TEST(Lz, EmptyInput) {
  EXPECT_TRUE(lz_compress({}).empty());
  EXPECT_TRUE(lz_decompress({}).empty());
}

TEST(Lz, RoundTripShortLiteral) {
  const std::vector<std::uint8_t> in = {1, 2, 3};
  EXPECT_EQ(lz_decompress(lz_compress(in)), in);
}

TEST(Lz, RoundTripAllSameByte) {
  const std::vector<std::uint8_t> in(10'000, 0xAB);
  const auto c = lz_compress(in);
  EXPECT_LT(c.size(), in.size() / 10);  // trivially compressible
  EXPECT_EQ(lz_decompress(c), in);
}

TEST(Lz, RoundTripRandomIncompressible) {
  sim::Xoshiro256ss rng(1);
  std::vector<std::uint8_t> in(100'000);
  rng.fill_bytes(in);
  const auto c = lz_compress(in);
  EXPECT_LT(c.size(), in.size() + in.size() / 64 + 16);  // bounded expansion
  EXPECT_EQ(lz_decompress(c), in);
}

TEST(Lz, PseudoIsaCompressesRealistically) {
  const auto code = make_pseudo_isa(100'000, 7);
  const auto c = lz_compress(code);
  // Machine-code-like input should compress meaningfully but not absurdly.
  EXPECT_LT(c.size(), code.size() * 3 / 4);
  EXPECT_GT(c.size(), code.size() / 50);
  EXPECT_EQ(lz_decompress(c), code);
}

TEST(Lz, OverlappingMatchesDecode) {
  // "abcabcabc..." produces matches with dist < len.
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 1000; ++i) in.push_back(static_cast<std::uint8_t>("abc"[i % 3]));
  EXPECT_EQ(lz_decompress(lz_compress(in)), in);
}

TEST(Lz, TruncatedLiteralThrows) {
  const std::vector<std::uint8_t> bad = {0x05, 'a', 'b'};  // promises 6 bytes
  EXPECT_THROW((void)lz_decompress(bad), LzError);
}

TEST(Lz, TruncatedMatchTokenThrows) {
  const std::vector<std::uint8_t> bad = {0x00, 'x', 0x80, 0x01};  // missing dist hi
  EXPECT_THROW((void)lz_decompress(bad), LzError);
}

TEST(Lz, BadDistanceThrows) {
  // Literal 'x' then match reaching back 5 bytes into 1 byte of output.
  const std::vector<std::uint8_t> bad = {0x00, 'x', 0x80, 0x05, 0x00};
  EXPECT_THROW((void)lz_decompress(bad), LzError);
}

TEST(Lz, ZeroDistanceThrows) {
  const std::vector<std::uint8_t> bad = {0x00, 'x', 0x80, 0x00, 0x00};
  EXPECT_THROW((void)lz_decompress(bad), LzError);
}

TEST(Lz, OutputLimitEnforced) {
  const std::vector<std::uint8_t> in(1000, 7);
  const auto c = lz_compress(in);
  EXPECT_THROW((void)lz_decompress(c, /*max_output=*/100), LzError);
}

class LzRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LzRoundTripProperty, RandomStructuredBuffers) {
  sim::Xoshiro256ss rng(GetParam());
  // Mix of runs, random spans, and repeated motifs.
  std::vector<std::uint8_t> in;
  for (int seg = 0; seg < 50; ++seg) {
    const auto kind = rng.next() % 3;
    const auto len = rng.next() % 2000;
    if (kind == 0) {
      in.insert(in.end(), len, static_cast<std::uint8_t>(rng.next()));
    } else if (kind == 1) {
      const std::size_t old = in.size();
      in.resize(old + len);
      rng.fill_bytes(std::span(in).subspan(old));
    } else if (!in.empty()) {
      const std::size_t start = rng.next() % in.size();
      const std::size_t n = std::min<std::size_t>(len, in.size() - start);
      for (std::size_t i = 0; i < n; ++i) in.push_back(in[start + i]);
    }
  }
  EXPECT_EQ(lz_decompress(lz_compress(in)), in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// --------------------------------- cubin -----------------------------------

TEST(Cubin, RoundTripPreservesEverything) {
  const CubinImage img = sample_image();
  const auto bytes = cubin_serialize(img);
  EXPECT_TRUE(cubin_probe(bytes));
  const CubinImage out = cubin_parse(bytes);
  EXPECT_EQ(out, img);
}

TEST(Cubin, FindKernelAndGlobal) {
  const CubinImage img = sample_image();
  ASSERT_NE(img.find_kernel("matrixMulCUDA"), nullptr);
  EXPECT_EQ(img.find_kernel("matrixMulCUDA")->params.size(), 5u);
  EXPECT_EQ(img.find_kernel("nonexistent"), nullptr);
  ASSERT_NE(img.find_global("d_scale_factor"), nullptr);
  EXPECT_EQ(img.find_global("d_scale_factor")->size, 8u);
}

TEST(Cubin, ParamOffsetsHonourAlignment) {
  KernelDescriptor k;
  k.params = {{.size = 4, .align = 4, .is_pointer = false},
              {.size = 8, .align = 8, .is_pointer = true},
              {.size = 1, .align = 1, .is_pointer = false},
              {.size = 8, .align = 8, .is_pointer = true}};
  EXPECT_EQ(k.param_offset(0), 0u);
  EXPECT_EQ(k.param_offset(1), 8u);   // 4 -> aligned to 8
  EXPECT_EQ(k.param_offset(2), 16u);
  EXPECT_EQ(k.param_offset(3), 24u);  // 17 -> aligned to 24
  EXPECT_EQ(k.param_buffer_size(), 32u);
}

TEST(Cubin, EmptyParamListHasZeroSize) {
  KernelDescriptor k;
  EXPECT_EQ(k.param_buffer_size(), 0u);
}

TEST(Cubin, BadMagicThrows) {
  std::vector<std::uint8_t> bad = {'X', 'X', 'X', 'X', 0};
  EXPECT_THROW((void)cubin_parse(bad), CubinError);
}

TEST(Cubin, TruncatedThrows) {
  auto bytes = cubin_serialize(sample_image());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)cubin_parse(bytes), CubinError);
}

TEST(Cubin, TrailingGarbageThrows) {
  auto bytes = cubin_serialize(sample_image());
  bytes.push_back(0);
  EXPECT_THROW((void)cubin_parse(bytes), CubinError);
}

TEST(Cubin, NonPowerOfTwoAlignmentRejected) {
  CubinImage img = sample_image();
  img.kernels[0].params[0].align = 3;
  const auto bytes = cubin_serialize(img);
  EXPECT_THROW((void)cubin_parse(bytes), CubinError);
}

TEST(Cubin, GlobalInitSizeMismatchRejected) {
  CubinImage img = sample_image();
  img.globals[0].init.resize(4);  // size says 8
  const auto bytes = cubin_serialize(img);
  EXPECT_THROW((void)cubin_parse(bytes), CubinError);
}

// --------------------------------- fatbin ----------------------------------

TEST(FatbinContainer, RoundTripMixedCompression) {
  Fatbin fb;
  fb.add_image(sample_image(61), /*compress=*/false);
  fb.add_image(sample_image(75), /*compress=*/true);
  fb.add_image(sample_image(80), /*compress=*/true);
  const auto bytes = fb.serialize();
  EXPECT_TRUE(Fatbin::probe(bytes));

  const Fatbin out = Fatbin::parse(bytes);
  ASSERT_EQ(out.entries().size(), 3u);
  EXPECT_FALSE(out.entries()[0].compressed);
  EXPECT_TRUE(out.entries()[1].compressed);
  EXPECT_EQ(out.load(80), sample_image(80));
  EXPECT_EQ(out.load(75), sample_image(75));
  EXPECT_EQ(out.load(61), sample_image(61));
}

TEST(FatbinContainer, SelectPicksHighestCompatible) {
  Fatbin fb;
  fb.add_image(sample_image(61), false);
  fb.add_image(sample_image(75), false);
  ASSERT_NE(fb.select(80), nullptr);
  EXPECT_EQ(fb.select(80)->sm_arch, 75u);
  EXPECT_EQ(fb.select(75)->sm_arch, 75u);
  EXPECT_EQ(fb.select(61)->sm_arch, 61u);
  EXPECT_EQ(fb.select(50), nullptr);  // nothing old enough
}

TEST(FatbinContainer, LoadWithNoCompatibleImageThrows) {
  Fatbin fb;
  fb.add_image(sample_image(80), false);
  EXPECT_THROW((void)fb.load(61), CubinError);
}

TEST(FatbinContainer, CompressionActuallyShrinksEntries) {
  Fatbin fb;
  fb.add_image(sample_image(80), true);
  const auto& e = fb.entries()[0];
  EXPECT_LT(e.payload.size(), e.uncompressed_len);
}

TEST(FatbinContainer, CorruptedCompressedPayloadThrows) {
  Fatbin fb;
  fb.add_image(sample_image(80), true);
  auto bytes = fb.serialize();
  // First payload byte: container header (12) + entry header (20). Breaking
  // the first LZ control byte desynchronizes the token stream.
  bytes[32] ^= 0x80;
  const Fatbin out = Fatbin::parse(bytes);
  EXPECT_THROW((void)out.load(80), std::runtime_error);
}

TEST(ExtractMetadata, HandlesBareCubin) {
  const auto bytes = cubin_serialize(sample_image());
  const CubinImage img = extract_metadata(bytes, 80);
  EXPECT_NE(img.find_kernel("matrixMulCUDA"), nullptr);
}

TEST(ExtractMetadata, HandlesCompressedBareCubin) {
  // Cricket's decompression path: a .cubin file that is itself compressed.
  const auto bytes = lz_compress(cubin_serialize(sample_image()));
  const CubinImage img = extract_metadata(bytes, 80);
  EXPECT_NE(img.find_kernel("histogram64Kernel"), nullptr);
}

TEST(ExtractMetadata, HandlesFatbin) {
  Fatbin fb;
  fb.add_image(sample_image(80), true);
  const CubinImage img = extract_metadata(fb.serialize(), 80);
  EXPECT_EQ(img.sm_arch, 80u);
}

TEST(ExtractMetadata, GarbageRejected) {
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  EXPECT_THROW((void)extract_metadata(garbage, 80), std::runtime_error);
}

}  // namespace
}  // namespace cricket::fatbin
