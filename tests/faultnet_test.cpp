// faultnet: the fault plane itself (spec parsing, deterministic injection),
// the recovery machinery it exercises (client retry, channel resubmission,
// the server duplicate-request cache, reconnects), and the loss-recovery
// regressions the plane exposed (minitcp dup-ACK re-arm, record size cap,
// zero-deadline batcher hangs).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "faultnet/fault_spec.hpp"
#include "faultnet/faulty_transport.hpp"
#include "faultnet/frame_faults.hpp"
#include "rpc/client.hpp"
#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "rpcflow/channel.hpp"
#include "vnet/minitcp.hpp"
#include "workloads/bandwidth_test.hpp"
#include "workloads/histogram.hpp"
#include "workloads/kernels.hpp"
#include "workloads/matrix_mul.hpp"

namespace cricket::faultnet {
namespace {

using namespace std::chrono_literals;

constexpr std::uint32_t kProg = 0x20000005;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcEcho = 1;
constexpr std::uint32_t kProcDelayEcho = 2;

// ------------------------------- FaultSpec ----------------------------------

TEST(FaultSpec, ParsesEveryKey) {
  const auto spec = FaultSpec::parse(
      "drop=0.1,dup=0.05,reorder=0.2,corrupt=0.01,delay=0.3,delay_us=500,"
      "reset=0.001,partition_after=10,partition_len=5,seed=7,max_faults=100");
  EXPECT_DOUBLE_EQ(spec.drop, 0.1);
  EXPECT_DOUBLE_EQ(spec.dup, 0.05);
  EXPECT_DOUBLE_EQ(spec.reorder, 0.2);
  EXPECT_DOUBLE_EQ(spec.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(spec.delay, 0.3);
  EXPECT_EQ(spec.delay_ns, 500 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(spec.reset, 0.001);
  EXPECT_EQ(spec.partition_after, 10u);
  EXPECT_EQ(spec.partition_len, 5u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.max_faults, 100u);
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultSpec::parse("nope=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop"), std::invalid_argument);
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const auto spec = FaultSpec::parse("drop=0.05,dup=0.25,seed=42");
  const auto again = FaultSpec::parse(spec.to_string());
  EXPECT_DOUBLE_EQ(again.drop, spec.drop);
  EXPECT_DOUBLE_EQ(again.dup, spec.dup);
  EXPECT_EQ(again.seed, spec.seed);
  EXPECT_DOUBLE_EQ(again.reorder, 0.0);
}

TEST(FaultSpec, FromEnvReadsAndFallsBack) {
  ASSERT_EQ(setenv("CRICKET_FAULTS_TESTVAR", "drop=0.5,seed=3", 1), 0);
  const auto from_env = FaultSpec::from_env("CRICKET_FAULTS_TESTVAR");
  ASSERT_TRUE(from_env.has_value());
  EXPECT_DOUBLE_EQ(from_env->drop, 0.5);
  EXPECT_EQ(from_env->seed, 3u);
  ASSERT_EQ(unsetenv("CRICKET_FAULTS_TESTVAR"), 0);
  EXPECT_FALSE(FaultSpec::from_env("CRICKET_FAULTS_TESTVAR").has_value());
  const auto fallback =
      FaultSpec::from_env_or("dup=0.25,seed=9", "CRICKET_FAULTS_TESTVAR");
  EXPECT_DOUBLE_EQ(fallback.dup, 0.25);
  EXPECT_EQ(fallback.seed, 9u);
}

// ---------------------------- FaultyTransport -------------------------------

/// Captures complete send() payloads for byte-identical comparison.
class CaptureTransport final : public rpc::Transport {
 public:
  void send(std::span<const std::uint8_t> data) override {
    sends_.emplace_back(data.begin(), data.end());
  }
  std::size_t recv(std::span<std::uint8_t>) override { return 0; }
  void shutdown() override {}

  std::vector<std::vector<std::uint8_t>> sends_;
};

/// One record-marked message: last-fragment header + n payload bytes.
std::vector<std::uint8_t> make_record(std::uint32_t n, std::uint8_t fill) {
  std::vector<std::uint8_t> msg(4 + n);
  const std::uint32_t header = 0x80000000u | n;
  msg[0] = static_cast<std::uint8_t>(header >> 24);
  msg[1] = static_cast<std::uint8_t>(header >> 16);
  msg[2] = static_cast<std::uint8_t>(header >> 8);
  msg[3] = static_cast<std::uint8_t>(header);
  for (std::uint32_t i = 0; i < n; ++i)
    msg[4 + i] = static_cast<std::uint8_t>(fill + i);
  return msg;
}

struct InjectionRun {
  FaultStats stats;
  std::vector<std::vector<std::uint8_t>> wire;
};

InjectionRun run_messages_through(const FaultSpec& spec, int messages) {
  auto capture = std::make_unique<CaptureTransport>();
  auto* raw = capture.get();
  FaultyTransport faulty(std::move(capture), spec);
  for (int i = 0; i < messages; ++i) {
    faulty.send(make_record(16 + (static_cast<std::uint32_t>(i) % 48),
                            static_cast<std::uint8_t>(i)));
  }
  InjectionRun run;
  run.stats = faulty.stats();
  run.wire = raw->sends_;
  return run;
}

TEST(FaultyTransport, SameSeedInjectsIdenticalFaults) {
  const auto spec = FaultSpec::parse(
      "drop=0.1,dup=0.1,reorder=0.1,corrupt=0.05,seed=99");
  const auto a = run_messages_through(spec, 200);
  const auto b = run_messages_through(spec, 200);
  EXPECT_EQ(a.stats.messages, 200u);
  EXPECT_GT(a.stats.injected(), 0u);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
  EXPECT_EQ(a.stats.reordered, b.stats.reordered);
  EXPECT_EQ(a.stats.corrupted, b.stats.corrupted);
  EXPECT_EQ(a.stats.forwarded, b.stats.forwarded);
  EXPECT_EQ(a.wire, b.wire);  // byte-identical wire image
}

TEST(FaultyTransport, DifferentSeedInjectsDifferentFaults) {
  const auto spec = FaultSpec::parse("drop=0.1,dup=0.1,corrupt=0.1,seed=99");
  const auto a = run_messages_through(spec, 200);
  const auto b = run_messages_through(spec.with_seed(100), 200);
  EXPECT_NE(a.wire, b.wire);
}

TEST(FaultyTransport, PartitionWindowSwallowsExactRange) {
  const auto spec = FaultSpec::parse("partition_after=2,partition_len=3");
  const auto run = run_messages_through(spec, 10);
  EXPECT_EQ(run.stats.partitioned, 3u);  // messages 3, 4, 5
  EXPECT_EQ(run.stats.forwarded, 7u);
  EXPECT_EQ(run.wire.size(), 7u);
}

TEST(FaultyTransport, MaxFaultsBoundsTheBudget) {
  const auto spec = FaultSpec::parse("drop=1.0,max_faults=2");
  const auto run = run_messages_through(spec, 5);
  EXPECT_EQ(run.stats.dropped, 2u);
  EXPECT_EQ(run.stats.forwarded, 3u);
}

TEST(FaultyTransport, ResetSeversTheConnection) {
  auto capture = std::make_unique<CaptureTransport>();
  FaultyTransport faulty(std::move(capture), FaultSpec::parse("reset=1.0"));
  EXPECT_THROW(faulty.send(make_record(8, 0)), rpc::TransportError);
  EXPECT_THROW(faulty.send(make_record(8, 1)), rpc::TransportError);
  EXPECT_EQ(faulty.stats().resets, 1u);
}

TEST(FaultyTransport, CorruptionPreservesRecordFraming) {
  auto capture = std::make_unique<CaptureTransport>();
  auto* raw = capture.get();
  FaultyTransport faulty(std::move(capture), FaultSpec::parse("corrupt=1.0"));
  const auto original = make_record(64, 7);
  faulty.send(original);
  ASSERT_EQ(raw->sends_.size(), 1u);
  const auto& wire = raw->sends_[0];
  ASSERT_EQ(wire.size(), original.size());
  // Fragment header intact, payload changed.
  EXPECT_TRUE(std::equal(wire.begin(), wire.begin() + 4, original.begin()));
  EXPECT_NE(wire, original);
  EXPECT_EQ(faulty.stats().corrupted, 1u);
}

TEST(FaultyTransport, ReassemblesSplitHeaderAndPayloadSends) {
  // The record layer sends header and payload separately; faults must apply
  // to whole messages, not to either partial send.
  auto capture = std::make_unique<CaptureTransport>();
  auto* raw = capture.get();
  FaultyTransport faulty(std::move(capture), FaultSpec::parse("dup=1.0"));
  const auto msg = make_record(32, 3);
  faulty.send(std::span(msg).subspan(0, 4));   // header only: no output yet
  EXPECT_TRUE(raw->sends_.empty());
  faulty.send(std::span(msg).subspan(4));      // payload completes it
  ASSERT_EQ(raw->sends_.size(), 2u);           // forwarded + duplicate
  EXPECT_EQ(raw->sends_[0], msg);
  EXPECT_EQ(raw->sends_[1], msg);
}

// ----------------------- duplicate-request cache ----------------------------

rpc::CallMsg make_call(std::uint32_t xid, std::uint32_t value,
                       const rpc::OpaqueAuth& cred = {}) {
  rpc::CallMsg call;
  call.xid = xid;
  call.prog = kProg;
  call.vers = kVers;
  call.proc = kProcEcho;
  call.cred = cred;
  xdr::Encoder enc;
  xdr_encode(enc, value);
  call.args = enc.take();
  return call;
}

struct DrcFixture {
  DrcFixture() {
    registry.register_typed<std::uint32_t, std::uint32_t>(
        kProg, kVers, kProcEcho, [this](std::uint32_t v) {
          executions.fetch_add(1);
          return v;
        });
  }
  rpc::ServiceRegistry registry;
  std::atomic<std::uint64_t> executions{0};
};

TEST(DuplicateRequestCache, RetriedXidAnsweredFromCache) {
  DrcFixture f;
  f.registry.enable_duplicate_cache();
  const auto call = make_call(1, 41);
  const auto first = f.registry.dispatch(call);
  const auto second = f.registry.dispatch(call);  // the retry
  EXPECT_EQ(first.results, second.results);
  EXPECT_EQ(f.executions.load(), 1u);
  EXPECT_EQ(f.registry.drc_stats().hits, 1u);
  EXPECT_EQ(f.registry.drc_stats().insertions, 1u);
}

TEST(DuplicateRequestCache, DisabledCacheReExecutes) {
  DrcFixture f;
  const auto call = make_call(1, 41);
  (void)f.registry.dispatch(call);
  (void)f.registry.dispatch(call);
  EXPECT_EQ(f.executions.load(), 2u);
}

TEST(DuplicateRequestCache, DistinctCredentialsAreDistinctClients) {
  DrcFixture f;
  f.registry.enable_duplicate_cache();
  rpc::AuthSysParms alice;
  alice.machinename = "alice";
  rpc::AuthSysParms bob;
  bob.machinename = "bob";
  (void)f.registry.dispatch(make_call(1, 10, alice.to_opaque()));
  (void)f.registry.dispatch(make_call(1, 10, bob.to_opaque()));
  EXPECT_EQ(f.executions.load(), 2u);  // same xid, different client identity
  EXPECT_EQ(f.registry.drc_stats().hits, 0u);
}

TEST(DuplicateRequestCache, FifoEvictionForgetsOldestFirst) {
  DrcFixture f;
  f.registry.enable_duplicate_cache(rpc::DrcOptions{.max_entries = 2});
  (void)f.registry.dispatch(make_call(1, 1));
  (void)f.registry.dispatch(make_call(2, 2));
  (void)f.registry.dispatch(make_call(3, 3));  // evicts xid 1
  EXPECT_GE(f.registry.drc_stats().evictions, 1u);
  (void)f.registry.dispatch(make_call(1, 1));  // re-executes: no longer cached
  EXPECT_EQ(f.executions.load(), 4u);
  (void)f.registry.dispatch(make_call(3, 3));  // still cached
  EXPECT_EQ(f.executions.load(), 4u);
}

// --------------------------- fault matrix -----------------------------------

/// Echo service over a faulty pipe pair, servable serially or pipelined.
/// Both directions get independent fault streams derived from the spec seed.
class FaultyRpcHarness {
 public:
  explicit FaultyRpcHarness(const FaultSpec& spec,
                            rpc::ServeOptions serve = {}) {
    registry_.register_typed<std::uint32_t, std::uint32_t>(
        kProg, kVers, kProcEcho, [this](std::uint32_t v) {
          executions_.fetch_add(1);
          return v;
        });
    registry_.register_typed<std::uint32_t, std::uint32_t, std::uint32_t>(
        kProg, kVers, kProcDelayEcho,
        [this](std::uint32_t value, std::uint32_t delay_ms) {
          executions_.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
          return value;
        });
    registry_.enable_duplicate_cache();

    auto [client_end, server_end] = rpc::make_pipe_pair();
    client_transport_ = std::make_unique<FaultyTransport>(
        std::move(client_end), spec.with_seed(spec.seed ^ 0xC11Eu));
    auto server_faulty = std::make_unique<FaultyTransport>(
        std::move(server_end), spec.with_seed(spec.seed ^ 0x5EEEu));
    server_thread_ = std::thread(
        [this, serve, transport = std::move(server_faulty)]() mutable {
          rpc::serve_transport(registry_, *transport, serve);
        });
  }

  ~FaultyRpcHarness() {
    if (server_thread_.joinable()) server_thread_.join();
  }

  [[nodiscard]] std::unique_ptr<rpc::Transport> take_client_transport() {
    return std::move(client_transport_);
  }
  [[nodiscard]] std::uint64_t executions() const {
    return executions_.load();
  }
  [[nodiscard]] const rpc::ServiceRegistry& registry() const {
    return registry_;
  }

 private:
  rpc::ServiceRegistry registry_;
  std::atomic<std::uint64_t> executions_{0};
  std::unique_ptr<rpc::Transport> client_transport_;
  std::thread server_thread_;
};

rpc::RetryPolicy test_retry_policy() {
  rpc::RetryPolicy retry;
  retry.enabled = true;
  // Deep enough for the partition matrix: a 4-message blackhole on BOTH
  // directions can eat the original, 3 resends, and then 4 replies before
  // the window heals — attempt 9 is the first that can round-trip.
  retry.max_attempts = 12;
  retry.attempt_timeout = 150ms;
  retry.deadline = 20s;  // generous: TSan runs are slow
  return retry;
}

constexpr std::uint32_t kMatrixCalls = 30;

void run_serial_matrix(const FaultSpec& spec) {
  FaultyRpcHarness h(spec);
  {
    rpc::ClientOptions options;
    options.retry = test_retry_policy();
    rpc::RpcClient client(h.take_client_transport(), kProg, kVers, options);
    for (std::uint32_t i = 0; i < kMatrixCalls; ++i) {
      EXPECT_EQ(client.call<std::uint32_t>(kProcEcho, i), i) << "call " << i;
    }
  }
  // Exactly-once: every logical call executed precisely one time, however
  // many wire-level attempts it took. Retries of already-executed calls were
  // answered from the duplicate-request cache.
  EXPECT_EQ(h.executions(), kMatrixCalls);
}

void run_pipelined_matrix(const FaultSpec& spec, bool batched) {
  FaultyRpcHarness h(spec);
  std::uint64_t retries = 0;
  {
    rpcflow::ChannelOptions options;
    options.retry = test_retry_policy();
    if (batched) {
      options.batch.enabled = true;
      options.batch.max_calls = 4;
      options.batch.deadline = 200us;
    }
    rpcflow::AsyncRpcChannel channel(h.take_client_transport(), kProg, kVers,
                                     options);
    std::vector<rpcflow::TypedFuture<std::uint32_t>> futures;
    for (std::uint32_t i = 0; i < kMatrixCalls; ++i) {
      futures.push_back(channel.call_async<std::uint32_t>(kProcEcho, i));
    }
    channel.flush();
    for (std::uint32_t i = 0; i < kMatrixCalls; ++i) {
      EXPECT_EQ(futures[i].get(), i) << "call " << i;
    }
    retries = channel.stats().retries;
  }
  EXPECT_EQ(h.executions(), kMatrixCalls);
  if (spec.drop >= 0.2) {
    EXPECT_GT(retries, 0u);
  }
}

TEST(FaultMatrix, SerialSurvivesDrops) {
  run_serial_matrix(FaultSpec::parse("drop=0.2,seed=42"));
}
TEST(FaultMatrix, SerialSurvivesDuplicates) {
  run_serial_matrix(FaultSpec::parse("dup=0.3,seed=42"));
}
TEST(FaultMatrix, SerialSurvivesReordering) {
  run_serial_matrix(FaultSpec::parse("reorder=0.3,seed=42"));
}
TEST(FaultMatrix, SerialSurvivesPartition) {
  run_serial_matrix(FaultSpec::parse("partition_after=6,partition_len=4"));
}
TEST(FaultMatrix, SerialSurvivesDelay) {
  run_serial_matrix(FaultSpec::parse("delay=0.3,delay_us=1000,seed=42"));
}
TEST(FaultMatrix, PipelinedSurvivesDrops) {
  run_pipelined_matrix(FaultSpec::parse("drop=0.2,seed=42"), false);
}
TEST(FaultMatrix, PipelinedSurvivesDuplicates) {
  run_pipelined_matrix(FaultSpec::parse("dup=0.3,seed=42"), false);
}
TEST(FaultMatrix, PipelinedSurvivesReordering) {
  run_pipelined_matrix(FaultSpec::parse("reorder=0.3,seed=42"), false);
}
TEST(FaultMatrix, PipelinedSurvivesPartition) {
  run_pipelined_matrix(
      FaultSpec::parse("partition_after=6,partition_len=4"), false);
}
TEST(FaultMatrix, BatchedSurvivesDrops) {
  run_pipelined_matrix(FaultSpec::parse("drop=0.2,seed=42"), true);
}
TEST(FaultMatrix, BatchedSurvivesDuplicates) {
  run_pipelined_matrix(FaultSpec::parse("dup=0.3,seed=42"), true);
}
TEST(FaultMatrix, BatchedSurvivesReordering) {
  run_pipelined_matrix(FaultSpec::parse("reorder=0.3,seed=42"), true);
}

TEST(FaultMatrix, SerialSurvivesCorruptionBurst) {
  // Corruption with a budget: the first few messages get mangled (the
  // client-side skip / server-side drop paths plus retry recover), then the
  // link runs clean and every remaining call must succeed.
  FaultyRpcHarness h(FaultSpec::parse("corrupt=1.0,max_faults=4,seed=42"));
  rpc::ClientOptions options;
  options.retry = test_retry_policy();
  rpc::RpcClient client(h.take_client_transport(), kProg, kVers, options);
  std::uint32_t ok = 0;
  for (std::uint32_t i = 0; i < kMatrixCalls; ++i) {
    try {
      if (client.call<std::uint32_t>(kProcEcho, i) == i) ++ok;
    } catch (const rpc::RpcError&) {
      // A corrupted-but-decodable call can surface as a call-level error;
      // what must NOT happen is a dead connection.
    }
  }
  // The burst covers at most the first few calls; everything after it is
  // untouched and must have completed correctly.
  EXPECT_GE(ok, kMatrixCalls - 8);
  EXPECT_EQ(client.call<std::uint32_t>(kProcEcho, 77u), 77u);
}

TEST(FaultMatrix, SerialRetryIsDeterministicAcrossRuns) {
  // Identical seed, identical workload: the injected-fault counts must be
  // byte-for-byte reproducible (the acceptance bar for "deterministic").
  const auto spec = FaultSpec::parse("drop=0.25,dup=0.1,seed=1234");
  auto run_once = [&spec] {
    FaultyRpcHarness h(spec);
    rpc::ClientOptions options;
    options.retry = test_retry_policy();
    rpc::RpcClient client(h.take_client_transport(), kProg, kVers, options);
    for (std::uint32_t i = 0; i < 10; ++i) {
      EXPECT_EQ(client.call<std::uint32_t>(kProcEcho, i), i);
    }
    return client.stats().retries;
  };
  // Fault *decisions* are a pure function of (seed, message index), so the
  // first run's retry count only depends on which messages were dropped.
  // Wall-clock jitter can add spurious timeouts on a loaded machine, so
  // equality of retry counts is asserted only as a lower bound here; the
  // wire-level determinism proof is SameSeedInjectsIdenticalFaults.
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_GT(first + second, 0u);  // drop=0.25 over 40+ messages must bite
}

// -------------------------- deadlines & stickiness --------------------------

TEST(RetryPolicy, ExhaustionRaisesDeadlineExceeded) {
  FaultyRpcHarness h(FaultSpec::parse("drop=1.0,seed=1"));
  rpc::ClientOptions options;
  options.retry.enabled = true;
  options.retry.max_attempts = 2;
  options.retry.attempt_timeout = 40ms;
  options.retry.deadline = 5s;
  rpc::RpcClient client(h.take_client_transport(), kProg, kVers, options);
  try {
    (void)client.call<std::uint32_t>(kProcEcho, 1u);
    FAIL() << "expected RpcError";
  } catch (const rpc::RpcError& e) {
    EXPECT_EQ(e.kind(), rpc::RpcError::Kind::kDeadlineExceeded);
  }
  EXPECT_EQ(client.stats().deadline_exceeded, 1u);
  EXPECT_EQ(client.stats().retries, 1u);  // 2 attempts = 1 retry
}

TEST(RetryPolicy, NonIdempotentProcedureFailsFast) {
  FaultyRpcHarness h(FaultSpec::parse("drop=1.0,seed=1"));
  rpc::ClientOptions options;
  options.retry.enabled = true;
  options.retry.max_attempts = 4;
  options.retry.attempt_timeout = 40ms;
  options.retry.assume_at_most_once = false;  // no DRC: nothing is retryable
  rpc::RpcClient client(h.take_client_transport(), kProg, kVers, options);
  try {
    (void)client.call<std::uint32_t>(kProcEcho, 1u);
    FAIL() << "expected RpcError";
  } catch (const rpc::RpcError& e) {
    EXPECT_EQ(e.kind(), rpc::RpcError::Kind::kDeadlineExceeded);
  }
  EXPECT_EQ(client.stats().retries, 0u);  // refused to re-send
}

TEST(RetryPolicy, ChannelFailsFuturesOnExhaustion) {
  FaultyRpcHarness h(FaultSpec::parse("drop=1.0,seed=1"));
  rpcflow::ChannelOptions options;
  options.retry.enabled = true;
  options.retry.max_attempts = 2;
  options.retry.attempt_timeout = 40ms;
  options.retry.deadline = 5s;
  rpcflow::AsyncRpcChannel channel(h.take_client_transport(), kProg, kVers,
                                   options);
  auto fut = channel.call_async<std::uint32_t>(kProcEcho, 1u);
  channel.flush();
  try {
    (void)fut.get();
    FAIL() << "expected RpcError";
  } catch (const rpc::RpcError& e) {
    EXPECT_EQ(e.kind(), rpc::RpcError::Kind::kDeadlineExceeded);
  }
  EXPECT_EQ(channel.stats().deadline_exceeded, 1u);
}

TEST(StickyError, RemoteApiDegradesGracefullyAfterExhaustion) {
  auto node = cuda::GpuNode::make_a100();
  auto [client_end, server_end] = rpc::make_pipe_pair();
  // A 100%-loss link: the server never even sees the calls.
  auto faulty = std::make_unique<FaultyTransport>(
      std::move(client_end), FaultSpec::parse("drop=1.0,seed=1"));
  (void)server_end;  // never served: total blackhole
  core::ClientConfig config;
  config.retry.enabled = true;
  config.retry.max_attempts = 2;
  config.retry.attempt_timeout = 40ms;
  config.retry.deadline = 2s;
  core::RemoteCudaApi api(std::move(faulty), node->clock(), config);
  EXPECT_EQ(api.sticky_error(), cuda::Error::kSuccess);
  int count = 0;
  EXPECT_EQ(api.get_device_count(count), cuda::Error::kRpcFailure);
  EXPECT_EQ(api.sticky_error(), cuda::Error::kRpcFailure);
  // Degraded mode: instant failure, no fresh attempts on the wire.
  const auto calls_before = api.stats().api_calls;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(api.get_device_count(count), cuda::Error::kRpcFailure);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
  EXPECT_EQ(api.stats().api_calls, calls_before + 1);
}

// ------------------------------ reconnects ----------------------------------

TEST(Reconnect, SyncClientReconnectsThroughFactory) {
  DrcFixture f;
  f.registry.enable_duplicate_cache();
  rpc::TcpRpcServer server(f.registry, std::make_unique<rpc::TcpListener>());
  const auto port = server.port();

  rpc::ClientOptions options;
  options.retry = test_retry_policy();
  options.reconnect = [port] {
    return rpc::TcpTransport::connect_loopback(port);
  };
  rpc::RpcClient client(rpc::TcpTransport::connect_loopback(port), kProg,
                        kVers, options);
  EXPECT_EQ(client.call<std::uint32_t>(kProcEcho, 5u), 5u);
  client.transport().shutdown();  // sever the connection under the client
  EXPECT_EQ(client.call<std::uint32_t>(kProcEcho, 6u), 6u);
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_EQ(f.executions.load(), 2u);
}

TEST(Reconnect, ChannelResubmitsInFlightCallsOnNewConnection) {
  rpc::ServiceRegistry registry;
  std::atomic<std::uint64_t> executions{0};
  registry.register_typed<std::uint32_t, std::uint32_t, std::uint32_t>(
      kProg, kVers, kProcDelayEcho,
      [&executions](std::uint32_t value, std::uint32_t delay_ms) {
        executions.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        return value;
      });
  registry.enable_duplicate_cache();

  // Each "connection" is a pipe pair with its own serve thread on the shared
  // registry; the factory is called from the channel's reader thread.
  std::mutex threads_mu;
  std::vector<std::thread> serve_threads;
  auto connect_fn = [&]() -> std::unique_ptr<rpc::Transport> {
    auto pair = rpc::make_pipe_pair();
    auto server_end = std::move(pair.second);
    std::lock_guard<std::mutex> lock(threads_mu);
    serve_threads.emplace_back(
        [&registry, end = std::move(server_end)]() mutable {
          rpc::serve_transport(registry, *end, rpc::ServeOptions{});
        });
    return std::move(pair.first);
  };

  // The first connection keeps its server end accessible so the test can
  // sever the server->client direction mid-call.
  auto first = rpc::make_pipe_pair();
  auto first_server_end = std::move(first.second);
  rpc::Transport* first_server = first_server_end.get();
  {
    std::lock_guard<std::mutex> lock(threads_mu);
    serve_threads.emplace_back(
        [&registry, end = std::move(first_server_end)]() mutable {
          rpc::serve_transport(registry, *end, rpc::ServeOptions{});
        });
  }

  rpcflow::ChannelOptions options;
  options.retry = test_retry_policy();
  options.reconnect = connect_fn;
  {
    rpcflow::AsyncRpcChannel channel(std::move(first.first), kProg, kVers,
                                     options);
    // Issue a call, let it reach the server, then kill the reply direction
    // while the handler is still running: the reader sees end-of-stream,
    // reconnects, and resubmits the in-flight xid on the new connection.
    auto fut = channel.call_async<std::uint32_t>(
        kProcDelayEcho, std::uint32_t{321}, std::uint32_t{300});
    channel.flush();
    std::this_thread::sleep_for(50ms);
    first_server->shutdown();  // server->client direction dies
    EXPECT_EQ(fut.get(), 321u);
    EXPECT_GE(channel.stats().reconnects, 1u);
  }
  // The resubmitted xid was answered by the duplicate cache (or waited on
  // the in-flight original) — the handler body ran exactly once.
  EXPECT_EQ(executions.load(), 1u);
  for (auto& t : serve_threads) t.join();
}

// --------------------- satellite regressions --------------------------------

TEST(RecordCap, OversizedRecordIsRejectedBeforeAllocation) {
  auto [a, b] = rpc::make_pipe_pair();
  // Header advertising a fragment just past the configured cap.
  const std::uint32_t huge =
      static_cast<std::uint32_t>(rpc::RecordReader::kDefaultMaxRecord) + 1;
  std::vector<std::uint8_t> header = {
      static_cast<std::uint8_t>(0x80 | ((huge >> 24) & 0x7F)),
      static_cast<std::uint8_t>(huge >> 16),
      static_cast<std::uint8_t>(huge >> 8),
      static_cast<std::uint8_t>(huge)};
  a->send(header);
  rpc::RecordReader reader(*b);
  std::vector<std::uint8_t> out;
  EXPECT_THROW((void)reader.read_record(out), rpc::TransportError);
}

TEST(RecordCap, DefaultCapCoversMaxPayloadPlusEnvelope) {
  // CRICKET_MAX_PAYLOAD (1 GiB) plus the 64 KiB header envelope — anything
  // larger cannot be a legal cricket.x message.
  EXPECT_EQ(rpc::RecordReader::kDefaultMaxRecord,
            (std::size_t{1} << 30) + (std::size_t{64} << 10));
}

TEST(ZeroDeadlineBatcher, BlockedFutureFlushesInsteadOfHanging) {
  FaultyRpcHarness h(FaultSpec{});  // clean network
  rpcflow::ChannelOptions options;
  options.batch.enabled = true;
  options.batch.max_calls = 1000;   // never fills
  options.batch.max_bytes = 1 << 20;
  options.batch.deadline = 0us;     // no background flusher
  rpcflow::AsyncRpcChannel channel(h.take_client_transport(), kProg, kVers,
                                   options);
  auto fut = channel.call_async<std::uint32_t>(kProcEcho, 9u);
  // No flush() — before the on_block hook this would deadlock forever.
  EXPECT_EQ(fut.get(), 9u);
}

TEST(MiniTcpRegression, SecondLossStillFastRetransmits) {
  using vnet::TcpConfig;
  using vnet::TcpConnection;
  using vnet::TcpState;
  // Two consecutive losses of the same segment (the original and its fast
  // retransmit): after the first fire the dup-ACK counter must re-arm, or
  // the second loss stalls until the RTO (the bug this PR fixes).
  TcpConfig ccfg;
  ccfg.local_ip = 0x0A000002;
  ccfg.remote_ip = 0x0A000001;
  ccfg.local_port = 40000;
  ccfg.remote_port = 50000;
  ccfg.ip_mtu = 1500;
  ccfg.initial_seq = 100;
  TcpConfig scfg;
  scfg.local_ip = 0x0A000001;
  scfg.remote_ip = 0x0A000002;
  scfg.local_port = 50000;
  scfg.remote_port = 40000;
  scfg.ip_mtu = 1500;
  scfg.initial_seq = 7000;

  std::deque<std::vector<std::uint8_t>> to_server;
  std::deque<std::vector<std::uint8_t>> to_client;
  // Client->server frames pass through the injector; forced drops only.
  FrameFaultInjector inject(FaultSpec{}, [&to_server](auto frame) {
    to_server.push_back(std::move(frame));
  });
  TcpConnection client(ccfg, [&inject](auto f) { inject(std::move(f)); });
  TcpConnection server(scfg, [&to_client](auto frame) {
    to_client.push_back(std::move(frame));
  });

  sim::Nanos now = 0;
  auto pump = [&](int max_rounds) {
    for (int round = 0; round < max_rounds; ++round) {
      if (to_server.empty() && to_client.empty()) {
        if (client.unacked_bytes() == 0 &&
            client.state() != TcpState::kSynSent &&
            server.state() != TcpState::kSynReceived)
          return true;
        now += 250 * sim::kMillisecond;
        client.poll(now);
        server.poll(now);
        if (to_server.empty() && to_client.empty()) return true;
      }
      if (!to_server.empty()) {
        auto f = std::move(to_server.front());
        to_server.pop_front();
        server.on_frame(f, now);
      }
      if (!to_client.empty()) {
        auto f = std::move(to_client.front());
        to_client.pop_front();
        client.on_frame(f, now);
      }
      now += 10 * sim::kMicrosecond;
    }
    return false;
  };

  server.listen();
  client.connect(now);
  ASSERT_TRUE(pump(10'000));
  ASSERT_EQ(client.state(), TcpState::kEstablished);

  // 20 KiB = 14 segments at MSS 1460, all emitted at once (the window is
  // larger than the burst). Client emissions are strictly ordered through
  // the injector: SYN and the handshake ACK came first, the burst is the
  // next 14 frames, and the first fast retransmit — whenever the third
  // duplicate ACK fires it — is necessarily the 15th.
  std::vector<std::uint8_t> payload(20 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31);

  const std::uint64_t handshake_frames = inject.stats().messages;
  // Two consecutive losses of the same sequence range: the 2nd data segment
  // AND its fast retransmit. The 12 later segments supply a long run of
  // duplicate ACKs for one unchanged ACK value; with the counter re-armed
  // on fire (the fix), three further duplicates trigger a second fast
  // retransmit. Without the re-arm the counter runs 4, 5, … past the
  // threshold and the connection sits dead until the 200 ms RTO.
  inject.force_drop(handshake_frames + 2);   // original segment
  inject.force_drop(handshake_frames + 15);  // its fast retransmit
  ASSERT_EQ(client.send(payload, now), payload.size());
  ASSERT_TRUE(pump(100'000));
  EXPECT_EQ(server.take_received(), payload);

  EXPECT_EQ(inject.stats().dropped, 2u);
  // The second loss was also recovered by fast retransmit (the re-armed
  // counter fired again); before the fix this is exactly 1.
  EXPECT_GE(client.stats().fast_retransmits, 2u);
}

// ------------------ workloads under CRICKET_FAULTS --------------------------

/// The acceptance scenario: full Cricket stack over an env-built connection
/// with CRICKET_FAULTS-style injection, at-most-once server, retrying
/// client. Device counters prove zero duplicate kernel launches.
struct FaultedWorkloads : ::testing::Test {
  FaultedWorkloads()
      : node(cuda::GpuNode::make_a100()),
        server(*node, core::ServerOptions{.at_most_once = true}),
        // Honors an externally supplied CRICKET_FAULTS; defaults to the
        // acceptance spec otherwise.
        environment(env::with_faults(
            env::make_environment(env::EnvKind::kNativeRust),
            FaultSpec::from_env_or("drop=0.05,seed=42").to_string())) {
    workloads::register_sample_kernels(node->registry());
    auto conn = env::connect(environment, node->clock());
    server_thread = server.serve_async(std::move(conn.server));
    core::ClientConfig config;
    config.flavor = environment.flavor;
    config.profile = environment.profile;
    config.retry.enabled = true;
    config.retry.max_attempts = 8;
    config.retry.attempt_timeout = 250ms;
    config.retry.deadline = 30s;
    api = std::make_unique<core::RemoteCudaApi>(std::move(conn.guest),
                                                node->clock(), config);
  }
  ~FaultedWorkloads() override {
    api.reset();
    if (server_thread.joinable()) server_thread.join();
  }

  std::unique_ptr<cuda::GpuNode> node;
  core::CricketServer server;
  env::Environment environment;
  std::unique_ptr<core::RemoteCudaApi> api;
  std::thread server_thread;
};

TEST_F(FaultedWorkloads, MatrixMulCompletesExactlyOnce) {
  workloads::MatrixMulConfig cfg;
  cfg.hA = 64;
  cfg.wA = 64;
  cfg.wB = 64;
  cfg.iterations = 2;
  const auto report =
      workloads::run_matrix_mul(*api, node->clock(), environment.flavor, cfg);
  EXPECT_TRUE(report.verified);
  // Zero duplicate kernel launches: the device saw exactly the launches the
  // workload issued, no matter how many wire-level attempts faults forced.
  EXPECT_EQ(node->device(0).stats().kernels_launched,
            report.kernel_launches);
}

TEST_F(FaultedWorkloads, HistogramCompletesExactlyOnce) {
  workloads::HistogramConfig cfg;
  cfg.data_bytes = 1 << 16;
  cfg.iterations = 2;
  const auto report =
      workloads::run_histogram(*api, node->clock(), environment.flavor, cfg);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(node->device(0).stats().kernels_launched,
            report.kernel_launches);
}

TEST_F(FaultedWorkloads, BandwidthCompletesExactlyOnce) {
  workloads::BandwidthConfig cfg;
  cfg.bytes = 1 << 20;
  cfg.runs = 2;
  const auto report = workloads::run_bandwidth_test(*api, node->clock(),
                                                    environment.flavor, cfg);
  EXPECT_TRUE(report.base.verified);
  EXPECT_EQ(node->device(0).stats().kernels_launched,
            report.base.kernel_launches);
}

}  // namespace
}  // namespace cricket::faultnet
