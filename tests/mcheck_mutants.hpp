// Intentionally broken concurrency fixtures — the mcheck negative tests.
//
// Each mutant is a minimal model body exhibiting one classic bug the
// checker must flag (mcheck_test.cpp asserts that it does), paired with the
// corrected variant the checker must pass. They double as documentation of
// what a model body looks like: everything fresh on the body's stack, all
// threads via mcheck::spawn, join before returning.
//
// These run only under mcheck::explore with its own observer installed, so
// their inverted lock order never pollutes the suite-wide lock graph that
// CRICKET_LOCKCHECK=1 accumulates.
#pragma once

#include "mcheck/explorer.hpp"
#include "sim/annotations.hpp"

namespace cricket::mcheck_test {

/// BUG: classic lock-order inversion (AB vs BA). Some interleavings
/// complete; the one where each thread holds its first lock deadlocks.
inline void lock_order_inverted_body() {
  sim::Mutex a;
  sim::Mutex b;
  mcheck::spawn([&] {
    sim::MutexLock la(a);
    sim::MutexLock lb(b);
  });
  mcheck::spawn([&] {
    sim::MutexLock lb(b);
    sim::MutexLock la(a);
  });
  mcheck::join_children();
}

/// Fix: both threads take the locks in one global order. No schedule can
/// deadlock; the explorer must exhaust the space cleanly.
inline void lock_order_fixed_body() {
  sim::Mutex a;
  sim::Mutex b;
  for (int i = 0; i < 2; ++i) {
    mcheck::spawn([&] {
      sim::MutexLock la(a);
      sim::MutexLock lb(b);
    });
  }
  mcheck::join_children();
}

/// BUG: lost wakeup. The waiter decides to sleep from a *stale* predicate
/// read — it drops the mutex between checking `ready` and calling wait, and
/// never re-checks. If the signaller runs inside that window, its
/// notify_one finds no registered waiter and is lost; the waiter then
/// sleeps forever on a condition that is already true.
inline void lost_wakeup_body() {
  sim::Mutex mu;
  sim::CondVar cv;
  bool ready = false;
  mcheck::spawn([&] {  // waiter
    bool need_wait = false;
    {
      sim::MutexLock lock(mu);
      need_wait = !ready;
    }
    if (need_wait) {
      sim::MutexLock lock(mu);
      cv.wait(mu);  // BUG: no predicate re-check under this lock
    }
  });
  mcheck::spawn([&] {  // signaller
    sim::MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  mcheck::join_children();
}

/// Fix: the canonical while-loop wait — predicate checked and re-checked
/// under the same critical section the wait releases atomically.
inline void lost_wakeup_fixed_body() {
  sim::Mutex mu;
  sim::CondVar cv;
  bool ready = false;
  mcheck::spawn([&] {
    sim::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  });
  mcheck::spawn([&] {
    sim::MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  mcheck::join_children();
}

}  // namespace cricket::mcheck_test
