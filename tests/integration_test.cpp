// Cross-module integration tests: the full stack assembled in the ways a
// deployment would assemble it — real TCP sockets, portmapper discovery,
// minitcp running through virtqueues, and failure injection.
#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "cudart/raii.hpp"
#include "env/environment.hpp"
#include "rpc/portmap.hpp"
#include "sim/rng.hpp"
#include "vnet/minitcp.hpp"
#include "vnet/virtqueue.hpp"
#include "workloads/histogram.hpp"
#include "workloads/kernels.hpp"

namespace cricket {
namespace {

using cuda::Error;

/// The Cricket program number, without dragging the generated header in.
constexpr std::uint32_t kCricketProg = 0x20000C81;

// ------------------------ Cricket over real TCP -----------------------------

TEST(FullStack, CricketOverLoopbackTcp) {
  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  core::CricketServer server(*node);

  rpc::TcpListener listener;
  const auto port = listener.port();
  std::thread accept_thread([&] {
    auto conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    server.serve(*conn);
  });

  {
    core::RemoteCudaApi api(rpc::TcpTransport::connect_loopback(port),
                            node->clock());
    int count = 0;
    ASSERT_EQ(api.get_device_count(count), Error::kSuccess);
    EXPECT_EQ(count, 1);

    cuda::DeviceBuffer buf(api, 1 << 20);
    sim::Xoshiro256ss rng(6);
    std::vector<std::uint8_t> data(1 << 20);
    rng.fill_bytes(data);
    buf.upload(data);
    std::vector<std::uint8_t> out(1 << 20);
    buf.download(out);
    EXPECT_EQ(out, data);
  }
  accept_thread.join();
}

TEST(FullStack, PortmapperDiscoversCricketServer) {
  // The deployment flow of Fig. 2: the GPU node's Cricket server registers
  // with the node's portmapper; a guest discovers the port and connects.
  auto node = cuda::GpuNode::make_a100();
  core::CricketServer cricket_server(*node);

  rpc::Portmapper pm;
  rpc::ServiceRegistry pm_registry;
  pm.register_into(pm_registry);
  rpc::TcpRpcServer pm_server(pm_registry, std::make_unique<rpc::TcpListener>());

  rpc::TcpListener cricket_listener;
  std::thread accept_thread([&] {
    auto conn = cricket_listener.accept();
    if (conn) cricket_server.serve(*conn);
  });
  {
    rpc::PortmapClient reg(
        rpc::TcpTransport::connect_loopback(pm_server.port()));
    ASSERT_TRUE(reg.set({kCricketProg, 1, rpc::kIpProtoTcp,
                         cricket_listener.port()}));
  }

  // Guest side: discover, then talk CUDA.
  rpc::PortmapClient discover(
      rpc::TcpTransport::connect_loopback(pm_server.port()));
  const auto port = discover.getport(kCricketProg, 1);
  ASSERT_NE(port, 0u);
  {
    core::RemoteCudaApi api(rpc::TcpTransport::connect_loopback(
                                static_cast<std::uint16_t>(port)),
                            node->clock());
    cuda::DevPtr p = 0;
    EXPECT_EQ(api.malloc(p, 256), Error::kSuccess);
    EXPECT_EQ(api.free(p), Error::kSuccess);
  }
  accept_thread.join();
}

// ----------------------- minitcp through virtqueues -------------------------

/// A guest TCP endpoint whose frames travel through real virtio rings: the
/// smoltcp-over-virtio data path of RustyHermit, assembled from our pieces.
struct VirtioTcpHarness {
  VirtioTcpHarness()
      : memory(1 << 22), tx_ring(memory, 64), rx_ring(memory, 64) {}

  /// Guest -> host frames go through tx_ring; host -> guest via rx_ring.
  void guest_emit(std::vector<std::uint8_t> frame) {
    const std::span<const std::uint8_t> bufs[1] = {frame};
    const auto head = tx_ring.add_chain(bufs, {});
    ASSERT_TRUE(head.has_value());
    tx_ring.kick(*head);
  }

  std::vector<std::vector<std::uint8_t>> drain_tx() {
    std::vector<std::vector<std::uint8_t>> frames;
    while (auto chain = tx_ring.pop_avail(false)) {
      frames.push_back(tx_ring.gather(*chain));
      tx_ring.push_used(chain->head, 0);
      const auto used = tx_ring.take_used(false);
      tx_ring.recycle(used->first);
    }
    return frames;
  }

  vnet::GuestMemory memory;
  vnet::Virtqueue tx_ring;
  vnet::Virtqueue rx_ring;
};

TEST(FullStack, MiniTcpOverVirtqueues) {
  VirtioTcpHarness rings;

  vnet::TcpConfig guest_cfg;
  guest_cfg.local_ip = 0x0A000002;
  guest_cfg.remote_ip = 0x0A000001;
  guest_cfg.local_port = 40000;
  guest_cfg.remote_port = 50000;
  vnet::TcpConfig host_cfg;
  host_cfg.local_ip = 0x0A000001;
  host_cfg.remote_ip = 0x0A000002;
  host_cfg.local_port = 50000;
  host_cfg.remote_port = 40000;
  host_cfg.initial_seq = 9000;

  std::deque<std::vector<std::uint8_t>> to_guest;
  vnet::TcpConnection guest(guest_cfg, [&](std::vector<std::uint8_t> f) {
    rings.guest_emit(std::move(f));
  });
  vnet::TcpConnection host(host_cfg, [&](std::vector<std::uint8_t> f) {
    to_guest.push_back(std::move(f));
  });

  host.listen();
  sim::Nanos now = 0;
  guest.connect(now);
  // Pump: guest frames cross the TX ring to the host; host frames are
  // delivered directly (the host side needs no ring).
  for (int round = 0; round < 50; ++round) {
    for (auto& frame : rings.drain_tx()) host.on_frame(frame, now);
    while (!to_guest.empty()) {
      guest.on_frame(to_guest.front(), now);
      to_guest.pop_front();
    }
    now += sim::kMicrosecond;
    if (guest.state() == vnet::TcpState::kEstablished &&
        host.state() == vnet::TcpState::kEstablished && round > 2)
      break;
  }
  ASSERT_EQ(guest.state(), vnet::TcpState::kEstablished);

  sim::Xoshiro256ss rng(17);
  std::vector<std::uint8_t> payload(100'000);
  rng.fill_bytes(payload);
  guest.send(payload, now);
  for (int round = 0; round < 200; ++round) {
    for (auto& frame : rings.drain_tx()) host.on_frame(frame, now);
    while (!to_guest.empty()) {
      guest.on_frame(to_guest.front(), now);
      to_guest.pop_front();
    }
    now += sim::kMicrosecond;
  }
  EXPECT_EQ(host.take_received(), payload);
  EXPECT_GT(rings.tx_ring.kicks(), 10u);  // the data really crossed the ring
}

// ------------------------------ failure injection ---------------------------

TEST(FailureInjection, ServerDeathSurfacesAsRpcFailure) {
  auto node = cuda::GpuNode::make_a100();
  auto server = std::make_unique<core::CricketServer>(*node);
  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto thread = server->serve_async(std::move(server_end));

  core::RemoteCudaApi api(std::move(client_end), node->clock());
  cuda::DevPtr p = 0;
  ASSERT_EQ(api.malloc(p, 64), Error::kSuccess);

  // Kill the connection (node drain / crash).
  api.disconnect();
  thread.join();

  EXPECT_EQ(api.free(p), Error::kRpcFailure);
  EXPECT_EQ(api.malloc(p, 64), Error::kRpcFailure);
}

TEST(FailureInjection, GarbageOnTheWireIsDroppedByServer) {
  const auto environment = env::make_environment(env::EnvKind::kUnikraft);
  auto node = cuda::GpuNode::make_a100();
  core::CricketServer server(*node);
  auto conn = env::connect(environment, node->clock());
  // Send bytes that are not a valid RPC record stream, then a clean close.
  const std::vector<std::uint8_t> junk = {0x80, 0x00, 0x00, 0x02, 0xFF, 0xEE};
  conn.guest->send(junk);
  conn.guest->shutdown();
  // The server must terminate the session gracefully, not crash.
  server.serve(*conn.server);
  SUCCEED();
}

TEST(FailureInjection, OomOnServerPropagatesCleanly) {
  auto node = cuda::GpuNode::make_a100();
  core::CricketServer server(*node);
  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto thread = server.serve_async(std::move(server_end));
  {
    core::RemoteCudaApi api(std::move(client_end), node->clock());
    cuda::DevPtr p = 0;
    EXPECT_EQ(api.malloc(p, 1ull << 62), Error::kMemoryAllocation);
    // The session stays usable after the failed call.
    EXPECT_EQ(api.malloc(p, 1024), Error::kSuccess);
    EXPECT_EQ(api.free(p), Error::kSuccess);
  }
  thread.join();
}

// -------------------------- full workload over TCP --------------------------

TEST(FullStack, HistogramOverRealTcp) {
  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  core::CricketServer server(*node);
  rpc::TcpListener listener;
  const auto port = listener.port();
  std::thread accept_thread([&] {
    auto conn = listener.accept();
    if (conn) server.serve(*conn);
  });
  {
    core::RemoteCudaApi api(rpc::TcpTransport::connect_loopback(port),
                            node->clock());
    workloads::HistogramConfig cfg;
    cfg.data_bytes = 1 << 18;
    cfg.iterations = 3;
    const auto report = workloads::run_histogram(
        api, node->clock(),
        env::make_environment(env::EnvKind::kNativeRust).flavor, cfg);
    EXPECT_TRUE(report.verified);
  }
  accept_thread.join();
}

}  // namespace
}  // namespace cricket
