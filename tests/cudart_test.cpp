#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "cudart/api.hpp"
#include "cudart/culibs.hpp"
#include "cudart/error.hpp"
#include "cudart/local_api.hpp"
#include "cudart/raii.hpp"
#include "fatbin/cubin.hpp"
#include "sim/rng.hpp"
#include "xdr/taint.hpp"

namespace cricket::cuda {
namespace {

struct LocalApiFixture : ::testing::Test {
  LocalApiFixture() : node(GpuNode::make_paper_testbed()), api(*node) {}

  std::unique_ptr<GpuNode> node;
  LocalCudaApi api;
};

// ----------------------------- error strings -------------------------------

TEST(Errors, NamesAndStrings) {
  EXPECT_STREQ(error_name(Error::kSuccess), "cudaSuccess");
  EXPECT_STREQ(error_name(Error::kMemoryAllocation),
               "cudaErrorMemoryAllocation");
  EXPECT_STREQ(error_string(Error::kMemoryAllocation), "out of memory");
  EXPECT_STREQ(error_name(Error::kRpcFailure), "cricketErrorRpcFailure");
}

// Regression: the admission-rejected status is a distinct code with its own
// name/string — it must never collapse into kRpcFailure (the connection is
// healthy and the call is retryable after backoff).
TEST(Errors, QuotaExceededIsDistinctFromRpcFailure) {
  EXPECT_NE(Error::kQuotaExceeded, Error::kRpcFailure);
  EXPECT_EQ(static_cast<std::int32_t>(Error::kQuotaExceeded), 998);
  EXPECT_STREQ(error_name(Error::kQuotaExceeded),
               "cricketErrorQuotaExceeded");
  EXPECT_STREQ(error_string(Error::kQuotaExceeded),
               "tenant quota exceeded");
}

TEST(Errors, CheckThrowsWithContext) {
  EXPECT_NO_THROW(check(Error::kSuccess));
  try {
    check(Error::kInvalidValue, "cudaMalloc");
    FAIL();
  } catch (const CudaException& e) {
    EXPECT_EQ(e.code(), Error::kInvalidValue);
    EXPECT_NE(std::string(e.what()).find("cudaMalloc"), std::string::npos);
  }
}

// ------------------------------ device mgmt --------------------------------

TEST_F(LocalApiFixture, DeviceCountMatchesPaperTestbed) {
  int count = 0;
  ASSERT_EQ(api.get_device_count(count), Error::kSuccess);
  EXPECT_EQ(count, 4);  // A100 + 2x T4 + P40
}

TEST_F(LocalApiFixture, SetAndGetDevice) {
  ASSERT_EQ(api.set_device(2), Error::kSuccess);
  int dev = -1;
  ASSERT_EQ(api.get_device(dev), Error::kSuccess);
  EXPECT_EQ(dev, 2);
  EXPECT_EQ(api.set_device(99), Error::kInvalidDevice);
  EXPECT_EQ(api.set_device(-1), Error::kInvalidDevice);
}

TEST_F(LocalApiFixture, DevicePropertiesReportTestbedGpus) {
  DeviceInfo info;
  ASSERT_EQ(api.get_device_properties(info, 0), Error::kSuccess);
  EXPECT_EQ(info.name, "NVIDIA A100-SXM4-40GB");
  EXPECT_EQ(info.sm_arch, 80u);
  ASSERT_EQ(api.get_device_properties(info, 3), Error::kSuccess);
  EXPECT_EQ(info.name, "NVIDIA P40");
  EXPECT_EQ(api.get_device_properties(info, 4), Error::kInvalidDevice);
}

TEST_F(LocalApiFixture, ApiCallsAdvanceVirtualClock) {
  const auto t0 = node->clock().now();
  int count;
  (void)api.get_device_count(count);
  EXPECT_GT(node->clock().now(), t0);
}

// -------------------------------- memory -----------------------------------

TEST_F(LocalApiFixture, MallocFreeRoundTrip) {
  DevPtr p = 0;
  ASSERT_EQ(api.malloc(p, 4096), Error::kSuccess);
  EXPECT_NE(p, 0u);
  EXPECT_EQ(api.free(p), Error::kSuccess);
  EXPECT_EQ(api.free(p), Error::kInvalidDevicePointer);  // double free
}

TEST_F(LocalApiFixture, MallocZeroIsInvalid) {
  DevPtr p = 0;
  EXPECT_EQ(api.malloc(p, 0), Error::kInvalidValue);
}

TEST_F(LocalApiFixture, MallocBeyondCapacityIsMemoryAllocation) {
  DevPtr p = 0;
  EXPECT_EQ(api.malloc(p, 1ull << 60), Error::kMemoryAllocation);
}

TEST_F(LocalApiFixture, MemcpyRoundTripAndMemset) {
  DevPtr p = 0;
  ASSERT_EQ(api.malloc(p, 256), Error::kSuccess);
  std::vector<std::uint8_t> in(256);
  std::iota(in.begin(), in.end(), std::uint8_t{1});
  ASSERT_EQ(api.memcpy_h2d(p, in), Error::kSuccess);
  std::vector<std::uint8_t> out(256);
  ASSERT_EQ(api.memcpy_d2h(out, p), Error::kSuccess);
  EXPECT_EQ(out, in);
  ASSERT_EQ(api.memset(p, 0, 256), Error::kSuccess);
  ASSERT_EQ(api.memcpy_d2h(out, p), Error::kSuccess);
  for (auto b : out) EXPECT_EQ(b, 0);
  (void)api.free(p);
}

// ------------------------------- wiretaint ---------------------------------
// The Untrusted overloads route through the validated gpusim seams: hostile
// wire-derived sizes come back as in-band CUDA errors, never UB, and
// in-bound ones behave exactly like the trusted entry points.

TEST_F(LocalApiFixture, UntrustedOverloadsRefuseHostileSizesInBand) {
  DevPtr p = 0;
  EXPECT_EQ(api.malloc(p, xdr::Untrusted<std::uint64_t>(~0ull)),
            Error::kMemoryAllocation);
  EXPECT_EQ(api.malloc(p, xdr::Untrusted<std::uint64_t>(0)),
            Error::kInvalidValue);
  ASSERT_EQ(api.malloc(p, xdr::Untrusted<std::uint64_t>(256)),
            Error::kSuccess);

  EXPECT_EQ(api.memset(p, 0xFF, xdr::Untrusted<std::uint64_t>(~0ull - 8)),
            Error::kInvalidDevicePointer);
  EXPECT_EQ(api.memset(p, 0x7F, xdr::Untrusted<std::uint64_t>(256)),
            Error::kSuccess);
  std::vector<std::uint8_t> host(256);
  ASSERT_EQ(api.memcpy_d2h(host, p), Error::kSuccess);
  for (auto byte : host) EXPECT_EQ(byte, 0x7F);

  DevPtr q = 0;
  ASSERT_EQ(api.malloc(q, xdr::Untrusted<std::uint64_t>(256)),
            Error::kSuccess);
  EXPECT_EQ(api.memcpy_d2d(q, p, xdr::Untrusted<std::uint64_t>(~0ull - 16)),
            Error::kInvalidDevicePointer);
  ASSERT_EQ(api.memcpy_d2d(q, p, xdr::Untrusted<std::uint64_t>(256)),
            Error::kSuccess);
  ASSERT_EQ(api.memcpy_d2h(host, q), Error::kSuccess);
  for (auto byte : host) EXPECT_EQ(byte, 0x7F);

  EXPECT_EQ(api.free(p), Error::kSuccess);
  EXPECT_EQ(api.free(q), Error::kSuccess);
}

TEST_F(LocalApiFixture, DevicesHaveIsolatedMemory) {
  DevPtr p0 = 0;
  ASSERT_EQ(api.malloc(p0, 64), Error::kSuccess);
  ASSERT_EQ(api.set_device(1), Error::kSuccess);
  // p0 belongs to device 0; device 1 cannot free it.
  EXPECT_EQ(api.free(p0), Error::kInvalidDevicePointer);
  ASSERT_EQ(api.set_device(0), Error::kSuccess);
  EXPECT_EQ(api.free(p0), Error::kSuccess);
}

// ----------------------------- RAII wrappers -------------------------------

TEST_F(LocalApiFixture, DeviceBufferFreesOnScopeExit) {
  const auto before = node->device(0).memory().allocation_count();
  {
    DeviceBuffer buf(api, 1024);
    EXPECT_TRUE(buf);
    EXPECT_EQ(node->device(0).memory().allocation_count(), before + 1);
  }
  EXPECT_EQ(node->device(0).memory().allocation_count(), before);
}

TEST_F(LocalApiFixture, DeviceBufferMoveTransfersOwnership) {
  DeviceBuffer a(api, 128);
  const DevPtr ptr = a.get();
  DeviceBuffer b = std::move(a);
  EXPECT_EQ(b.get(), ptr);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — testing moved-from state
}

TEST_F(LocalApiFixture, DeviceBufferTypedTransfer) {
  DeviceBuffer buf(api, 100 * sizeof(float));
  std::vector<float> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<float>(i) * 0.5f;
  buf.upload_values<float>(xs);
  EXPECT_EQ(buf.download_values<float>(100), xs);
}

TEST_F(LocalApiFixture, StreamAndEventRaii) {
  Stream s(api);
  Event start(api), stop(api);
  start.record(s.id());
  stop.record(s.id());
  stop.synchronize();
  EXPECT_GE(stop.elapsed_ms_since(start), 0.0f);
}

TEST_F(LocalApiFixture, ParamPackerAlignsLikeCubinMetadata) {
  ParamPacker p;
  p.add_ptr(DevPtr{0x1000}).add(std::int32_t{7}).add_ptr(DevPtr{0x2000});
  // 8 (ptr) + 4 (int) + 4 (pad) + 8 (ptr) = 24.
  EXPECT_EQ(p.bytes().size(), 24u);
  DevPtr second = 0;
  std::memcpy(&second, p.bytes().data() + 16, 8);
  EXPECT_EQ(second, DevPtr{0x2000});
}

// ----------------------------- module + launch -----------------------------

fatbin::CubinImage scale_image() {
  fatbin::CubinImage img;
  img.sm_arch = 61;  // runs on every testbed GPU
  fatbin::KernelDescriptor k;
  k.name = "scale_f32";
  k.params = {{.size = 8, .align = 8, .is_pointer = true},
              {.size = 4, .align = 4, .is_pointer = false},
              {.size = 4, .align = 4, .is_pointer = false}};
  img.kernels.push_back(k);
  img.code = fatbin::make_pseudo_isa(64, 3);
  return img;
}

void register_scale(gpusim::KernelRegistry& reg) {
  reg.register_kernel("scale_f32", [](gpusim::LaunchContext& ctx) {
    const auto data = ctx.ptr_param(0);
    const float f = ctx.param<float>(1);
    const auto n = ctx.param<std::uint32_t>(2);
    if (!ctx.timing_only()) {
      auto xs = ctx.mem_as<float>(data, n);
      for (auto& x : xs) x *= f;
    }
    ctx.charge_flops(n);
    ctx.charge_dram_bytes(8.0 * n);
  });
}

TEST_F(LocalApiFixture, ModuleLoadLaunchComputes) {
  register_scale(node->registry());
  Module mod(api, fatbin::cubin_serialize(scale_image()));
  const FuncId fn = mod.function("scale_f32");

  DeviceBuffer buf(api, 16 * sizeof(float));
  std::vector<float> xs(16, 2.0f);
  buf.upload_values<float>(xs);

  ParamPacker params;
  params.add_ptr(buf).add(3.0f).add(std::uint32_t{16});
  ASSERT_EQ(api.launch_kernel(fn, Dim3{1}, Dim3{16}, 0, gpusim::kDefaultStream,
                              params.bytes()),
            Error::kSuccess);
  ASSERT_EQ(api.device_synchronize(), Error::kSuccess);
  for (float v : buf.download_values<float>(16)) EXPECT_FLOAT_EQ(v, 6.0f);
}

TEST_F(LocalApiFixture, TimingOnlySkipsMathButChargesTime) {
  register_scale(node->registry());
  Module mod(api, fatbin::cubin_serialize(scale_image()));
  const FuncId fn = mod.function("scale_f32");
  DeviceBuffer buf(api, 16 * sizeof(float));
  buf.upload_values<float>(std::vector<float>(16, 2.0f));

  node->device(0).set_timing_only(true);
  ParamPacker params;
  params.add_ptr(buf).add(3.0f).add(std::uint32_t{16});
  const auto t0 = node->clock().now();
  ASSERT_EQ(api.launch_kernel(fn, Dim3{1}, Dim3{16}, 0, gpusim::kDefaultStream,
                              params.bytes()),
            Error::kSuccess);
  ASSERT_EQ(api.device_synchronize(), Error::kSuccess);
  node->device(0).set_timing_only(false);

  EXPECT_GT(node->clock().now(), t0);  // time charged
  for (float v : buf.download_values<float>(16))
    EXPECT_FLOAT_EQ(v, 2.0f);  // math skipped
}

TEST_F(LocalApiFixture, BadImageIsInvalidKernelImage) {
  ModuleId mod = 0;
  const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
  EXPECT_EQ(api.module_load(mod, garbage), Error::kInvalidKernelImage);
}

TEST_F(LocalApiFixture, MissingKernelIsResourceError) {
  Module mod(api, fatbin::cubin_serialize(scale_image()));
  FuncId fn = 0;
  EXPECT_EQ(api.module_get_function(fn, mod.id(), "nope"),
            Error::kInvalidResourceHandle);
}

// --------------------------------- culibs ----------------------------------

// Column-major helpers for reference math.
std::vector<float> random_matrix(int rows, int cols, std::uint64_t seed) {
  sim::Xoshiro256ss rng(seed);
  std::vector<float> m(static_cast<std::size_t>(rows) *
                       static_cast<std::size_t>(cols));
  for (auto& v : m) v = rng.next_float() * 2.0f - 1.0f;
  return m;
}

std::vector<float> reference_gemm(int m, int n, int k,
                                  const std::vector<float>& a,
                                  const std::vector<float>& b) {
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  for (int j = 0; j < n; ++j)
    for (int l = 0; l < k; ++l)
      for (int i = 0; i < m; ++i)
        c[static_cast<std::size_t>(j) * m + i] +=
            a[static_cast<std::size_t>(l) * m + i] *
            b[static_cast<std::size_t>(j) * k + l];
  return c;
}

TEST_F(LocalApiFixture, SgemmMatchesReference) {
  const int m = 33, n = 17, k = 25;
  const auto A = random_matrix(m, k, 1);
  const auto B = random_matrix(k, n, 2);
  DeviceBuffer da(api, A.size() * 4), db(api, B.size() * 4),
      dc(api, static_cast<std::size_t>(m) * n * 4);
  da.upload_values<float>(A);
  db.upload_values<float>(B);

  ASSERT_EQ(api.blas_sgemm(m, n, k, 1.0f, da.get(), m, db.get(), k, 0.0f,
                           dc.get(), m),
            Error::kSuccess);
  const auto C = dc.download_values<float>(static_cast<std::size_t>(m) * n);
  const auto ref = reference_gemm(m, n, k, A, B);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(C[i], ref[i], 1e-3f) << "at " << i;
}

TEST_F(LocalApiFixture, SgemmAlphaBetaAndLeadingDims) {
  // 2x2 in a 4-row leading dimension, alpha=2, beta=0.5.
  const int lda = 4;
  std::vector<float> A = {1, 2, 0, 0, 3, 4, 0, 0};  // col-major 2x2 in ld 4
  std::vector<float> B = {5, 6, 0, 0, 7, 8, 0, 0};
  std::vector<float> C = {10, 20, 0, 0, 30, 40, 0, 0};
  DeviceBuffer da(api, A.size() * 4), db(api, B.size() * 4),
      dc(api, C.size() * 4);
  da.upload_values<float>(A);
  db.upload_values<float>(B);
  dc.upload_values<float>(C);
  ASSERT_EQ(api.blas_sgemm(2, 2, 2, 2.0f, da.get(), lda, db.get(), lda, 0.5f,
                           dc.get(), lda),
            Error::kSuccess);
  const auto out = dc.download_values<float>(8);
  // A*B = [[1*5+3*6, 1*7+3*8],[2*5+4*6, 2*7+4*8]] = [[23,31],[34,46]]
  EXPECT_FLOAT_EQ(out[0], 2 * 23 + 0.5f * 10);
  EXPECT_FLOAT_EQ(out[1], 2 * 34 + 0.5f * 20);
  EXPECT_FLOAT_EQ(out[4], 2 * 31 + 0.5f * 30);
  EXPECT_FLOAT_EQ(out[5], 2 * 46 + 0.5f * 40);
}

TEST_F(LocalApiFixture, SgemmRejectsBadDims) {
  EXPECT_EQ(api.blas_sgemm(-1, 2, 2, 1.0f, 0, 2, 0, 2, 0.0f, 0, 2),
            Error::kInvalidValue);
  EXPECT_EQ(api.blas_sgemm(4, 2, 2, 1.0f, 0, 2 /* lda < m */, 0, 2, 0.0f, 0, 4),
            Error::kInvalidValue);
}

TEST_F(LocalApiFixture, SgemmRejectsBadPointers) {
  EXPECT_EQ(api.blas_sgemm(2, 2, 2, 1.0f, 0xDEAD, 2, 0xBEEF, 2, 0.0f, 0xF00D,
                           2),
            Error::kInvalidDevicePointer);
}

TEST_F(LocalApiFixture, LuSolveRecoversKnownSolution) {
  // Solve A x = b for a random well-conditioned A and known x.
  const int n = 64;
  auto A = random_matrix(n, n, 3);
  for (int i = 0; i < n; ++i)
    A[static_cast<std::size_t>(i) * n + i] += static_cast<float>(n);  // diagonal dominance
  const auto x_true = random_matrix(n, 1, 4);
  // b = A * x_true.
  std::vector<float> b(static_cast<std::size_t>(n), 0.0f);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] +=
          A[static_cast<std::size_t>(j) * n + i] * x_true[static_cast<std::size_t>(j)];

  DeviceBuffer dA(api, A.size() * 4), dB(api, b.size() * 4),
      dPiv(api, static_cast<std::size_t>(n) * 4), dInfo(api, 4);
  dA.upload_values<float>(A);
  dB.upload_values<float>(b);

  ASSERT_EQ(api.solver_sgetrf(n, dA.get(), n, dPiv.get(), dInfo.get()),
            Error::kSuccess);
  EXPECT_EQ(dInfo.download_values<std::int32_t>(1)[0], 0);
  ASSERT_EQ(api.solver_sgetrs(n, 1, dA.get(), n, dPiv.get(), dB.get(), n,
                              dInfo.get()),
            Error::kSuccess);

  const auto x = dB.download_values<float>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 2e-3f);
}

TEST_F(LocalApiFixture, LuRequiresPivoting) {
  // A matrix with a zero in the (0,0) position factors correctly only with
  // row pivoting.
  std::vector<float> A = {0, 1, 1, 0};  // col-major [[0,1],[1,0]]
  std::vector<float> b = {3, 7};        // solution x = [7, 3]
  DeviceBuffer dA(api, 16), dB(api, 8), dPiv(api, 8), dInfo(api, 4);
  dA.upload_values<float>(A);
  dB.upload_values<float>(b);
  ASSERT_EQ(api.solver_sgetrf(2, dA.get(), 2, dPiv.get(), dInfo.get()),
            Error::kSuccess);
  EXPECT_EQ(dInfo.download_values<std::int32_t>(1)[0], 0);
  ASSERT_EQ(api.solver_sgetrs(2, 1, dA.get(), 2, dPiv.get(), dB.get(), 2,
                              dInfo.get()),
            Error::kSuccess);
  const auto x = dB.download_values<float>(2);
  EXPECT_FLOAT_EQ(x[0], 7.0f);
  EXPECT_FLOAT_EQ(x[1], 3.0f);
}

TEST_F(LocalApiFixture, SingularMatrixSetsInfo) {
  std::vector<float> A(16, 1.0f);  // rank-1 4x4
  DeviceBuffer dA(api, 64), dPiv(api, 16), dInfo(api, 4);
  dA.upload_values<float>(A);
  ASSERT_EQ(api.solver_sgetrf(4, dA.get(), 4, dPiv.get(), dInfo.get()),
            Error::kSuccess);
  EXPECT_GT(dInfo.download_values<std::int32_t>(1)[0], 0);
}

TEST_F(LocalApiFixture, CulibsChargeDeviceTime) {
  const int n = 128;
  DeviceBuffer dA(api, static_cast<std::size_t>(n) * n * 4),
      dPiv(api, static_cast<std::size_t>(n) * 4), dInfo(api, 4);
  dA.upload_values<float>(random_matrix(n, n, 5));
  const auto t0 = node->clock().now();
  ASSERT_EQ(api.solver_sgetrf(n, dA.get(), n, dPiv.get(), dInfo.get()),
            Error::kSuccess);
  ASSERT_EQ(api.device_synchronize(), Error::kSuccess);
  EXPECT_GT(node->clock().now(), t0);
  EXPECT_GT(node->device(0).stats().kernels_launched, 0u);
}

// Property sweep: LU solve across sizes, always recovering the solution of a
// diagonally dominant system.
class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, SolvesDiagonallyDominantSystems) {
  auto node = GpuNode::make_a100();
  LocalCudaApi api(*node);
  const int n = GetParam();
  auto A = random_matrix(n, n, static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i)
    A[static_cast<std::size_t>(i) * n + i] += static_cast<float>(2 * n);
  const auto x_true = random_matrix(n, 1, static_cast<std::uint64_t>(n) + 99);
  std::vector<float> b(static_cast<std::size_t>(n), 0.0f);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] +=
          A[static_cast<std::size_t>(j) * n + i] *
          x_true[static_cast<std::size_t>(j)];

  DeviceBuffer dA(api, A.size() * 4), dB(api, b.size() * 4),
      dPiv(api, static_cast<std::size_t>(n) * 4), dInfo(api, 4);
  dA.upload_values<float>(A);
  dB.upload_values<float>(b);
  ASSERT_EQ(api.solver_sgetrf(n, dA.get(), n, dPiv.get(), dInfo.get()),
            Error::kSuccess);
  ASSERT_EQ(api.solver_sgetrs(n, 1, dA.get(), n, dPiv.get(), dB.get(), n,
                              dInfo.get()),
            Error::kSuccess);
  const auto x = dB.download_values<float>(static_cast<std::size_t>(n));
  double max_err = 0;
  for (int i = 0; i < n; ++i)
    max_err = std::max(max_err,
                       std::fabs(static_cast<double>(
                           x[static_cast<std::size_t>(i)] -
                           x_true[static_cast<std::size_t>(i)])));
  EXPECT_LT(max_err, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty,
                         ::testing::Values(1, 2, 3, 8, 31, 100, 257));

}  // namespace
}  // namespace cricket::cuda

// ---------------------- extended culibs & stream API ------------------------
// (Appended suite: sgemv/saxpy/snrm2, Cholesky, async copies, wait-event.)

namespace cricket::cuda {
namespace {

struct ExtendedApiFixture : ::testing::Test {
  ExtendedApiFixture() : node(GpuNode::make_a100()), api(*node) {}
  std::unique_ptr<GpuNode> node;
  LocalCudaApi api;
};

TEST_F(ExtendedApiFixture, SgemvMatchesReference) {
  const int m = 13, n = 7;
  const auto A = random_matrix(m, n, 31);
  const auto x = random_matrix(n, 1, 32);
  std::vector<float> y(static_cast<std::size_t>(m), 1.0f);
  DeviceBuffer dA(api, A.size() * 4), dx(api, x.size() * 4),
      dy(api, y.size() * 4);
  dA.upload_values<float>(A);
  dx.upload_values<float>(x);
  dy.upload_values<float>(y);
  ASSERT_EQ(api.blas_sgemv(m, n, 2.0f, dA.get(), m, dx.get(), 0.5f, dy.get()),
            Error::kSuccess);
  const auto out = dy.download_values<float>(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    float ref = 0.5f * 1.0f;
    for (int j = 0; j < n; ++j)
      ref += 2.0f * A[static_cast<std::size_t>(j) * m + i] *
             x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(out[static_cast<std::size_t>(i)], ref, 1e-4f);
  }
}

TEST_F(ExtendedApiFixture, SgemvRejectsBadDims) {
  EXPECT_EQ(api.blas_sgemv(-1, 2, 1.0f, 0, 1, 0, 0.0f, 0),
            Error::kInvalidValue);
  EXPECT_EQ(api.blas_sgemv(4, 2, 1.0f, 0, 2 /* < m */, 0, 0.0f, 0),
            Error::kInvalidValue);
}

TEST_F(ExtendedApiFixture, SaxpyComputes) {
  const int n = 100;
  std::vector<float> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = static_cast<float>(i);
    y[static_cast<std::size_t>(i)] = 1.0f;
  }
  DeviceBuffer dx(api, x.size() * 4), dy(api, y.size() * 4);
  dx.upload_values<float>(x);
  dy.upload_values<float>(y);
  ASSERT_EQ(api.blas_saxpy(n, 3.0f, dx.get(), dy.get()), Error::kSuccess);
  const auto out = dy.download_values<float>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)],
                    1.0f + 3.0f * static_cast<float>(i));
}

TEST_F(ExtendedApiFixture, Snrm2MatchesReference) {
  std::vector<float> x = {3.0f, 4.0f};  // norm 5
  DeviceBuffer dx(api, 8), dr(api, 4);
  dx.upload_values<float>(x);
  ASSERT_EQ(api.blas_snrm2(2, dx.get(), dr.get()), Error::kSuccess);
  EXPECT_FLOAT_EQ(dr.download_values<float>(1)[0], 5.0f);
}

TEST_F(ExtendedApiFixture, Snrm2ZeroLength) {
  DeviceBuffer dr(api, 4);
  ASSERT_EQ(api.blas_snrm2(0, 0, dr.get()), Error::kSuccess);
  EXPECT_FLOAT_EQ(dr.download_values<float>(1)[0], 0.0f);
}

/// Builds an SPD matrix A = M^T M + n*I (column-major).
std::vector<float> spd_matrix(int n, std::uint64_t seed) {
  const auto M = random_matrix(n, n, seed);
  std::vector<float> A(static_cast<std::size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      float sum = i == j ? static_cast<float>(n) : 0.0f;
      for (int k = 0; k < n; ++k)
        sum += M[static_cast<std::size_t>(i) * n + k] *
               M[static_cast<std::size_t>(j) * n + k];
      A[static_cast<std::size_t>(j) * n + i] = sum;
    }
  return A;
}

TEST_F(ExtendedApiFixture, CholeskySolveRecoversSolution) {
  const int n = 48;
  const auto A = spd_matrix(n, 41);
  const auto x_true = random_matrix(n, 1, 42);
  std::vector<float> b(static_cast<std::size_t>(n), 0.0f);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] +=
          A[static_cast<std::size_t>(j) * n + i] *
          x_true[static_cast<std::size_t>(j)];

  DeviceBuffer dA(api, A.size() * 4), dB(api, b.size() * 4), dInfo(api, 4);
  dA.upload_values<float>(A);
  dB.upload_values<float>(b);
  ASSERT_EQ(api.solver_spotrf(n, dA.get(), n, dInfo.get()), Error::kSuccess);
  EXPECT_EQ(dInfo.download_values<std::int32_t>(1)[0], 0);
  ASSERT_EQ(api.solver_spotrs(n, 1, dA.get(), n, dB.get(), n, dInfo.get()),
            Error::kSuccess);
  const auto x = dB.download_values<float>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 5e-2f);
}

TEST_F(ExtendedApiFixture, CholeskyDetectsNonSpd) {
  // A matrix with a negative eigenvalue direction.
  std::vector<float> A = {1, 2, 2, 1};  // eigenvalues 3, -1
  DeviceBuffer dA(api, 16), dInfo(api, 4);
  dA.upload_values<float>(A);
  ASSERT_EQ(api.solver_spotrf(2, dA.get(), 2, dInfo.get()), Error::kSuccess);
  EXPECT_GT(dInfo.download_values<std::int32_t>(1)[0], 0);
}

TEST_F(ExtendedApiFixture, AsyncCopiesChargeStreamNotHost) {
  StreamId s = 0;
  ASSERT_EQ(api.stream_create(s), Error::kSuccess);
  DeviceBuffer buf(api, 1 << 20);
  std::vector<std::uint8_t> data(1 << 20, 0x42);

  const auto host_before = node->clock().now();
  ASSERT_EQ(api.memcpy_h2d_async(buf.get(), data, s), Error::kSuccess);
  const auto host_after = node->clock().now();
  // Async submit returns without paying the PCIe time on the host clock...
  EXPECT_LT(host_after - host_before, 50 * sim::kMicrosecond);
  // ...but synchronizing the stream does.
  ASSERT_EQ(api.stream_synchronize(s), Error::kSuccess);
  EXPECT_GT(node->clock().now() - host_after, 10 * sim::kMicrosecond);

  std::vector<std::uint8_t> out(1 << 20);
  ASSERT_EQ(api.memcpy_d2h_async(out, buf.get(), s), Error::kSuccess);
  ASSERT_EQ(api.stream_synchronize(s), Error::kSuccess);
  EXPECT_EQ(out, data);
  (void)api.stream_destroy(s);
}

TEST_F(ExtendedApiFixture, StreamWaitEventOrdersAcrossStreams) {
  register_scale(node->registry());
  Module mod(api, fatbin::cubin_serialize(scale_image()));
  const FuncId fn = mod.function("scale_f32");
  DeviceBuffer buf(api, 1 << 22);

  StreamId s1 = 0, s2 = 0;
  ASSERT_EQ(api.stream_create(s1), Error::kSuccess);
  ASSERT_EQ(api.stream_create(s2), Error::kSuccess);
  EventId e = 0;
  ASSERT_EQ(api.event_create(e), Error::kSuccess);

  // Big kernel on s1, record event, make s2 wait on it.
  ParamPacker params;
  params.add_ptr(buf.get()).add(1.0f).add(std::uint32_t{1 << 20});
  ASSERT_EQ(api.launch_kernel(fn, Dim3{1}, Dim3{256}, 0, s1, params.bytes()),
            Error::kSuccess);
  ASSERT_EQ(api.event_record(e, s1), Error::kSuccess);
  ASSERT_EQ(api.stream_wait_event(s2, e), Error::kSuccess);

  // s2's completion time must now be at least s1's event timestamp.
  const auto t_now = node->clock().now();
  ASSERT_EQ(api.stream_synchronize(s2), Error::kSuccess);
  EXPECT_GT(node->clock().now(), t_now);  // had to wait for s1's kernel
  (void)api.event_destroy(e);
  (void)api.stream_destroy(s1);
  (void)api.stream_destroy(s2);
}

TEST_F(ExtendedApiFixture, StreamWaitEventUnknownHandles) {
  EXPECT_EQ(api.stream_wait_event(gpusim::kDefaultStream, 999),
            Error::kInvalidResourceHandle);
  EXPECT_EQ(api.stream_wait_event(999, 999), Error::kInvalidResourceHandle);
}

}  // namespace
}  // namespace cricket::cuda
