// Linked into every test executable (see cricket_add_test): when
// CRICKET_LOCKCHECK=1 is set, installs a process-lifetime LockGraph before
// main() and finalizes it at exit — dumping the held-before edge set to
// $CRICKET_LOCKCHECK_DIR/lockgraph-<pid>.json for the suite-wide merge
// (tools/lock_graph.py) and failing the process with exit code 86 if this
// process alone already exhibits a lock-order cycle or a self-deadlock.
//
// A plain TU with a static initializer (not a library): a static library
// member with no referenced symbols would be dropped by the linker and the
// observer would silently never install.

#include <cstdlib>
#include <iostream>

#include "mcheck/lock_graph.hpp"

namespace {

struct EnvLockcheck {
  cricket::mcheck::LockGraph* graph;
  EnvLockcheck() : graph(cricket::mcheck::LockGraph::install_from_env()) {
    if (graph != nullptr) std::atexit(&EnvLockcheck::finalize);
  }
  static void finalize();
};

EnvLockcheck g_env_lockcheck;

void EnvLockcheck::finalize() {
  cricket::mcheck::LockGraph* graph = g_env_lockcheck.graph;
  if (graph == nullptr) return;
  // Stop observing before reporting: gtest/stdlib teardown after this
  // handler may still lock, and the report must not mutate mid-dump.
  graph->uninstall();
  if (graph->finalize(std::cerr) > 0) {
    std::cerr << "[lockcheck] failing process: lock-order hazard detected\n";
    std::_Exit(86);
  }
}

}  // namespace
