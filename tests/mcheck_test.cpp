// mcheck: the checker checking itself, then checking the product.
//
// Three layers:
//   1. LockGraph unit tests — edges, cycles, self-deadlocks, JSON dump.
//   2. Explorer self-checks against the intentionally broken fixtures in
//      mcheck_mutants.hpp (it must flag both mutants and pass both fixes),
//      plus determinism and seed-replay guarantees.
//   3. Model tests over five production concurrency cores: tenancy token
//      bucket, obs seqlock ring, fair-share scheduler vtime accounting, DRC
//      condvar parking, and the rpcflow call batcher.
//
// These tests install their own observers (LockGraph::install saves and
// restores, explore() swaps for its run), so the mutants' inverted lock
// orders never leak into the suite-wide CRICKET_LOCKCHECK graph.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cricket/scheduler.hpp"
#include "mcheck/explorer.hpp"
#include "mcheck/lock_graph.hpp"
#include "mcheck_mutants.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/server.hpp"
#include "rpcflow/batcher.hpp"
#include "sim/annotations.hpp"
#include "sim/sim_clock.hpp"
#include "tenancy/token_bucket.hpp"

namespace cricket {
namespace {

using mcheck::ExploreOptions;
using mcheck::ExploreResult;
using mcheck::explore;
using mcheck::LockGraph;
using mcheck::model_assert;

// ---------------------------------------------------------------------------
// 1. LockGraph

TEST(LockGraph, CleanOrderHasNoCycles) {
  LockGraph graph;
  graph.install();
  sim::Mutex a;
  sim::Mutex b;
  {
    sim::MutexLock la(a);
    sim::MutexLock lb(b);
  }
  {
    sim::MutexLock la(a);
    sim::MutexLock lb(b);
  }
  graph.uninstall();
  EXPECT_EQ(graph.cycles().size(), 0u);
  EXPECT_EQ(graph.self_deadlocks(), 0u);
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].count, 2u);
  EXPECT_TRUE(graph.report().empty());
}

TEST(LockGraph, InversionProducesCycleWithDiagnostics) {
  LockGraph graph;
  sim::Mutex a;
  sim::Mutex b;
  // Two call paths ordering the classes differently — exactly the latent
  // hazard lockdep-style analysis exists to catch: no deadlock ever
  // manifests, the cycle is still there. Fed through the observer hooks
  // directly rather than by really locking in inverted orders, so TSan's
  // own lock-order detector does not report the intentional inversion as a
  // finding of its own.
  const auto here = std::source_location::current();
  graph.lock_acquired(a, here);
  graph.lock_acquired(b, here);
  graph.unlocked(b, here);
  graph.unlocked(a, here);
  graph.lock_acquired(b, here);
  graph.lock_acquired(a, here);
  graph.unlocked(a, here);
  graph.unlocked(b, here);
  const auto cycles = graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].nodes.size(), 2u);
  ASSERT_EQ(cycles[0].edges.size(), 2u);
  const std::string report = graph.report();
  EXPECT_NE(report.find("lock-order cycle"), std::string::npos);
  // Diagnostics carry acquisition sites in this file.
  EXPECT_NE(report.find("mcheck_test.cpp"), std::string::npos);
}

TEST(LockGraph, SelfRelockIsReportedAsSelfDeadlock) {
  LockGraph graph;
  graph.install();
  sim::Mutex mu;
  mu.lock();
  // Feed the re-lock attempt through the observer hook directly: actually
  // calling mu.lock() again would hard-block this thread on the native
  // mutex, which is precisely why the graph flags it.
  graph.lock_pending(mu, std::source_location::current());
  mu.unlock();
  graph.uninstall();
  EXPECT_EQ(graph.self_deadlocks(), 1u);
  EXPECT_NE(graph.report().find("self-deadlock"), std::string::npos);
}

TEST(LockGraph, CondVarReacquireRecordsOrdering) {
  LockGraph graph;
  graph.install();
  sim::Mutex outer;
  sim::Mutex inner;
  sim::CondVar cv;
  {
    sim::MutexLock lo(outer);
    sim::MutexLock li(inner);
    // Timed wait that must expire: the re-acquire after the wait is an
    // ordering event (outer held across it) like the initial acquire.
    EXPECT_EQ(cv.wait_for(inner, std::chrono::microseconds(50)),
              std::cv_status::timeout);
  }
  graph.uninstall();
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_GE(graph.edges()[0].count, 2u);  // initial acquire + cv re-acquire
  EXPECT_EQ(graph.cycles().size(), 0u);
}

TEST(LockGraph, DumpJsonWritesMergeableEdges) {
  LockGraph graph;
  graph.install();
  sim::Mutex a;
  sim::Mutex b;
  {
    sim::MutexLock la(a);
    sim::MutexLock lb(b);
  }
  graph.uninstall();
  const std::string path = ::testing::TempDir() + "lockgraph-test.json";
  ASSERT_TRUE(graph.dump_json(path));
  std::ifstream in(path);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"self_deadlocks\":0"), std::string::npos);
  // Lock classes are instance *construction* sites ("batcher.hpp:87"), so
  // per-process dumps merge on identities stable across the whole suite.
  EXPECT_NE(json.find("mcheck_test.cpp"), std::string::npos) << json;
  std::remove(path.c_str());
}

TEST(LockGraph, InstallRestoresPreviousObserver) {
  // Under CRICKET_LOCKCHECK=1 the suite-wide graph already occupies the
  // seam; this test must hand it back, not assume an empty seam.
  sim::SyncObserver* const ambient = sim::sync_observer();
  LockGraph outer_graph;
  outer_graph.install();
  {
    LockGraph inner;
    inner.install();
    EXPECT_EQ(sim::sync_observer(), &inner);
    inner.uninstall();
  }
  EXPECT_EQ(sim::sync_observer(), &outer_graph);
  outer_graph.uninstall();
  EXPECT_EQ(sim::sync_observer(), ambient);
}

// ---------------------------------------------------------------------------
// 2. Explorer self-checks on the mutants

TEST(Explorer, FindsLockOrderInversionDeadlock) {
  const ExploreResult r =
      explore(ExploreOptions{}, mcheck_test::lock_order_inverted_body);
  ASSERT_TRUE(r.failed);
  EXPECT_TRUE(r.deadlock);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos);
  EXPECT_NE(r.failure.find("lock"), std::string::npos);
  EXPECT_FALSE(r.trace.empty());
}

TEST(Explorer, ReplayReproducesTheDeadlock) {
  const ExploreResult first =
      explore(ExploreOptions{}, mcheck_test::lock_order_inverted_body);
  ASSERT_TRUE(first.failed);
  ExploreOptions replay;
  replay.replay = first.trace;
  const ExploreResult again =
      explore(replay, mcheck_test::lock_order_inverted_body);
  EXPECT_TRUE(again.failed);
  EXPECT_TRUE(again.deadlock);
  EXPECT_EQ(again.schedules, 1u) << "replay must run exactly one schedule";
  EXPECT_EQ(again.trace, first.trace);
}

TEST(Explorer, PassesFixedLockOrder) {
  const ExploreResult r =
      explore(ExploreOptions{}, mcheck_test::lock_order_fixed_body);
  EXPECT_FALSE(r.failed) << r.failure << " trace=" << r.trace;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.schedules, 1u) << "the space has more than one interleaving";
}

TEST(Explorer, FindsLostWakeup) {
  const ExploreResult r =
      explore(ExploreOptions{}, mcheck_test::lost_wakeup_body);
  ASSERT_TRUE(r.failed) << "after " << r.schedules << " schedules";
  EXPECT_TRUE(r.deadlock);
  EXPECT_NE(r.failure.find("cv_wait"), std::string::npos)
      << "the stuck thread should be parked in the wait: " << r.failure;
}

TEST(Explorer, PassesFixedWakeup) {
  const ExploreResult r =
      explore(ExploreOptions{}, mcheck_test::lost_wakeup_fixed_body);
  EXPECT_FALSE(r.failed) << r.failure << " trace=" << r.trace;
  EXPECT_TRUE(r.exhausted);
}

TEST(Explorer, SameSeedSameScheduleSequence) {
  ExploreOptions opt;
  opt.seed = 42;
  const ExploreResult a = explore(opt, mcheck_test::lock_order_inverted_body);
  const ExploreResult b = explore(opt, mcheck_test::lock_order_inverted_body);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.failure, b.failure);
}

TEST(Explorer, DifferentSeedsStillFindTheBug) {
  for (const std::uint64_t seed : {1ull, 7ull, 12345ull}) {
    ExploreOptions opt;
    opt.seed = seed;
    const ExploreResult r =
        explore(opt, mcheck_test::lock_order_inverted_body);
    EXPECT_TRUE(r.failed) << "seed " << seed;
  }
}

TEST(Explorer, ModelAssertFailureCarriesMessageAndTrace) {
  ExploreOptions opt;
  const ExploreResult r = explore(opt, [] {
    int hits = 0;
    mcheck::spawn([&] {
      sim::sync_point(&hits);
      ++hits;
    });
    mcheck::join_children();
    model_assert(hits == 2, "hits should be 2 (intentionally wrong)");
  });
  ASSERT_TRUE(r.failed);
  EXPECT_FALSE(r.deadlock);
  EXPECT_NE(r.failure.find("intentionally wrong"), std::string::npos);
}

TEST(Explorer, UnderExplorationOnlyInsideBodies) {
  EXPECT_FALSE(mcheck::under_exploration());
  bool inside = false;
  const ExploreResult r = explore(ExploreOptions{}, [&] {
    inside = mcheck::under_exploration();
  });
  EXPECT_FALSE(r.failed);
  EXPECT_TRUE(inside);
  EXPECT_FALSE(mcheck::under_exploration());
}

TEST(Explorer, RejectsNestedExploration) {
  const ExploreResult r = explore(ExploreOptions{}, [] {
    EXPECT_THROW((void)explore(ExploreOptions{}, [] {}), std::logic_error);
  });
  EXPECT_FALSE(r.failed) << r.failure;
}

TEST(Explorer, PreemptionBoundShrinksTheSpace) {
  const auto body = mcheck_test::lock_order_fixed_body;
  ExploreOptions tight;
  tight.preemption_bound = 0;
  ExploreOptions loose;
  loose.preemption_bound = 2;
  const ExploreResult a = explore(tight, body);
  const ExploreResult b = explore(loose, body);
  EXPECT_FALSE(a.failed);
  EXPECT_FALSE(b.failed);
  EXPECT_LT(a.schedules, b.schedules);
}

// ---------------------------------------------------------------------------
// 3. Production cores under the explorer

// Core 1: tenancy::TokenBucket under its SessionManager-style mutex. Two
// admitters race for a bucket that only fits one of them; every
// interleaving must admit exactly one (no double-spend, no lost refusal).
TEST(ModelTenancy, TokenBucketNeverOversubscribes) {
  const ExploreResult r = explore(ExploreOptions{}, [] {
    sim::Mutex mu;
    tenancy::TokenBucket bucket(/*rate=*/1, /*burst=*/100);
    int admitted = 0;
    for (int i = 0; i < 2; ++i) {
      mcheck::spawn([&] {
        sim::MutexLock lock(mu);
        if (bucket.try_take(60, /*now=*/0)) ++admitted;
      });
    }
    mcheck::join_children();
    model_assert(admitted == 1, "exactly one 60B take fits a 100B burst");
  });
  EXPECT_FALSE(r.failed) << r.failure << " trace=" << r.trace;
  EXPECT_TRUE(r.exhausted);
}

// Core 2: the obs seqlock ring. A writer records spans while a collector
// reads concurrently; the seqlock must never surface a torn event (the
// sync_point markers in trace.cpp give the explorer preemption points
// inside the protocol window).
TEST(ModelObs, SeqlockCollectorNeverSeesTornEvents) {
  // Warm every function-local static (collector singleton, tid counter)
  // single-threaded before exploring: their init guards are real locks the
  // scheduler cannot see.
  obs::TraceOptions warm;
  warm.ring_capacity = 8;
  warm.latency_metrics = false;
  obs::enable_tracing(warm);
  sim::SimClock clock;
  obs::bind_clock(&clock);
  obs::instant(obs::Layer::kApp, "warmup", 0);
  (void)obs::collect_events();

  ExploreOptions opt;
  opt.max_schedules = 2048;
  const ExploreResult r = explore(opt, [&] {
    obs::reset_trace();  // fresh epoch: only this run's rings collect
    mcheck::spawn([&] {
      obs::instant(obs::Layer::kGpuLaunch, "k1", 11);
      obs::instant(obs::Layer::kGpuLaunch, "k2", 22);
    });
    std::vector<obs::TraceEvent> seen;
    mcheck::spawn([&] { seen = obs::collect_events(); });
    mcheck::join_children();
    for (const obs::TraceEvent& ev : seen) {
      // A torn slot would pair one event's name with the other's arg (or
      // garbage from the odd window). The seqlock retry must discard it.
      const bool k1 = ev.name == std::string("k1") && ev.arg == 11;
      const bool k2 = ev.name == std::string("k2") && ev.arg == 22;
      model_assert(k1 || k2, "collected event is internally consistent");
      model_assert(ev.layer == obs::Layer::kGpuLaunch, "layer not torn");
    }
    model_assert(seen.size() <= 2, "no duplicated events");
  });
  obs::bind_clock(nullptr);
  obs::disable_tracing();
  EXPECT_FALSE(r.failed) << r.failure << " trace=" << r.trace;
  EXPECT_GT(r.schedules, 1u);
}

// Core 3: fair-share scheduler vtime accounting in its deterministic pure
// virtual-time mode (max_real_block = 0 — a steady_clock block would break
// schedule determinism AND the model). Concurrent admit/record_usage from
// two sessions must lose no usage and keep stats additive.
TEST(ModelScheduler, VtimeAccountingSurvivesInterleaving) {
  const ExploreResult r = explore(ExploreOptions{}, [] {
    sim::SimClock clock;
    core::SchedulerOptions opts;
    opts.quantum = sim::kMillisecond;
    opts.max_real_block = std::chrono::nanoseconds{0};
    core::KernelScheduler sched(core::SchedulerPolicy::kFairShare, clock,
                                opts);
    sched.session_open(1);
    sched.session_open(2);
    for (const std::uint64_t sid : {1ull, 2ull}) {
      mcheck::spawn([&, sid] {
        const sim::Nanos wait = sched.admit(sid);
        model_assert(wait >= 0, "admit never returns negative wait");
        sched.record_usage(sid, 500 * sim::kMicrosecond);
      });
    }
    mcheck::join_children();
    const auto s1 = sched.stats(1);
    const auto s2 = sched.stats(2);
    model_assert(s1.launches == 1 && s2.launches == 1, "one launch each");
    model_assert(
        s1.device_time_ns + s2.device_time_ns == sim::kMillisecond,
        "usage accounting lost an update");
    sched.session_close(1);
    sched.session_close(2);
  });
  EXPECT_FALSE(r.failed) << r.failure << " trace=" << r.trace;
  EXPECT_TRUE(r.exhausted);
}

// Core 4: the DRC condvar parking race. Two workers dispatch the same xid
// concurrently; at-most-once demands the handler executes exactly once —
// the duplicate either hits the cache or parks on the condvar until the
// first execution completes, then answers from cache.
TEST(ModelDrc, DuplicateDispatchExecutesHandlerOnce) {
  // Pre-warm dispatch()'s function-local static (the drc-hits counter, which
  // registers under the obs::Registry mutex on first use): first-run-only
  // lock traffic would make executions diverge inside explore().
  {
    rpc::ServiceRegistry warm;
    warm.register_proc(100, 1, 5, [](std::span<const std::uint8_t>) {
      return std::vector<std::uint8_t>{};
    });
    warm.enable_duplicate_cache();
    rpc::CallMsg probe;
    probe.xid = 1;
    probe.prog = 100;
    probe.vers = 1;
    probe.proc = 5;
    (void)warm.dispatch(probe);
  }
  ExploreOptions opt;
  opt.max_schedules = 2048;
  const ExploreResult r = explore(opt, [] {
    rpc::ServiceRegistry registry;
    // Plain int is safe: the handler body runs outside drc.mu, but the
    // at-most-once property under test means only one thread ever runs it.
    // (If that property broke, the explorer would catch the assert below
    // before any torn counter could confuse the diagnosis.)
    std::atomic<int> executions{0};
    registry.register_proc(100, 1, 5, [&](std::span<const std::uint8_t>) {
      executions.fetch_add(1, std::memory_order_relaxed);
      return std::vector<std::uint8_t>{0xAB};
    });
    registry.enable_duplicate_cache();
    rpc::CallMsg call;
    call.xid = 77;
    call.prog = 100;
    call.vers = 1;
    call.proc = 5;
    int accepted = 0;
    for (int i = 0; i < 2; ++i) {
      mcheck::spawn([&] {
        const rpc::ReplyMsg reply = registry.dispatch(call);
        sim::sync_point(&accepted);
        if (reply.stat == rpc::ReplyStat::kAccepted) ++accepted;
      });
    }
    mcheck::join_children();
    model_assert(executions.load() == 1, "at-most-once: one execution");
    model_assert(accepted == 2, "both callers get the accepted reply");
    model_assert(registry.drc_stats().insertions == 1, "one cache insert");
  });
  EXPECT_FALSE(r.failed) << r.failure << " trace=" << r.trace;
  EXPECT_GT(r.schedules, 1u);
}

// Core 5: the rpcflow CallBatcher flush race. Two appenders race a
// threshold flush (deadline = 0 keeps the background flusher thread out of
// the model); no record may be lost or sent twice, whatever the order.
TEST(ModelBatcher, ConcurrentAppendsLoseNothing) {
  struct CountingTransport final : rpc::Transport {
    std::atomic<std::size_t> bytes{0};
    std::atomic<int> sends{0};
    void send(std::span<const std::uint8_t> data) override {
      bytes.fetch_add(data.size(), std::memory_order_relaxed);
      sends.fetch_add(1, std::memory_order_relaxed);
    }
    std::size_t recv(std::span<std::uint8_t>) override { return 0; }
    void shutdown() override {}
  };
  const ExploreResult r = explore(ExploreOptions{}, [] {
    CountingTransport transport;
    rpcflow::CallBatcher::Options opts;
    opts.enabled = true;
    opts.max_calls = 2;  // second append triggers the full-flush path
    opts.deadline = std::chrono::microseconds{0};
    rpcflow::CallBatcher batcher(transport, opts, /*max_fragment=*/1 << 20);
    const std::vector<std::uint8_t> record(32, 0x5A);
    for (int i = 0; i < 2; ++i) {
      mcheck::spawn([&] { batcher.append(record); });
    }
    mcheck::join_children();
    batcher.flush();
    const auto stats = batcher.stats();
    model_assert(stats.records == 2, "both records accepted");
    model_assert(stats.bytes == transport.bytes.load(),
                 "sent bytes match accounted bytes (nothing lost/duped)");
    model_assert(batcher.buffered() == 0, "flush drained the buffer");
  });
  EXPECT_FALSE(r.failed) << r.failure << " trace=" << r.trace;
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace cricket
