#include <gtest/gtest.h>

#include <deque>
#include <thread>
#include <vector>

#include "sim/rng.hpp"
#include "sim/sim_clock.hpp"
#include "vnet/checksum.hpp"
#include "vnet/cost_model.hpp"
#include "vnet/minitcp.hpp"
#include "vnet/packet.hpp"
#include "vnet/virtio_net.hpp"
#include "vnet/virtqueue.hpp"

namespace cricket::vnet {
namespace {

// -------------------------------- checksum ---------------------------------

TEST(Checksum, Rfc1071WorkedExample) {
  // Classic RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0x2ddf0
  // -> folded 0xddf2 -> checksum ~0xddf2 = 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0x12, 0x34, 0x56, 0x00};
  const std::uint8_t odd[] = {0x12, 0x34, 0x56};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, ValidatedSegmentSumsToZero) {
  std::vector<std::uint8_t> seg(40, 0);
  // Build a fake TCP segment, compute its checksum into bytes 16..17, then
  // verify the standard property: checksumming the completed segment = 0.
  for (std::size_t i = 0; i < seg.size(); ++i)
    seg[i] = static_cast<std::uint8_t>(i * 7);
  seg[16] = seg[17] = 0;
  const std::uint16_t sum = tcp_checksum(0x0A000001, 0x0A000002, seg);
  seg[16] = static_cast<std::uint8_t>(sum >> 8);
  seg[17] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(tcp_checksum(0x0A000001, 0x0A000002, seg), 0);
}

// --------------------------------- packets ---------------------------------

ParsedFrame round_trip(std::span<const std::uint8_t> payload,
                       bool checksums) {
  EthHeader eth;
  Ipv4Header ip;
  ip.src = 0x0A000002;
  ip.dst = 0x0A000001;
  TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 5678;
  tcp.seq = 42;
  tcp.flags = kTcpAck | kTcpPsh;
  const auto frame = encode_frame(eth, ip, tcp, payload, checksums);
  return parse_frame(frame, checksums);
}

TEST(Packet, RoundTripPreservesFields) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const ParsedFrame f = round_trip(payload, true);
  EXPECT_EQ(f.ip.src, 0x0A000002u);
  EXPECT_EQ(f.tcp.src_port, 1234);
  EXPECT_EQ(f.tcp.dst_port, 5678);
  EXPECT_EQ(f.tcp.seq, 42u);
  EXPECT_EQ(f.payload, payload);
}

TEST(Packet, EmptyPayload) {
  const ParsedFrame f = round_trip({}, true);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Packet, CorruptedPayloadFailsChecksum) {
  EthHeader eth;
  Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  TcpHeader tcp;
  const std::vector<std::uint8_t> payload(100, 0x55);
  auto frame = encode_frame(eth, ip, tcp, payload, true);
  frame[frame.size() - 1] ^= 0x01;
  EXPECT_THROW((void)parse_frame(frame, true), PacketError);
  // With checksum verification offloaded, the corruption passes through.
  EXPECT_NO_THROW((void)parse_frame(frame, false));
}

TEST(Packet, CorruptedIpHeaderFailsChecksum) {
  EthHeader eth;
  Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  TcpHeader tcp;
  auto frame = encode_frame(eth, ip, tcp, {}, true);
  frame[kEthHeaderLen + 8] ^= 0xFF;  // TTL
  EXPECT_THROW((void)parse_frame(frame, true), PacketError);
}

TEST(Packet, TruncatedFrameRejected) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_THROW((void)parse_frame(tiny, false), PacketError);
}

TEST(Packet, OversizePayloadRejected) {
  const std::vector<std::uint8_t> huge(70'000, 0);
  EthHeader eth;
  Ipv4Header ip;
  TcpHeader tcp;
  EXPECT_THROW((void)encode_frame(eth, ip, tcp, huge, false), PacketError);
}

TEST(Packet, MssForPaperMtu) {
  EXPECT_EQ(mss_for_mtu(9000), 8960u);
  EXPECT_EQ(mss_for_mtu(1500), 1460u);
}

// -------------------------------- virtqueue --------------------------------

TEST(Virtqueue, RequiresPowerOfTwoSize) {
  GuestMemory mem(1 << 16);
  EXPECT_THROW(Virtqueue(mem, 100), VirtqError);
  EXPECT_NO_THROW(Virtqueue(mem, 128));
}

TEST(Virtqueue, OutChainGatherMatches) {
  GuestMemory mem(1 << 16);
  Virtqueue vq(mem, 64);
  const std::vector<std::uint8_t> a = {1, 2, 3};
  const std::vector<std::uint8_t> b = {4, 5, 6, 7};
  const std::span<const std::uint8_t> bufs[2] = {a, b};
  const auto head = vq.add_chain(bufs, {});
  ASSERT_TRUE(head.has_value());
  vq.kick(*head);

  auto chain = vq.pop_avail(false);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->descs.size(), 2u);
  EXPECT_EQ(chain->readable_len(), 7u);
  const auto gathered = vq.gather(*chain);
  EXPECT_EQ(gathered, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7}));
  vq.push_used(chain->head, 0);
  const auto used = vq.take_used(false);
  ASSERT_TRUE(used.has_value());
  vq.recycle(used->first);
}

TEST(Virtqueue, InChainScatterAndReadBack) {
  GuestMemory mem(1 << 16);
  Virtqueue vq(mem, 64);
  const std::uint32_t lens[2] = {4, 8};
  const auto head = vq.add_chain({}, lens);
  ASSERT_TRUE(head.has_value());
  vq.kick(*head);

  auto chain = vq.pop_avail(false);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->writable_len(), 12u);
  std::vector<std::uint8_t> data = {9, 8, 7, 6, 5, 4};
  EXPECT_EQ(vq.scatter(*chain, data), 6u);
  vq.push_used(chain->head, 6);

  const auto used = vq.take_used(false);
  ASSERT_TRUE(used.has_value());
  EXPECT_EQ(vq.read_in_buffers(used->first, used->second), data);
}

TEST(Virtqueue, ScatterTruncatesWhenChainTooSmall) {
  GuestMemory mem(1 << 16);
  Virtqueue vq(mem, 64);
  const std::uint32_t lens[1] = {4};
  const auto head = vq.add_chain({}, lens);
  ASSERT_TRUE(head.has_value());
  vq.kick(*head);
  auto chain = vq.pop_avail(false);
  ASSERT_TRUE(chain.has_value());
  const std::vector<std::uint8_t> data(10, 1);
  EXPECT_EQ(vq.scatter(*chain, data), 4u);
  vq.push_used(*head, 4);
}

TEST(Virtqueue, ExhaustionReturnsNullopt) {
  GuestMemory mem(1 << 12);
  Virtqueue vq(mem, 4);
  const std::vector<std::uint8_t> buf = {1};
  const std::span<const std::uint8_t> bufs[1] = {buf};
  std::vector<std::uint16_t> heads;
  for (int i = 0; i < 4; ++i) {
    const auto h = vq.add_chain(bufs, {});
    ASSERT_TRUE(h.has_value());
    heads.push_back(*h);
  }
  EXPECT_FALSE(vq.add_chain(bufs, {}).has_value());
  vq.recycle(heads[0]);
  EXPECT_TRUE(vq.add_chain(bufs, {}).has_value());
}

TEST(Virtqueue, CrossThreadProducerConsumer) {
  GuestMemory mem(1 << 20);
  Virtqueue vq(mem, 256);
  constexpr int kMsgs = 2000;
  std::thread device([&] {
    for (int i = 0; i < kMsgs; ++i) {
      auto chain = vq.pop_avail(true);
      ASSERT_TRUE(chain.has_value());
      vq.push_used(chain->head, 0);
    }
  });
  int sent = 0;
  std::vector<std::uint8_t> payload(64, 0xAA);
  const std::span<const std::uint8_t> bufs[1] = {payload};
  int outstanding = 0;
  while (sent < kMsgs) {
    auto head = vq.add_chain(bufs, {});
    if (!head) {
      // Ring full: block for exactly one completion, then retry.
      auto used = vq.take_used(true);
      ASSERT_TRUE(used.has_value());
      vq.recycle(used->first);
      --outstanding;
      continue;
    }
    vq.kick(*head);
    ++sent;
    ++outstanding;
    // Opportunistically recycle finished chains without blocking.
    while (auto used = vq.take_used(false)) {
      vq.recycle(used->first);
      --outstanding;
    }
  }
  while (outstanding > 0) {
    auto used = vq.take_used(true);
    ASSERT_TRUE(used.has_value());
    vq.recycle(used->first);
    --outstanding;
  }
  device.join();
  EXPECT_EQ(vq.kicks(), static_cast<std::uint64_t>(kMsgs));
}

// --------------------------------- minitcp ---------------------------------

/// Deterministic frame harness: connects two TcpConnections through lossy
/// queues, pumping frames until quiescent.
class TcpHarness {
 public:
  explicit TcpHarness(double loss = 0.0, std::uint64_t seed = 1,
                      std::size_t mtu = 9000)
      : rng_(seed) {
    TcpConfig ccfg;
    ccfg.local_ip = 0x0A000002;
    ccfg.remote_ip = 0x0A000001;
    ccfg.local_port = 40000;
    ccfg.remote_port = 50000;
    ccfg.ip_mtu = mtu;
    ccfg.initial_seq = 100;
    TcpConfig scfg;
    scfg.local_ip = 0x0A000001;
    scfg.remote_ip = 0x0A000002;
    scfg.local_port = 50000;
    scfg.remote_port = 40000;
    scfg.ip_mtu = mtu;
    scfg.initial_seq = 7'000;
    loss_ = loss;
    client.emplace(ccfg, [this](std::vector<std::uint8_t> f) {
      if (!drop()) to_server_.push_back(std::move(f));
    });
    server.emplace(scfg, [this](std::vector<std::uint8_t> f) {
      if (!drop()) to_client_.push_back(std::move(f));
    });
  }

  bool drop() { return loss_ > 0.0 && rng_.next_double() < loss_; }

  /// Delivers queued frames until both directions are empty; advances
  /// virtual time and fires retransmission timers while doing so.
  void pump(int max_rounds = 10'000) {
    for (int round = 0; round < max_rounds; ++round) {
      if (to_server_.empty() && to_client_.empty()) {
        // Quiescent: if data is still in flight, let the RTO fire.
        if (client->unacked_bytes() == 0 && server->unacked_bytes() == 0 &&
            client->state() != TcpState::kSynSent &&
            server->state() != TcpState::kSynReceived)
          return;
        now_ += 250 * sim::kMillisecond;
        client->poll(now_);
        server->poll(now_);
        if (to_server_.empty() && to_client_.empty()) return;
      }
      if (!to_server_.empty()) {
        auto f = std::move(to_server_.front());
        to_server_.pop_front();
        server->on_frame(f, now_);
      }
      if (!to_client_.empty()) {
        auto f = std::move(to_client_.front());
        to_client_.pop_front();
        client->on_frame(f, now_);
      }
      now_ += 10 * sim::kMicrosecond;
    }
    FAIL() << "TCP harness did not quiesce";
  }

  void establish() {
    client->connect(now_);
    pump();
    ASSERT_EQ(client->state(), TcpState::kEstablished);
    ASSERT_EQ(server->state(), TcpState::kEstablished);
  }

  std::optional<TcpConnection> client;
  std::optional<TcpConnection> server;
  sim::Nanos now_ = 0;

 private:
  std::deque<std::vector<std::uint8_t>> to_server_;
  std::deque<std::vector<std::uint8_t>> to_client_;
  double loss_ = 0.0;
  sim::Xoshiro256ss rng_;
};

TEST(MiniTcp, ThreeWayHandshake) {
  TcpHarness h;
  h.server->listen();
  h.establish();
}

TEST(MiniTcp, SmallDataTransfer) {
  TcpHarness h;
  h.server->listen();
  h.establish();
  const std::vector<std::uint8_t> msg = {'h', 'e', 'l', 'l', 'o'};
  h.client->send(msg, h.now_);
  h.pump();
  EXPECT_EQ(h.server->take_received(), msg);
}

TEST(MiniTcp, LargeTransferSegmentsAtMss) {
  TcpHarness h;
  h.server->listen();
  h.establish();
  sim::Xoshiro256ss rng(2);
  std::vector<std::uint8_t> data(100'000);
  rng.fill_bytes(data);
  h.client->send(data, h.now_);
  h.pump();
  EXPECT_EQ(h.server->take_received(), data);
  // 100 000 bytes at MSS 8960 = 12 data segments.
  EXPECT_GE(h.client->stats().segments_sent, 12u);
}

TEST(MiniTcp, SmallMtuMeansManySegments) {
  TcpHarness big(0.0, 1, 9000), small(0.0, 1, 1500);
  for (auto* h : {&big, &small}) {
    h->server->listen();
    h->client->connect(h->now_);
    h->pump();
  }
  std::vector<std::uint8_t> data(50'000, 0x5A);
  big.client->send(data, big.now_);
  big.pump();
  small.client->send(data, small.now_);
  small.pump();
  EXPECT_EQ(big.server->take_received(), small.server->take_received());
  // Paper §4: the evaluation uses MTU 9000 precisely to cut per-segment
  // costs; at 1500 the same payload takes ~6x the segments.
  EXPECT_GT(small.client->stats().segments_sent,
            4 * big.client->stats().segments_sent);
}

TEST(MiniTcp, BidirectionalTransfer) {
  TcpHarness h;
  h.server->listen();
  h.establish();
  const std::vector<std::uint8_t> c2s(5000, 0x11);
  const std::vector<std::uint8_t> s2c(7000, 0x22);
  h.client->send(c2s, h.now_);
  h.server->send(s2c, h.now_);
  h.pump();
  EXPECT_EQ(h.server->take_received(), c2s);
  EXPECT_EQ(h.client->take_received(), s2c);
}

TEST(MiniTcp, RetransmissionRecoversFromLoss) {
  TcpHarness h(/*loss=*/0.15, /*seed=*/7);
  h.server->listen();
  h.client->connect(h.now_);
  h.pump();
  ASSERT_EQ(h.client->state(), TcpState::kEstablished);

  sim::Xoshiro256ss rng(3);
  std::vector<std::uint8_t> data(60'000);
  rng.fill_bytes(data);
  h.client->send(data, h.now_);
  h.pump();
  EXPECT_EQ(h.server->take_received(), data);
  EXPECT_GT(h.client->stats().segments_retransmitted, 0u);
}

TEST(MiniTcp, ChecksumOffloadSkipsVerification) {
  // tx_checksum=false models CSUM offload: frames leave with zero checksums;
  // an rx-verifying peer would reject them, an offloaded peer accepts.
  TcpHarness h;
  h.server->listen();
  h.establish();
  // Rebuild client with checksum offload enabled after handshake is not
  // possible; instead verify at the packet level that zero-checksum frames
  // only pass when verification is off (covered in Packet tests) and that
  // stats track software checksum behaviour here.
  EXPECT_GT(h.client->stats().segments_sent, 0u);
}

TEST(MiniTcp, CloseHandshake) {
  TcpHarness h;
  h.server->listen();
  h.establish();
  h.client->send(std::vector<std::uint8_t>(100, 1), h.now_);
  h.client->close(h.now_);
  h.pump();
  EXPECT_EQ(h.server->take_received(), std::vector<std::uint8_t>(100, 1));
  EXPECT_EQ(h.server->state(), TcpState::kCloseWait);
}

TEST(MiniTcp, WindowLimitsInFlightData) {
  TcpHarness h;
  h.server->listen();
  h.establish();
  std::vector<std::uint8_t> data(1 << 20, 0x33);
  h.client->send(data, h.now_);
  // Before any ACKs return, in-flight bytes must respect the send window.
  EXPECT_LE(h.client->unacked_bytes(), 256u * 1024 + h.client->mss());
  h.pump();
  EXPECT_EQ(h.server->take_received(), data);
}

// ------------------------------- cost model --------------------------------

NetworkProfile offload_profile(bool tso, bool csum) {
  NetworkProfile p;
  p.virtualized = true;
  p.offloads.tso = tso;
  p.offloads.tx_checksum = csum;
  p.offloads.rx_checksum = csum;
  p.guest.per_packet_ns = 3000;
  p.guest.vm_exit_ns = 5000;
  p.guest.checksum_ns_per_byte = 0.25;
  return p;
}

TEST(CostModel, TsoCutsTxCostForBulk) {
  const auto with = tx_cpu_cost(offload_profile(true, true), 1 << 20);
  const auto without = tx_cpu_cost(offload_profile(false, true), 1 << 20);
  EXPECT_GT(without, 5 * with);
}

TEST(CostModel, ChecksumOffloadMattersForBulk) {
  const auto with = tx_cpu_cost(offload_profile(false, true), 1 << 20);
  const auto without = tx_cpu_cost(offload_profile(false, false), 1 << 20);
  EXPECT_GT(without, with);
  EXPECT_GE(without - with,
            static_cast<sim::Nanos>(0.25 * (1 << 20)) - 1000);
}

TEST(CostModel, SmallMessagesDominatedByPerPacketCosts) {
  const auto p = offload_profile(true, true);
  const auto tiny = tx_cpu_cost(p, 64);
  const auto tiny2 = tx_cpu_cost(p, 128);
  EXPECT_LT(tiny2 - tiny, tiny / 10);  // nearly flat
}

TEST(CostModel, WireTimeScalesWithBytes) {
  NetworkProfile p;
  const auto t1 = wire_time(p, 1 << 20);
  const auto t2 = wire_time(p, 1 << 21);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(static_cast<double>(t2 - p.link.one_way_latency_ns),
              2.0 * static_cast<double>(t1 - p.link.one_way_latency_ns),
              1e4);
}

TEST(CostModel, FeatureBitsRoundTrip) {
  OffloadFeatures f{.tx_checksum = true,
                    .rx_checksum = false,
                    .tso = true,
                    .mrg_rxbuf = true,
                    .rx_coalesce = false,
                    .scatter_gather = false};
  const auto g = OffloadFeatures::from_bits(f.feature_bits());
  EXPECT_EQ(g.tx_checksum, f.tx_checksum);
  EXPECT_EQ(g.rx_checksum, f.rx_checksum);
  EXPECT_EQ(g.tso, f.tso);
  EXPECT_EQ(g.mrg_rxbuf, f.mrg_rxbuf);
  EXPECT_EQ(g.rx_coalesce, f.rx_coalesce);
}

TEST(CostModel, KickBatchingReducesExitCost) {
  auto p = offload_profile(false, true);
  p.guest.kick_batch = 1;
  const auto unbatched = tx_cpu_cost(p, 1 << 20);
  p.guest.kick_batch = 32;
  const auto batched = tx_cpu_cost(p, 1 << 20);
  EXPECT_GT(unbatched, batched);
}

// --------------------------- virtio-net transport --------------------------

NetworkProfile hermit_like_profile() {
  NetworkProfile p;
  p.virtualized = true;
  p.offloads = OffloadFeatures{.tx_checksum = true,
                               .rx_checksum = true,
                               .tso = false,
                               .mrg_rxbuf = true,
                               .rx_coalesce = false,
                               .scatter_gather = false};
  p.guest.per_packet_ns = 3000;
  p.guest.vm_exit_ns = 6000;
  return p;
}

NetworkProfile unikraft_like_profile() {
  auto p = hermit_like_profile();
  p.offloads.tx_checksum = false;
  p.offloads.rx_checksum = false;
  p.guest.checksum_ns_per_byte = 0.25;
  return p;
}

struct VirtioFixtureBase {
  VirtioFixtureBase(NetworkProfile profile) {
    auto c2s = std::make_shared<rpc::ByteQueue>(1 << 22);
    auto s2c = std::make_shared<rpc::ByteQueue>(1 << 22);
    guest = std::make_unique<VirtioNetTransport>(profile, clock, c2s, s2c);
    server = std::make_unique<rpc::PipeTransport>(s2c, c2s);
  }

  sim::SimClock clock;
  std::unique_ptr<VirtioNetTransport> guest;
  std::unique_ptr<rpc::Transport> server;
};

TEST(VirtioNet, SmallMessageRoundTrip) {
  VirtioFixtureBase f(hermit_like_profile());
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  f.guest->send(msg);
  std::vector<std::uint8_t> got(msg.size());
  f.server->recv_exact(got);
  EXPECT_EQ(got, msg);

  const std::vector<std::uint8_t> reply = {9, 8, 7};
  f.server->send(reply);
  std::vector<std::uint8_t> back(reply.size());
  f.guest->recv_exact(back);
  EXPECT_EQ(back, reply);
  EXPECT_GT(f.clock.now(), 0);
}

TEST(VirtioNet, BulkTransferIntegrity) {
  VirtioFixtureBase f(hermit_like_profile());
  sim::Xoshiro256ss rng(11);
  std::vector<std::uint8_t> data(3 << 20);
  rng.fill_bytes(data);
  std::thread sender([&] { f.guest->send(data); });
  std::vector<std::uint8_t> got(data.size());
  f.server->recv_exact(got);
  sender.join();
  EXPECT_EQ(got, data);
  // 3 MiB at MSS 8960 (no TSO): hundreds of real frames went through the
  // ring.
  EXPECT_GT(f.guest->stats().frames_tx, 300u);
  EXPECT_GT(f.guest->tx_kicks(), 300u);
}

TEST(VirtioNet, BulkReceiveIntegrity) {
  VirtioFixtureBase f(hermit_like_profile());
  sim::Xoshiro256ss rng(12);
  std::vector<std::uint8_t> data(2 << 20);
  rng.fill_bytes(data);
  std::thread sender([&] { f.server->send(data); });
  std::vector<std::uint8_t> got(data.size());
  f.guest->recv_exact(got);
  sender.join();
  EXPECT_EQ(got, data);
  EXPECT_GT(f.guest->stats().frames_rx, 0u);
}

// Regression: the TX and RX virtqueues used to share one guest-memory
// arena, so descriptor id N addressed the same bytes in both queues. With
// only one direction active at a time (the synchronous RPC client) that
// never mattered, but full-duplex traffic — a pipelined client sending
// while replies stream in — corrupted in-flight frames, which the TAP model
// then dropped silently: lost records, stalled pipelines. Every byte must
// survive concurrent bidirectional traffic.
TEST(VirtioNet, FullDuplexTrafficDoesNotAliasQueueMemory) {
  VirtioFixtureBase f(hermit_like_profile());
  constexpr int kRecords = 2000;
  constexpr std::size_t kRecordSize = 48;

  const auto pattern = [](int i, std::size_t j) {
    return static_cast<std::uint8_t>(i * 31 + static_cast<int>(j));
  };
  const auto pump = [&](rpc::Transport& t) {
    std::vector<std::uint8_t> rec(kRecordSize);
    for (int i = 0; i < kRecords; ++i) {
      for (std::size_t j = 0; j < kRecordSize; ++j) rec[j] = pattern(i, j);
      t.send(rec);
    }
  };
  const auto verify = [&](rpc::Transport& t) {
    std::vector<std::uint8_t> got(kRecords * kRecordSize);
    t.recv_exact(got);
    for (int i = 0; i < kRecords; ++i)
      for (std::size_t j = 0; j < kRecordSize; ++j)
        ASSERT_EQ(got[static_cast<std::size_t>(i) * kRecordSize + j],
                  pattern(i, j))
            << "record " << i << " byte " << j;
  };

  std::thread guest_tx([&] { pump(*f.guest); });
  std::thread server_tx([&] { pump(*f.server); });
  std::thread guest_rx([&] { verify(*f.guest); });
  verify(*f.server);
  guest_tx.join();
  server_tx.join();
  guest_rx.join();
}

TEST(VirtioNet, SoftwareChecksumPathComputesChecksums) {
  VirtioFixtureBase f(unikraft_like_profile());
  const std::vector<std::uint8_t> msg(10'000, 0x42);
  f.guest->send(msg);
  std::vector<std::uint8_t> got(msg.size());
  f.server->recv_exact(got);
  EXPECT_EQ(got, msg);
  EXPECT_GT(f.guest->stats().checksums_computed, 0u);
}

TEST(VirtioNet, OffloadedChecksumPathSkipsThem) {
  VirtioFixtureBase f(hermit_like_profile());
  const std::vector<std::uint8_t> msg(10'000, 0x42);
  f.guest->send(msg);
  std::vector<std::uint8_t> got(msg.size());
  f.server->recv_exact(got);
  EXPECT_EQ(f.guest->stats().checksums_computed, 0u);
}

TEST(VirtioNet, NoTsoChargesMoreVirtualTimeThanTso) {
  auto no_tso = hermit_like_profile();
  auto with_tso = hermit_like_profile();
  with_tso.offloads.tso = true;
  const std::vector<std::uint8_t> data(1 << 20, 0x7);

  sim::Nanos t_no = 0, t_yes = 0;
  {
    VirtioFixtureBase f(no_tso);
    std::thread drain([&] {
      std::vector<std::uint8_t> got(data.size());
      f.server->recv_exact(got);
    });
    f.guest->send(data);
    drain.join();
    t_no = f.clock.now();
  }
  {
    VirtioFixtureBase f(with_tso);
    std::thread drain([&] {
      std::vector<std::uint8_t> got(data.size());
      f.server->recv_exact(got);
    });
    f.guest->send(data);
    drain.join();
    t_yes = f.clock.now();
  }
  EXPECT_GT(t_no, 2 * t_yes);
}

TEST(VirtioNet, ShutdownDeliversEofToServer) {
  VirtioFixtureBase f(hermit_like_profile());
  f.guest->send(std::vector<std::uint8_t>{1});
  std::uint8_t b;
  ASSERT_EQ(f.server->recv({&b, 1}), 1u);
  f.guest->shutdown();
  EXPECT_EQ(f.server->recv({&b, 1}), 0u);
}

TEST(VirtioNet, ServerEofDeliversEofToGuest) {
  VirtioFixtureBase f(hermit_like_profile());
  f.server->shutdown();
  std::uint8_t b;
  EXPECT_EQ(f.guest->recv({&b, 1}), 0u);
}

TEST(ShapedTransport, ChargesCostsAroundInner) {
  sim::SimClock clock;
  auto [a, b] = rpc::make_pipe_pair();
  NetworkProfile p;  // defaults: native-ish
  p.guest.syscall_ns = 1000;
  p.guest.per_packet_ns = 500;
  ShapedTransport shaped(p, clock, std::move(a));
  shaped.send(std::vector<std::uint8_t>(100, 1));
  EXPECT_GT(clock.now(), 1000);
  std::vector<std::uint8_t> got(100);
  b->recv_exact(got);
  b->send(got);
  std::vector<std::uint8_t> back(100);
  shaped.recv_exact(back);
  EXPECT_EQ(back, got);
}

}  // namespace
}  // namespace cricket::vnet

// ---------------------- property sweeps (appended suite) --------------------

namespace cricket::vnet {
namespace {

/// Loss-rate sweep: minitcp must deliver exactly, whatever the drop rate.
struct LossCase {
  double loss;
  std::uint64_t seed;
  std::size_t bytes;
};

class MiniTcpLossProperty : public ::testing::TestWithParam<LossCase> {};

TEST_P(MiniTcpLossProperty, DeliversExactlyUnderLoss) {
  const auto [loss, seed, bytes] = GetParam();
  TcpHarness h(loss, seed);
  h.server->listen();
  h.client->connect(h.now_);
  h.pump();
  ASSERT_EQ(h.client->state(), TcpState::kEstablished);

  sim::Xoshiro256ss rng(seed * 7 + 1);
  std::vector<std::uint8_t> data(bytes);
  rng.fill_bytes(data);
  h.client->send(data, h.now_);
  h.pump();
  EXPECT_EQ(h.server->take_received(), data);
  if (loss >= 0.15 && bytes > 50'000) {
    // With heavy loss on a large transfer, *someone* had to retransmit
    // (drops may land on data or on ACKs, so count both directions).
    EXPECT_GT(h.client->stats().segments_retransmitted +
                  h.server->stats().segments_retransmitted,
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, MiniTcpLossProperty,
    ::testing::Values(LossCase{0.0, 1, 200'000}, LossCase{0.02, 2, 100'000},
                      LossCase{0.1, 3, 100'000}, LossCase{0.2, 4, 60'000},
                      LossCase{0.3, 5, 30'000}, LossCase{0.1, 6, 1'000},
                      LossCase{0.15, 7, 150'000}, LossCase{0.05, 8, 80'000}));

/// Randomized virtqueue stress: chains of random shapes, producer/consumer
/// on separate threads, every byte accounted for.
class VirtqueueStressProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(VirtqueueStressProperty, RandomChainsSurviveThreads) {
  GuestMemory mem(1 << 22);
  Virtqueue vq(mem, 128);
  sim::Xoshiro256ss rng(GetParam());
  constexpr int kChains = 500;

  std::vector<std::vector<std::uint8_t>> sent(kChains);
  std::atomic<std::uint64_t> received_bytes{0};
  std::atomic<std::uint64_t> received_sum{0};

  std::thread device([&] {
    for (int i = 0; i < kChains; ++i) {
      auto chain = vq.pop_avail(true);
      ASSERT_TRUE(chain.has_value());
      const auto data = vq.gather(*chain);
      std::uint64_t sum = 0;
      for (auto b : data) sum += b;
      received_bytes += data.size();
      received_sum += sum;
      vq.push_used(chain->head, 0);
    }
  });

  std::uint64_t sent_bytes = 0, sent_sum = 0;
  int outstanding = 0;
  for (int i = 0; i < kChains; ++i) {
    // 1-3 buffers of 1..2000 bytes each.
    const int nbufs = 1 + static_cast<int>(rng.next() % 3);
    std::vector<std::vector<std::uint8_t>> bufs(
        static_cast<std::size_t>(nbufs));
    std::vector<std::span<const std::uint8_t>> spans;
    for (auto& b : bufs) {
      b.resize(1 + rng.next() % 2000);
      rng.fill_bytes(b);
      for (auto v : b) sent_sum += v;
      sent_bytes += b.size();
      spans.emplace_back(b);
    }
    std::optional<std::uint16_t> head;
    while (!(head = vq.add_chain(spans, {}))) {
      auto used = vq.take_used(true);
      ASSERT_TRUE(used.has_value());
      vq.recycle(used->first);
      --outstanding;
    }
    vq.kick(*head);
    ++outstanding;
    while (auto used = vq.take_used(false)) {
      vq.recycle(used->first);
      --outstanding;
    }
  }
  while (outstanding > 0) {
    auto used = vq.take_used(true);
    ASSERT_TRUE(used.has_value());
    vq.recycle(used->first);
    --outstanding;
  }
  device.join();
  EXPECT_EQ(received_bytes.load(), sent_bytes);
  EXPECT_EQ(received_sum.load(), sent_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VirtqueueStressProperty,
                         ::testing::Values(11, 22, 33, 44));

/// Transport-level property: every environment's guest transport carries
/// arbitrary byte streams exactly, chunked however the sender likes.
class TransportIntegrityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportIntegrityProperty, RandomChunkingSurvives) {
  sim::SimClock clock;
  sim::Xoshiro256ss rng(GetParam());
  NetworkProfile p;
  p.virtualized = true;
  p.offloads.tx_checksum = rng.next() % 2;
  p.offloads.rx_checksum = p.offloads.tx_checksum;
  p.offloads.tso = rng.next() % 2;
  p.offloads.rx_coalesce = rng.next() % 2;
  p.guest.checksum_ns_per_byte = 0.25;

  auto c2s = std::make_shared<rpc::ByteQueue>(1 << 20);
  auto s2c = std::make_shared<rpc::ByteQueue>(1 << 20);
  VirtioNetTransport guest(p, clock, c2s, s2c);
  rpc::PipeTransport host(s2c, c2s);

  std::vector<std::uint8_t> data(300'000);
  rng.fill_bytes(data);
  std::thread sender([&] {
    std::size_t off = 0;
    sim::Xoshiro256ss chunk_rng(GetParam() + 99);
    while (off < data.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + chunk_rng.next() % 70'000,
                                data.size() - off);
      guest.send(std::span(data).subspan(off, n));
      off += n;
    }
  });
  std::vector<std::uint8_t> got(data.size());
  host.recv_exact(got);
  sender.join();
  EXPECT_EQ(got, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportIntegrityProperty,
                         ::testing::Range<std::uint64_t>(50, 58));

}  // namespace
}  // namespace cricket::vnet

// ------------------------------ fast retransmit -----------------------------

namespace cricket::vnet {
namespace {

TEST(MiniTcpFastRetransmit, TripleDupAckTriggersResendBeforeRto) {
  // Hand-crafted scenario: drop exactly one data segment, deliver the rest;
  // the receiver's duplicate ACKs must trigger a resend without any RTO
  // firing (we never advance time to the RTO).
  TcpHarness h;
  h.server->listen();
  h.establish();

  // Intercept: temporarily raise loss for exactly one client frame by
  // sending enough data that at least 5 segments are produced, manually
  // dropping the second one via a fresh harness is intricate — instead use
  // a deterministic high-loss seed and verify fast retransmits happen
  // without the RTO-driven go-back-N (pump() advances time, so check the
  // counter directly after a bounded number of rounds).
  sim::Xoshiro256ss rng(91);
  std::vector<std::uint8_t> data(80'000);
  rng.fill_bytes(data);

  TcpHarness lossy(/*loss=*/0.12, /*seed=*/91);
  lossy.server->listen();
  lossy.client->connect(lossy.now_);
  lossy.pump();
  ASSERT_EQ(lossy.client->state(), TcpState::kEstablished);
  lossy.client->send(data, lossy.now_);
  lossy.pump();
  EXPECT_EQ(lossy.server->take_received(), data);
  // With a window of many segments and 12% loss, duplicate ACK runs occur.
  EXPECT_GT(lossy.client->stats().fast_retransmits +
                lossy.client->stats().segments_retransmitted,
            0u);
}

TEST(MiniTcpFastRetransmit, NoFastRetransmitOnCleanLink) {
  TcpHarness h;
  h.server->listen();
  h.establish();
  std::vector<std::uint8_t> data(100'000, 0x3A);
  h.client->send(data, h.now_);
  h.pump();
  EXPECT_EQ(h.server->take_received(), data);
  EXPECT_EQ(h.client->stats().fast_retransmits, 0u);
  EXPECT_EQ(h.client->stats().segments_retransmitted, 0u);
}

}  // namespace
}  // namespace cricket::vnet
