// Wrapper semantics of sim/annotations.hpp: the Mutex/MutexLock/CondVar
// drop-ins must behave exactly like the std types they wrap — with and
// without a SyncObserver installed — because every concurrency guarantee in
// the codebase (and every mcheck verdict) rests on that equivalence.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sim/annotations.hpp"

namespace cricket {
namespace {

/// Records every hook invocation in order; takes nothing over. Hooks fire
/// from whatever thread runs the wrapped operation, so the log carries its
/// own guard — a plain std::mutex, not sim::Mutex, which would recurse
/// straight back into this observer.
struct TapObserver final : sim::SyncObserver {
  std::mutex events_mu;
  std::vector<std::string> events;

  void add(const char* event) {
    std::lock_guard<std::mutex> lk(events_mu);
    events.emplace_back(event);
  }
  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lk(events_mu);
    return events;
  }

  void lock_pending(sim::Mutex&, const std::source_location&) override {
    add("pending");
  }
  void lock_acquired(sim::Mutex&, const std::source_location&) override {
    add("acquired");
  }
  void unlocked(sim::Mutex&, const std::source_location&) override {
    add("unlocked");
  }
  void try_lock_result(sim::Mutex&, bool ok,
                       const std::source_location&) override {
    add(ok ? "try_ok" : "try_fail");
  }
  void cv_wait_begin(sim::CondVar&, sim::Mutex&,
                     const std::source_location&) override {
    add("wait_begin");
  }
  void cv_wait_done(sim::CondVar&, sim::Mutex&,
                    const std::source_location&) override {
    add("wait_done");
  }
  void cv_notify(sim::CondVar&, bool all,
                 const std::source_location&) override {
    add(all ? "notify_all" : "notify_one");
  }
  void sync_point(const void*, const std::source_location&) override {
    add("sync");
  }
};

TEST(Annotations, MutexLockEscapeHatchUnlocksAndRelocks) {
  sim::Mutex mu;
  {
    sim::MutexLock lock(mu);
    lock.unlock();
    // While unlocked, another owner can take and release the mutex.
    EXPECT_TRUE(mu.try_lock());
    mu.unlock();
    lock.lock();
    EXPECT_FALSE(mu.try_lock()) << "relock must actually hold the mutex";
  }
  // Destructor released it despite the unlock/relock dance.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Annotations, MutexLockDtorSkipsReleaseAfterManualUnlock) {
  sim::Mutex mu;
  {
    sim::MutexLock lock(mu);
    lock.unlock();
  }  // dtor must not double-unlock (UB on std::mutex)
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Annotations, WaitForTimesOutWithoutNotify) {
  sim::Mutex mu;
  sim::CondVar cv;
  sim::MutexLock lock(mu);
  const auto t0 = std::chrono::steady_clock::now();
  const std::cv_status status =
      cv.wait_for(mu, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(4));
  // The mutex is held again after the timeout path.
  EXPECT_FALSE(mu.try_lock());
}

TEST(Annotations, WaitForReturnsNoTimeoutWhenNotified) {
  sim::Mutex mu;
  sim::CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    sim::MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  std::cv_status last = std::cv_status::no_timeout;
  {
    sim::MutexLock lock(mu);
    while (!ready)
      last = cv.wait_for(mu, std::chrono::seconds(10));
  }
  signaller.join();
  EXPECT_EQ(last, std::cv_status::no_timeout);
}

TEST(Annotations, ObserverSeesTheCanonicalEventSequence) {
  TapObserver tap;
  sim::SyncObserver* const ambient = sim::set_sync_observer(&tap);
  if (ambient != nullptr) {
    // CRICKET_LOCKCHECK=1 keeps the lock graph on the seam; this test needs
    // exclusive ownership to compare exact event sequences.
    sim::set_sync_observer(ambient);
    GTEST_SKIP() << "sync-observer seam occupied (CRICKET_LOCKCHECK?)";
  }
  sim::Mutex mu;
  sim::CondVar cv;
  {
    sim::MutexLock lock(mu);
    (void)cv.wait_for(mu, std::chrono::microseconds(10));
    cv.notify_all();
  }
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
  sim::sync_point(&mu);
  ASSERT_EQ(sim::set_sync_observer(nullptr), &tap);
  const std::vector<std::string> expected{
      "pending", "acquired",            // MutexLock ctor
      "wait_begin", "wait_done",        // timed wait (not taken over)
      "notify_all",                     // under the lock
      "unlocked",                       // MutexLock dtor
      "try_ok", "unlocked",             // try_lock probe + its unlock
      "sync",                           // free-standing sync_point
  };
  EXPECT_EQ(tap.snapshot(), expected);
}

TEST(Annotations, ObserverOnOffParity) {
  // The wrapper must produce identical externally visible behavior with a
  // pure-tap observer installed and with none.
  const auto run = [] {
    sim::Mutex mu;
    sim::CondVar cv;
    int shared = 0;
    bool done = false;
    std::thread worker([&] {
      sim::MutexLock lock(mu);
      shared += 41;
      done = true;
      cv.notify_one();
    });
    int seen = 0;
    {
      sim::MutexLock lock(mu);
      while (!done) cv.wait(mu);
      shared += 1;
      seen = shared;
    }
    worker.join();
    return seen;
  };
  EXPECT_EQ(run(), 42);
  TapObserver tap;
  sim::SyncObserver* const ambient = sim::set_sync_observer(&tap);
  EXPECT_EQ(run(), 42);
  sim::set_sync_observer(ambient);
  EXPECT_FALSE(tap.snapshot().empty());
}

TEST(Annotations, BirthSitesIdentifyLockClasses) {
  // Two instances born on one line share a class; a different line differs.
  sim::Mutex first, second;  // both constructed here: one lock class
  sim::Mutex other;
  EXPECT_EQ(first.birth().line(), second.birth().line());
  EXPECT_NE(first.birth().line(), other.birth().line());
  EXPECT_STREQ(first.birth().file_name(), other.birth().file_name());
}

TEST(Annotations, ModelOnlyTakeoverLeavesNativeMutexFree) {
  // The explorer's mode: lock/unlock/try_lock all owned by the observer's
  // model, native mutex never touched. The notification hooks must still
  // fire in the usual order around the taken-over operations.
  struct ModelOwner final : sim::SyncObserver {
    std::vector<std::string> events;  // single-threaded test: no guard
    bool lock_acquire(sim::Mutex&, const std::source_location&) override {
      events.emplace_back("model_lock");
      return true;
    }
    bool unlock_release(sim::Mutex&, const std::source_location&) override {
      events.emplace_back("model_unlock");
      return true;
    }
    int try_lock_pending(sim::Mutex&, const std::source_location&) override {
      return kSucceed;
    }
    void lock_acquired(sim::Mutex&, const std::source_location&) override {
      events.emplace_back("acquired");
    }
    void unlocked(sim::Mutex&, const std::source_location&) override {
      events.emplace_back("unlocked");
    }
    void try_lock_result(sim::Mutex&, bool ok,
                         const std::source_location&) override {
      events.emplace_back(ok ? "try_ok" : "try_fail");
    }
  } owner;
  sim::Mutex mu;
  sim::SyncObserver* const ambient = sim::set_sync_observer(&owner);
  mu.lock();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  sim::set_sync_observer(ambient);
  const std::vector<std::string> expected{
      "model_lock", "acquired", "model_unlock", "unlocked",
      "try_ok",     "model_unlock", "unlocked",
  };
  EXPECT_EQ(owner.events, expected);
  // Every operation stayed in the model: the native mutex is still free.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Annotations, TryLockRefusalByObserverNeverTouchesNativeMutex) {
  struct Refuser final : sim::SyncObserver {
    int try_lock_pending(sim::Mutex&, const std::source_location&) override {
      return kRefuse;
    }
  } refuser;
  sim::Mutex mu;
  sim::SyncObserver* const ambient = sim::set_sync_observer(&refuser);
  EXPECT_FALSE(mu.try_lock());
  sim::set_sync_observer(ambient);
  // Refusal left the native mutex untouched: it is still free.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace cricket
