#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "fatbin/cubin.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_props.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/thread_pool.hpp"
#include "sim/sim_clock.hpp"
#include "xdr/taint.hpp"

namespace cricket::gpusim {
namespace {

// ------------------------------- thread pool -------------------------------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ChunkedVariantCoversRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for_chunks(10'000, [&](std::size_t b, std::size_t e) {
    std::size_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), 10'000ull * 9'999 / 2);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(64, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 64);
  }
}

// --------------------------------- memory ----------------------------------

TEST(MemoryManager, AllocateResolveFree) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(100);
  EXPECT_NE(p, 0u);
  auto span = mm.resolve(p, 100);
  std::memset(span.data(), 0x5A, span.size());
  EXPECT_EQ(mm.resolve(p, 100)[99], 0x5A);
  mm.free(p);
  EXPECT_EQ(mm.bytes_in_use(), 0u);
}

TEST(MemoryManager, FreshAllocationIsZeroed) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(256);
  for (auto b : mm.resolve(p, 256)) EXPECT_EQ(b, 0);
}

TEST(MemoryManager, DoubleFreeThrows) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(64);
  mm.free(p);
  EXPECT_THROW(mm.free(p), MemoryError);
}

TEST(MemoryManager, FreeOfInteriorPointerThrows) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(1024);
  EXPECT_THROW(mm.free(p + 8), MemoryError);
  mm.free(p);
}

TEST(MemoryManager, UseAfterFreeThrows) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(64);
  mm.free(p);
  EXPECT_THROW((void)mm.resolve(p, 1), MemoryError);
}

TEST(MemoryManager, OutOfBoundsResolveThrows) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(100);
  EXPECT_THROW((void)mm.resolve(p, 101), MemoryError);
  EXPECT_THROW((void)mm.resolve(p + 50, 51), MemoryError);
  EXPECT_NO_THROW((void)mm.resolve(p + 50, 50));
  mm.free(p);
}

TEST(MemoryManager, ZeroByteAllocationThrows) {
  MemoryManager mm(1 << 20);
  EXPECT_THROW((void)mm.allocate(0), MemoryError);
}

TEST(MemoryManager, OutOfMemoryThrows) {
  MemoryManager mm(1 << 20);
  EXPECT_THROW((void)mm.allocate(2 << 20), OutOfMemory);
}

TEST(MemoryManager, ExhaustionThenReuseAfterFree) {
  MemoryManager mm(1024);
  const DevPtr a = mm.allocate(512);
  const DevPtr b = mm.allocate(512);
  EXPECT_THROW((void)mm.allocate(256), OutOfMemory);
  mm.free(a);
  const DevPtr c = mm.allocate(512);
  EXPECT_EQ(c, a);  // hole reused
  mm.free(b);
  mm.free(c);
}

TEST(MemoryManager, CoalescingAllowsFullReallocation) {
  MemoryManager mm(4096);
  std::vector<DevPtr> ptrs;
  for (int i = 0; i < 16; ++i) ptrs.push_back(mm.allocate(256));
  // Free in an interleaved order to stress both coalescing directions.
  for (int i = 0; i < 16; i += 2) mm.free(ptrs[static_cast<std::size_t>(i)]);
  for (int i = 1; i < 16; i += 2) mm.free(ptrs[static_cast<std::size_t>(i)]);
  // If coalescing works, the whole arena is one hole again.
  const DevPtr big = mm.allocate(4096);
  mm.free(big);
}

TEST(MemoryManager, GranularityRounding) {
  MemoryManager mm(1 << 20);
  (void)mm.allocate(1);
  EXPECT_EQ(mm.bytes_in_use(), MemoryManager::kGranularity);
}

TEST(MemoryManager, LiveEnumerationMatches) {
  MemoryManager mm(1 << 20);
  const DevPtr a = mm.allocate(100);
  const DevPtr b = mm.allocate(200);
  auto live = mm.live();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].first, a);
  EXPECT_EQ(live[0].second, 100u);
  EXPECT_EQ(live[1].first, b);
  mm.free(a);
  mm.free(b);
}

TEST(MemoryManager, MemsetWritesPattern) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(64);
  mm.memset(p, 0x7F, 64);
  for (auto byte : mm.resolve(p, 64)) EXPECT_EQ(byte, 0x7F);
  mm.free(p);
}

// ------------------------------- wiretaint ---------------------------------
// Overflow regressions: pointer/length math near UINT64_MAX must refuse —
// never wrap into an apparently-valid range — and must leave the arena
// untouched.

TEST(MemoryManager, ResolveRefusesLengthThatWouldWrapPastU64) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(64);
  // (p + 32) + (~0ull - 16) wraps past zero; a naive `off + len <= end`
  // comparison would see the range as inside the allocation.
  EXPECT_THROW((void)mm.resolve(p + 32, ~0ull - 16), MemoryError);
  EXPECT_THROW(mm.memset(p + 32, 0xFF, ~0ull - 16), MemoryError);
  for (auto byte : mm.resolve(p, 64)) EXPECT_EQ(byte, 0);  // untouched
  mm.free(p);
}

TEST(MemoryManager, AllocateRefusesSizeWhoseRoundingWraps) {
  MemoryManager mm(1 << 20);
  // Rounding ~0ull - 3 up to the 256-byte granularity would wrap to a tiny
  // padded size that "fits".
  EXPECT_THROW((void)mm.allocate(~0ull - 3), OutOfMemory);
  EXPECT_EQ(mm.bytes_in_use(), 0u);
  EXPECT_EQ(mm.allocation_count(), 0u);
}

TEST(MemoryManager, ValidatedSeamsRefuseHostileWireLengths) {
  MemoryManager mm(1 << 20);
  const DevPtr p = mm.allocate(64);
  EXPECT_THROW(
      (void)mm.resolve_validated(p, xdr::Untrusted<std::uint64_t>(~0ull)),
      MemoryError);
  EXPECT_THROW(
      mm.memset_validated(p, 0xFF, xdr::Untrusted<std::uint64_t>(~0ull - 8)),
      MemoryError);
  // Refusal is pre-mutation: the allocation still reads as fresh zeroes.
  for (auto byte : mm.resolve(p, 64)) EXPECT_EQ(byte, 0);
  // In-bound wire lengths behave exactly like the trusted entry points.
  mm.memset_validated(p, 0x7F, xdr::Untrusted<std::uint64_t>(64));
  for (auto byte : mm.resolve_validated(p, xdr::Untrusted<std::uint64_t>(64)))
    EXPECT_EQ(byte, 0x7F);
  // A placement record whose end wraps the address space is simply "no".
  EXPECT_FALSE(
      mm.can_allocate_at_validated(xdr::Untrusted<DevPtr>(~0ull - 64),
                                   xdr::Untrusted<std::uint64_t>(4096)));
  mm.free(p);
}

// --------------------------------- device ----------------------------------

fatbin::CubinImage device_test_image() {
  fatbin::CubinImage img;
  img.sm_arch = 80;
  fatbin::KernelDescriptor saxpy;
  saxpy.name = "saxpy";
  saxpy.params = {{.size = 8, .align = 8, .is_pointer = true},   // y
                  {.size = 8, .align = 8, .is_pointer = true},   // x
                  {.size = 4, .align = 4, .is_pointer = false},  // a
                  {.size = 4, .align = 4, .is_pointer = false}}; // n
  img.kernels.push_back(saxpy);

  fatbin::GlobalSymbol g;
  g.name = "g_counter";
  g.size = 4;
  img.globals.push_back(g);
  img.code = fatbin::make_pseudo_isa(128, 1);
  return img;
}

void register_saxpy(KernelRegistry& reg) {
  reg.register_kernel("saxpy", [](LaunchContext& ctx) {
    const DevPtr y = ctx.ptr_param(0);
    const DevPtr x = ctx.ptr_param(1);
    const float a = ctx.param<float>(2);
    const auto n = ctx.param<std::uint32_t>(3);
    auto ys = ctx.mem_as<float>(y, n);
    auto xs = ctx.mem_as<float>(x, n);
    for (std::uint32_t i = 0; i < n; ++i) ys[i] += a * xs[i];
    ctx.charge_flops(2.0 * n);
    ctx.charge_dram_bytes(12.0 * n);
  });
}

struct DeviceFixture : ::testing::Test {
  DeviceFixture() : device(a100_props(), clock, registry, pool) {
    register_saxpy(registry);
  }

  sim::SimClock clock;
  KernelRegistry registry;
  ThreadPool pool{2};
  Device device;
};

std::vector<std::uint8_t> pack_saxpy_params(DevPtr y, DevPtr x, float a,
                                            std::uint32_t n) {
  std::vector<std::uint8_t> buf(24);
  std::memcpy(buf.data() + 0, &y, 8);
  std::memcpy(buf.data() + 8, &x, 8);
  std::memcpy(buf.data() + 16, &a, 4);
  std::memcpy(buf.data() + 20, &n, 4);
  return buf;
}

TEST_F(DeviceFixture, MallocMemcpyRoundTrip) {
  const DevPtr p = device.malloc(1024);
  std::vector<std::uint8_t> in(1024);
  std::iota(in.begin(), in.end(), std::uint8_t{0});
  device.memcpy_h2d(p, in);
  std::vector<std::uint8_t> out(1024);
  device.memcpy_d2h(out, p);
  EXPECT_EQ(out, in);
  device.free(p);
  EXPECT_GT(clock.now(), 0);  // all of that charged virtual time
}

TEST_F(DeviceFixture, DeviceToDeviceCopy) {
  const DevPtr a = device.malloc(256);
  const DevPtr b = device.malloc(256);
  std::vector<std::uint8_t> in(256, 0x42);
  device.memcpy_h2d(a, in);
  device.memcpy_d2d(b, a, 256);
  std::vector<std::uint8_t> out(256);
  device.memcpy_d2h(out, b);
  EXPECT_EQ(out, in);
  EXPECT_EQ(device.stats().bytes_d2d, 256u);
}

TEST_F(DeviceFixture, ModuleLoadResolvesKernelAndGlobal) {
  const auto image = fatbin::cubin_serialize(device_test_image());
  const ModuleId mod = device.load_module(image);
  const FuncId fn = device.get_function(mod, "saxpy");
  EXPECT_EQ(device.function_desc(fn).name, "saxpy");
  const DevPtr g = device.get_global(mod, "g_counter");
  EXPECT_NE(g, 0u);
  EXPECT_THROW((void)device.get_function(mod, "nope"), DeviceError);
  EXPECT_THROW((void)device.get_global(mod, "nope"), DeviceError);
  device.unload_module(mod);
  EXPECT_THROW((void)device.get_function(mod, "saxpy"), DeviceError);
}

TEST_F(DeviceFixture, LaunchComputesSaxpy) {
  const auto image = fatbin::cubin_serialize(device_test_image());
  const ModuleId mod = device.load_module(image);
  const FuncId fn = device.get_function(mod, "saxpy");

  constexpr std::uint32_t n = 1000;
  const DevPtr x = device.malloc(n * 4);
  const DevPtr y = device.malloc(n * 4);
  std::vector<float> xs(n), ys(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    xs[i] = static_cast<float>(i);
    ys[i] = 1.0f;
  }
  device.memcpy_h2d(x, {reinterpret_cast<std::uint8_t*>(xs.data()), n * 4});
  device.memcpy_h2d(y, {reinterpret_cast<std::uint8_t*>(ys.data()), n * 4});

  device.launch(fn, Dim3{(n + 255) / 256, 1, 1}, Dim3{256, 1, 1}, 0,
                kDefaultStream, pack_saxpy_params(y, x, 2.0f, n));
  device.stream_synchronize(kDefaultStream);

  std::vector<float> out(n);
  device.memcpy_d2h({reinterpret_cast<std::uint8_t*>(out.data()), n * 4}, y);
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(out[i], 1.0f + 2.0f * static_cast<float>(i));
  EXPECT_EQ(device.stats().kernels_launched, 1u);
}

TEST_F(DeviceFixture, LaunchValidatesParamBufferSize) {
  const ModuleId mod =
      device.load_module(fatbin::cubin_serialize(device_test_image()));
  const FuncId fn = device.get_function(mod, "saxpy");
  const std::vector<std::uint8_t> short_params(8);
  EXPECT_THROW(device.launch(fn, Dim3{1}, Dim3{1}, 0, kDefaultStream,
                             short_params),
               LaunchError);
}

TEST_F(DeviceFixture, LaunchValidatesGeometry) {
  const ModuleId mod =
      device.load_module(fatbin::cubin_serialize(device_test_image()));
  const FuncId fn = device.get_function(mod, "saxpy");
  const auto params = pack_saxpy_params(0, 0, 0, 0);
  EXPECT_THROW(device.launch(fn, Dim3{0}, Dim3{1}, 0, kDefaultStream, params),
               LaunchError);
  EXPECT_THROW(
      device.launch(fn, Dim3{1}, Dim3{2048}, 0, kDefaultStream, params),
      LaunchError);
  EXPECT_THROW(device.launch(fn, Dim3{1}, Dim3{1}, 1 << 20, kDefaultStream,
                             params),
               LaunchError);
}

TEST_F(DeviceFixture, StreamTimelinesAreIndependent) {
  const ModuleId mod =
      device.load_module(fatbin::cubin_serialize(device_test_image()));
  const FuncId fn = device.get_function(mod, "saxpy");
  const DevPtr x = device.malloc(4);
  const DevPtr y = device.malloc(4);
  const auto params = pack_saxpy_params(y, x, 1.0f, 1);

  const StreamId s1 = device.stream_create();
  const StreamId s2 = device.stream_create();
  const auto t0 = clock.now();
  device.launch(fn, Dim3{1}, Dim3{1}, 0, s1, params);
  device.launch(fn, Dim3{1}, Dim3{1}, 0, s2, params);
  // Two tiny kernels on separate streams overlap: syncing both costs about
  // one kernel's device time, not two.
  device.stream_synchronize(s1);
  const auto after_s1 = clock.now();
  device.stream_synchronize(s2);
  const auto after_s2 = clock.now();
  EXPECT_GT(after_s1, t0);
  // s2's completion should be nearly contemporaneous with s1's.
  EXPECT_LT(after_s2 - after_s1, after_s1 - t0);
  device.stream_destroy(s1);
  device.stream_destroy(s2);
}

TEST_F(DeviceFixture, SerializedLaunchesAccumulateOnOneStream) {
  const ModuleId mod =
      device.load_module(fatbin::cubin_serialize(device_test_image()));
  const FuncId fn = device.get_function(mod, "saxpy");
  const DevPtr x = device.malloc(4);
  const DevPtr y = device.malloc(4);
  const auto params = pack_saxpy_params(y, x, 1.0f, 1);

  const auto t0 = clock.now();
  device.launch(fn, Dim3{1}, Dim3{1}, 0, kDefaultStream, params);
  device.stream_synchronize(kDefaultStream);
  const auto one_kernel = clock.now() - t0;
  const auto t1 = clock.now();
  for (int i = 0; i < 10; ++i)
    device.launch(fn, Dim3{1}, Dim3{1}, 0, kDefaultStream, params);
  device.stream_synchronize(kDefaultStream);
  const auto ten_kernels = clock.now() - t1;
  // Same-stream kernels serialize on the device timeline: ten launches cost
  // several times one launch (submission pipelining allows < 10x).
  EXPECT_GE(ten_kernels, 3 * one_kernel);
}

TEST_F(DeviceFixture, EventsMeasureStreamTime) {
  const ModuleId mod =
      device.load_module(fatbin::cubin_serialize(device_test_image()));
  const FuncId fn = device.get_function(mod, "saxpy");
  constexpr std::uint32_t n = 1u << 20;
  const DevPtr x = device.malloc(n * 4);
  const DevPtr y = device.malloc(n * 4);

  const EventId start = device.event_create();
  const EventId stop = device.event_create();
  device.event_record(start, kDefaultStream);
  device.launch(fn, Dim3{n / 256}, Dim3{256}, 0, kDefaultStream,
                pack_saxpy_params(y, x, 3.0f, n));
  device.event_record(stop, kDefaultStream);
  device.event_synchronize(stop);
  const float ms = device.event_elapsed_ms(start, stop);
  EXPECT_GT(ms, 0.0f);
  device.event_destroy(start);
  device.event_destroy(stop);
}

TEST_F(DeviceFixture, EventErrors) {
  const EventId e = device.event_create();
  EXPECT_THROW((void)device.event_elapsed_ms(e, e), DeviceError);  // unrecorded
  device.event_destroy(e);
  EXPECT_THROW(device.event_destroy(e), DeviceError);
  EXPECT_THROW(device.event_record(e, kDefaultStream), DeviceError);
}

TEST_F(DeviceFixture, StreamErrors) {
  EXPECT_THROW(device.stream_destroy(kDefaultStream), DeviceError);
  EXPECT_THROW(device.stream_destroy(999), DeviceError);
  EXPECT_THROW(device.stream_synchronize(999), DeviceError);
}

TEST_F(DeviceFixture, UnregisteredKernelFailsAtLaunch) {
  fatbin::CubinImage img = device_test_image();
  img.kernels[0].name = "not_registered_anywhere";
  const ModuleId mod = device.load_module(fatbin::cubin_serialize(img));
  const FuncId fn = device.get_function(mod, "not_registered_anywhere");
  const auto params = pack_saxpy_params(0, 0, 0, 0);
  EXPECT_THROW(device.launch(fn, Dim3{1}, Dim3{1}, 0, kDefaultStream, params),
               LaunchError);
}

TEST_F(DeviceFixture, ModuleGlobalIsInitialized) {
  fatbin::CubinImage img = device_test_image();
  img.globals[0].init = {0xAA, 0xBB, 0xCC, 0xDD};
  const ModuleId mod = device.load_module(fatbin::cubin_serialize(img));
  const DevPtr g = device.get_global(mod, "g_counter");
  std::vector<std::uint8_t> out(4);
  device.memcpy_d2h(out, g);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xAA, 0xBB, 0xCC, 0xDD}));
}

TEST_F(DeviceFixture, UnloadModuleFreesGlobals) {
  const auto before = device.memory().allocation_count();
  const ModuleId mod =
      device.load_module(fatbin::cubin_serialize(device_test_image()));
  EXPECT_EQ(device.memory().allocation_count(), before + 1);  // g_counter
  device.unload_module(mod);
  EXPECT_EQ(device.memory().allocation_count(), before);
}

TEST_F(DeviceFixture, RestoreMergeRefusesWrappingPlacementUntouched) {
  const DevPtr live = device.malloc(4096);
  const std::uint64_t used = device.memory().bytes_in_use();

  // A migration-image allocation record whose addr + size wraps past
  // UINT64_MAX: the validated placement check refuses it outright, and the
  // all-or-nothing contract means the device keeps exactly its prior state.
  DeviceSnapshot hostile;
  DeviceSnapshot::AllocationRecord rec;
  rec.addr = ~0ull - 64;
  rec.size = 4096;
  rec.bytes.assign(rec.size, 0xAB);
  hostile.allocations.push_back(rec);
  EXPECT_THROW(device.restore_merge(hostile), DeviceError);
  EXPECT_EQ(device.memory().bytes_in_use(), used);
  EXPECT_EQ(device.memory().allocation_count(), 1u);
  device.free(live);
}

TEST_F(DeviceFixture, BiggerKernelsTakeLongerVirtualTime) {
  const ModuleId mod =
      device.load_module(fatbin::cubin_serialize(device_test_image()));
  const FuncId fn = device.get_function(mod, "saxpy");
  const DevPtr x = device.malloc((1u << 24) * 4);
  const DevPtr y = device.malloc((1u << 24) * 4);

  device.launch(fn, Dim3{1}, Dim3{256}, 0, kDefaultStream,
                pack_saxpy_params(y, x, 1.0f, 1u << 10));
  device.stream_synchronize(kDefaultStream);
  const auto small = clock.now();

  device.launch(fn, Dim3{1}, Dim3{256}, 0, kDefaultStream,
                pack_saxpy_params(y, x, 1.0f, 1u << 24));
  device.stream_synchronize(kDefaultStream);
  const auto big = clock.now() - small;
  EXPECT_GT(big, small);
}

TEST(DeviceProps, PresetsAreOrderedSensibly) {
  EXPECT_GT(a100_props().mem_bandwidth_gbps, t4_props().mem_bandwidth_gbps);
  EXPECT_GT(t4_props().sm_arch, p40_props().sm_arch);
  EXPECT_EQ(a100_props().sm_arch, 80u);
}

}  // namespace
}  // namespace cricket::gpusim
