// Tenancy subsystem: token bucket, SessionManager quotas/auth/sharding,
// the two-level fair-share scheduler, and end-to-end admission control
// through a full CricketServer (quota rejections answered before argument
// decode with the connection surviving).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cricket/client.hpp"
#include "cricket/scheduler.hpp"
#include "cricket/server.hpp"
#include "cudart/error.hpp"
#include "obs/metrics.hpp"
#include "rpc/transport.hpp"
#include "sim/sim_clock.hpp"
#include "tenancy/session_manager.hpp"
#include "tenancy/token_bucket.hpp"

namespace cricket::tenancy {
namespace {

// ---------------------------- token bucket -------------------------------

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket bucket(0, 1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(1 << 20, 0));
}

TEST(TokenBucket, BurstThenRefillOverVirtualTime) {
  TokenBucket bucket(1000, 500);  // 1000 B/s, 500 B burst
  EXPECT_TRUE(bucket.try_take(500, 0));   // full burst available
  EXPECT_FALSE(bucket.try_take(1, 0));    // drained
  // 100 virtual ms refills 100 bytes.
  EXPECT_FALSE(bucket.try_take(101, sim::kMillisecond * 100));
  EXPECT_TRUE(bucket.try_take(100, sim::kMillisecond * 100));
  // A full second refills back to burst capacity, never beyond it.
  EXPECT_FALSE(bucket.try_take(501, sim::kSecond * 2));
  EXPECT_TRUE(bucket.try_take(500, sim::kSecond * 2));
}

TEST(TokenBucket, RequestAboveBurstNeverSucceeds) {
  TokenBucket bucket(1000, 100);
  EXPECT_FALSE(bucket.try_take(101, sim::kSecond * 1000));
  // But exactly burst-size requests still pass.
  EXPECT_TRUE(bucket.try_take(100, sim::kSecond * 1000));
}

TEST(TokenBucket, SubTokenRemaindersAccumulate) {
  TokenBucket bucket(1, 10);  // 1 byte per virtual second
  ASSERT_TRUE(bucket.try_take(10, 0));
  // 0.5 s refills nothing, but the half token is not lost: two half-second
  // steps yield one byte.
  EXPECT_FALSE(bucket.try_take(1, sim::kSecond / 2));
  EXPECT_TRUE(bucket.try_take(1, sim::kSecond));
}

// --------------------------- session manager -----------------------------

struct SessionManagerTest : ::testing::Test {
  sim::SimClock clock;
  SessionManager tenants{clock, {.device_count = 4, .default_tenant = ""}};

  TenantId add(const std::string& name, TenantQuota quota = {},
               std::uint32_t weight = 1) {
    tenancy::TenantSpec spec;
    spec.name = name;
    spec.weight = weight;
    spec.quota = quota;
    return tenants.register_tenant(spec);
  }

  static rpc::OpaqueAuth cred(const std::string& name) {
    rpc::AuthSysParms parms;
    parms.machinename = name;
    return parms.to_opaque();
  }
};

TEST_F(SessionManagerTest, AuthenticatesByMachinename) {
  const TenantId alice = add("alice");
  const TenantId bob = add("bob");
  EXPECT_EQ(tenants.authenticate(cred("alice")), alice);
  EXPECT_EQ(tenants.authenticate(cred("bob")), bob);
  EXPECT_EQ(tenants.authenticate(cred("mallory")), std::nullopt);
  EXPECT_EQ(tenants.authenticate(rpc::OpaqueAuth{}), std::nullopt);
}

TEST_F(SessionManagerTest, DefaultTenantCatchesUnknownCredentials) {
  sim::SimClock clk;
  SessionManager with_default(clk, {.device_count = 1,
                                    .default_tenant = "anon"});
  tenancy::TenantSpec spec;
  spec.name = "anon";
  const TenantId anon = with_default.register_tenant(spec);
  EXPECT_EQ(with_default.authenticate(cred("stranger")), anon);
  EXPECT_EQ(with_default.authenticate(rpc::OpaqueAuth{}), anon);
}

TEST_F(SessionManagerTest, ReRegistrationKeepsIdAndUpdatesQuota) {
  const TenantId id = add("alice", {.max_outstanding_calls = 1});
  EXPECT_EQ(add("alice", {.max_outstanding_calls = 2}), id);
  ASSERT_TRUE(tenants.admit_call(id, 10).admitted);
  EXPECT_TRUE(tenants.admit_call(id, 10).admitted);  // new cap of 2 applies
  EXPECT_FALSE(tenants.admit_call(id, 10).admitted);
}

TEST_F(SessionManagerTest, ShardingIsConsistentAndInRange) {
  std::vector<TenantId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(add("t" + std::to_string(i)));
  for (const auto id : ids) {
    const auto dev = tenants.shard_device(id);
    EXPECT_LT(dev, 4u);
    EXPECT_EQ(tenants.shard_device(id), dev);  // stable
  }
}

TEST_F(SessionManagerTest, SessionLimitEnforced) {
  const TenantId id = add("alice", {.max_sessions = 2});
  EXPECT_TRUE(tenants.open_session(id, 1).admitted);
  EXPECT_TRUE(tenants.open_session(id, 2).admitted);
  const auto third = tenants.open_session(id, 3);
  EXPECT_FALSE(third.admitted);
  EXPECT_EQ(third.reason, RejectReason::kSessionLimit);
  tenants.close_session(id, 1);
  EXPECT_TRUE(tenants.open_session(id, 3).admitted);
  EXPECT_EQ(tenants.stats(id).sessions_opened, 3u);
  EXPECT_EQ(tenants.stats(id).sessions_closed, 1u);
}

TEST_F(SessionManagerTest, OutstandingCallCapAndRateLimit) {
  const TenantId id =
      add("alice", {.max_outstanding_calls = 2, .bytes_per_sec = 1000,
                    .burst_bytes = 100});
  ASSERT_TRUE(tenants.admit_call(id, 40).admitted);
  ASSERT_TRUE(tenants.admit_call(id, 40).admitted);
  const auto capped = tenants.admit_call(id, 1);
  EXPECT_FALSE(capped.admitted);
  EXPECT_EQ(capped.reason, RejectReason::kOutstandingCalls);
  tenants.complete_call(id);
  // Slot free but the bucket only has 20 bytes left.
  const auto limited = tenants.admit_call(id, 40);
  EXPECT_FALSE(limited.admitted);
  EXPECT_EQ(limited.reason, RejectReason::kRateLimited);
  clock.advance(sim::kSecond);  // refill
  EXPECT_TRUE(tenants.admit_call(id, 40).admitted);
  const auto stats = tenants.stats(id);
  EXPECT_EQ(stats.calls_admitted, 3u);
  EXPECT_EQ(stats.calls_rejected, 2u);
  EXPECT_EQ(stats.rejected_by_reason[static_cast<std::uint32_t>(
                RejectReason::kOutstandingCalls)],
            1u);
  EXPECT_EQ(stats.rejected_by_reason[static_cast<std::uint32_t>(
                RejectReason::kRateLimited)],
            1u);
}

TEST_F(SessionManagerTest, MemoryQuotaAllOrNothing) {
  const TenantId id = add("alice", {.device_mem_bytes = 1000});
  EXPECT_TRUE(tenants.try_charge_memory(id, 600));
  EXPECT_FALSE(tenants.try_charge_memory(id, 500));   // would exceed
  EXPECT_EQ(tenants.stats(id).mem_used_bytes, 600u);  // charge untouched
  EXPECT_TRUE(tenants.try_charge_memory(id, 400));
  EXPECT_TRUE(tenants.memory_exhausted(id));
  tenants.release_memory(id, 400);
  EXPECT_FALSE(tenants.memory_exhausted(id));
  EXPECT_EQ(tenants.stats(id).mem_peak_bytes, 1000u);
}

// The regression the satellite asks for: every session of a tenant closes
// while the tenant still holds device memory. The quota must survive the
// sessions (allocations outlive connections until freed), keep refusing
// over-quota charges, and release cleanly afterwards.
TEST_F(SessionManagerTest, QuotaSurvivesAllSessionsClosing) {
  const TenantId id = add("alice", {.device_mem_bytes = 1000});
  ASSERT_TRUE(tenants.open_session(id, 1).admitted);
  ASSERT_TRUE(tenants.try_charge_memory(id, 1000));
  tenants.close_session(id, 1);
  EXPECT_EQ(tenants.stats(id).open_sessions, 0u);
  EXPECT_TRUE(tenants.memory_exhausted(id));
  // A fresh session still cannot allocate past the held quota...
  ASSERT_TRUE(tenants.open_session(id, 2).admitted);
  EXPECT_FALSE(tenants.try_charge_memory(id, 1));
  // ...until the memory is actually released.
  tenants.release_memory(id, 1000);
  EXPECT_TRUE(tenants.try_charge_memory(id, 1));
}

TEST_F(SessionManagerTest, RejectionMetricsByReason) {
  obs::Counter& rate_limited = obs::Registry::global().counter(
      "cricket_tenant_admission_rejected_total", {{"reason", "rate_limited"}});
  const auto before = rate_limited.value();
  const TenantId id =
      add("alice", {.bytes_per_sec = 1, .burst_bytes = 1});
  ASSERT_FALSE(tenants.admit_call(id, 100).admitted);
  EXPECT_EQ(rate_limited.value(), before + 1);
}

}  // namespace
}  // namespace cricket::tenancy

namespace cricket::core {
namespace {

using cuda::Error;
using tenancy::SessionManager;
using tenancy::TenantId;
using tenancy::TenantQuota;

// ------------------------ two-level fair share ---------------------------

/// Pure virtual-time scheduler (max_real_block = 0): admit/charge is a
/// deterministic function of the call sequence.
SchedulerOptions deterministic_options(sim::Nanos quantum = sim::kMillisecond) {
  return {.quantum = quantum,
          .max_real_block = std::chrono::nanoseconds(0),
          .max_archived = 1024};
}

TEST(TwoLevelScheduler, TenantsSplitTimeRegardlessOfSessionCount) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                        deterministic_options());
  // Tenant 1 has four sessions, tenant 2 has one: level 1 still splits
  // device time between the *tenants*, so tenant 1's crowd must wait once
  // the group's weighted virtual time leads.
  for (std::uint64_t s = 1; s <= 4; ++s) sched.session_open(s, 1, 1, 0);
  sched.session_open(5, 2, 1, 0);
  sim::Nanos hog_wait = 0;
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t s = 1; s <= 4; ++s) {
      hog_wait += sched.admit(s);
      sched.record_usage(s, sim::kMillisecond);
    }
  }
  EXPECT_GT(hog_wait, 0);
  // The single-session tenant never leads, so it never waits.
  EXPECT_EQ(sched.admit(5), 0);
}

TEST(TwoLevelScheduler, WeightsSkewTheSplit) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                        deterministic_options());
  sched.session_open(1, 1, 3, 0);  // weight 3
  sched.session_open(2, 2, 1, 0);  // weight 1
  // Session 1 uses 3x the device time of session 2 each round — exactly its
  // weighted entitlement, so neither side should ever wait.
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(sched.admit(1), 0);
    sched.record_usage(1, 3 * sim::kMillisecond);
    EXPECT_EQ(sched.admit(2), 0);
    sched.record_usage(2, sim::kMillisecond);
  }
}

TEST(TwoLevelScheduler, HigherPriorityNeverWaitsForLower) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                        deterministic_options());
  sched.session_open(1, 1, 1, 1);  // high priority
  sched.session_open(2, 2, 1, 0);  // low priority
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(sched.admit(1), 0);  // leads massively, still never waits
    sched.record_usage(1, 10 * sim::kMillisecond);
  }
  // The low-priority tenant *does* wait once it leads the high-priority
  // one (its lead is measured against same-or-higher priority groups).
  sched.record_usage(2, 250 * sim::kMillisecond);
  EXPECT_GT(sched.admit(2), 0);
}

TEST(TwoLevelScheduler, FairShareSurvivesSessionChurn) {
  sim::SimClock clock;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                        deterministic_options());
  sched.session_open(1, 1, 1, 0);
  sched.session_open(1000, 2, 1, 0);
  std::uint64_t next = 2;
  for (int round = 0; round < 200; ++round) {
    // Tenant 1 rotates its sessions every round (unikernel churn); tenant 2
    // keeps one long-lived session.
    sched.session_open(next, 1, 1, 0);
    (void)sched.admit(next);
    sched.record_usage(next, sim::kMillisecond);
    sched.session_close(next - 1);
    ++next;
    (void)sched.admit(1000);
    sched.record_usage(1000, sim::kMillisecond);
  }
  // Equal per-round usage: the churning tenant cannot launder away its
  // group history by cycling sessions — the long-lived tenant never ends up
  // waiting more than a quantum's slack.
  const sim::Nanos wait_long_lived = sched.stats(1000).total_wait_ns;
  EXPECT_LE(wait_long_lived, 4 * sim::kMillisecond);
  EXPECT_EQ(sched.stats(1000).launches, 200u);
}

TEST(TwoLevelScheduler, DeterministicUnderVirtualClock) {
  // Two identical runs over fresh schedulers: every admit() wait and every
  // final stat must match exactly (the TSan tree runs this too, so the
  // determinism claim holds under the race detector).
  auto run = [] {
    sim::SimClock clock;
    KernelScheduler sched(SchedulerPolicy::kFairShare, clock,
                          deterministic_options(250 * sim::kMicrosecond));
    std::vector<sim::Nanos> waits;
    sched.session_open(1, 1, 2, 0);
    sched.session_open(2, 1, 2, 0);
    sched.session_open(3, 2, 1, 0);
    for (int round = 0; round < 100; ++round) {
      waits.push_back(sched.admit(1));
      sched.record_usage(1, ((round % 7) + 1) * sim::kMicrosecond * 100);
      waits.push_back(sched.admit(2));
      sched.record_usage(2, ((round % 3) + 1) * sim::kMicrosecond * 100);
      if (round % 10 == 9) {
        sched.session_close(3);
        sched.session_open(3, 2, 1, 0);
      }
      waits.push_back(sched.admit(3));
      sched.record_usage(3, sim::kMicrosecond * 150);
    }
    waits.push_back(sched.stats(1).total_wait_ns);
    waits.push_back(sched.stats(2).total_wait_ns);
    waits.push_back(clock.now());
    return waits;
  };
  EXPECT_EQ(run(), run());
}

TEST(TwoLevelScheduler, ArchiveEvictionIsFifoBounded) {
  sim::SimClock clock;
  SchedulerOptions options = deterministic_options();
  options.max_archived = 8;
  KernelScheduler sched(SchedulerPolicy::kFairShare, clock, options);
  for (std::uint64_t s = 1; s <= 20; ++s) {
    sched.session_open(s);
    (void)sched.admit(s);
    sched.session_close(s);
  }
  EXPECT_EQ(sched.archive_evictions(), 12u);
  // The newest 8 remain queryable; the oldest were evicted FIFO.
  EXPECT_EQ(sched.stats(20).launches, 1u);
  EXPECT_EQ(sched.stats(1).launches, 0u);
}

// ------------------------- end-to-end admission --------------------------

/// Full client<->server stack over an in-process pipe with multi-tenant
/// admission enabled.
struct TenancyFixture : ::testing::Test {
  TenancyFixture()
      : node(cuda::GpuNode::make_paper_testbed()),
        tenants(node->clock(),
                {.device_count =
                     static_cast<std::uint32_t>(node->device_count()),
                 .default_tenant = ""}) {}

  ~TenancyFixture() override { disconnect_all(); }

  CricketServer& server() {
    if (!server_) {
      ServerOptions options;
      options.scheduler = SchedulerPolicy::kFairShare;
      options.scheduler_options = {.quantum = sim::kMillisecond,
                                   .max_real_block =
                                       std::chrono::nanoseconds(0),
                                   .max_archived = 64};
      options.tenants = &tenants;
      server_ = std::make_unique<CricketServer>(*node, options);
    }
    return *server_;
  }

  RemoteCudaApi& connect(const std::string& tenant) {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    threads.push_back(server().serve_async(std::move(server_end)));
    ClientConfig config;
    config.tenant = tenant;
    apis.push_back(std::make_unique<RemoteCudaApi>(
        std::move(client_end), node->clock(), std::move(config)));
    return *apis.back();
  }

  void disconnect_all() {
    apis.clear();
    for (auto& t : threads)
      if (t.joinable()) t.join();
    threads.clear();
  }

  TenantId add(const std::string& name, TenantQuota quota = {}) {
    tenancy::TenantSpec spec;
    spec.name = name;
    spec.quota = quota;
    return tenants.register_tenant(spec);
  }

  std::unique_ptr<cuda::GpuNode> node;
  SessionManager tenants;
  std::unique_ptr<CricketServer> server_;
  std::vector<std::unique_ptr<RemoteCudaApi>> apis;
  std::vector<std::thread> threads;
};

TEST_F(TenancyFixture, SessionBindsToTenantAndShardsToItsDevice) {
  const TenantId alice = add("alice");
  auto& api = connect("alice");
  int device = -1;
  ASSERT_EQ(api.get_device(device), Error::kSuccess);
  EXPECT_EQ(device, static_cast<int>(tenants.shard_device(alice)));
  EXPECT_GT(tenants.stats(alice).calls_admitted, 0u);
  EXPECT_EQ(tenants.stats(alice).open_sessions, 1u);
  disconnect_all();
  EXPECT_EQ(tenants.stats(alice).open_sessions, 0u);
}

TEST_F(TenancyFixture, UnknownTenantIsDeniedWithoutCrashing) {
  add("alice");
  auto& api = connect("mallory");
  int n = 0;
  EXPECT_EQ(api.get_device_count(n), Error::kRpcFailure);  // auth denial
  // The server thread survives; a legitimate tenant still gets service.
  auto& ok = connect("alice");
  EXPECT_EQ(ok.get_device_count(n), Error::kSuccess);
}

TEST_F(TenancyFixture, RateLimitRejectsBeforeDecodeAndConnectionSurvives) {
  TenantQuota quota;
  quota.bytes_per_sec = 1;   // ~nothing refills without explicit advance
  quota.burst_bytes = 200;   // enough for roughly two small calls
  const TenantId alice = add("alice", quota);
  auto& api = connect("alice");

  int n = 0;
  ASSERT_EQ(api.get_device_count(n), Error::kSuccess);  // burst covers this

  obs::Counter& decodes =
      obs::Registry::global().counter("cricket_rpc_args_decode_total", {});
  // Hammer until the bucket runs dry.
  Error err = Error::kSuccess;
  for (int i = 0; i < 16 && err == Error::kSuccess; ++i)
    err = api.get_device_count(n);
  ASSERT_EQ(err, Error::kQuotaExceeded);

  // The rejection happens at admission: a further over-quota call must not
  // advance the argument-decode counter.
  const auto decodes_before = decodes.value();
  EXPECT_EQ(api.get_device_count(n), Error::kQuotaExceeded);
  EXPECT_EQ(decodes.value(), decodes_before);

  // Same connection, after backoff (virtual time refills the bucket):
  // service resumes — the rejection never dropped the transport.
  node->clock().advance(sim::kSecond * 300);
  EXPECT_EQ(api.get_device_count(n), Error::kSuccess);
  EXPECT_GT(tenants.stats(alice).calls_rejected, 0u);
}

TEST_F(TenancyFixture, DeviceMemoryQuotaChargesAndReleases) {
  TenantQuota quota;
  quota.device_mem_bytes = 1 << 20;
  const TenantId alice = add("alice", quota);
  auto& api = connect("alice");

  cuda::DevPtr a = 0;
  ASSERT_EQ(api.malloc(a, 1 << 20), Error::kSuccess);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 1u << 20);

  // At quota: the next malloc is refused pre-decode (admission sees the
  // exhausted quota before the arguments are even parsed).
  obs::Counter& decodes =
      obs::Registry::global().counter("cricket_rpc_args_decode_total", {});
  const auto decodes_before = decodes.value();
  cuda::DevPtr b = 0;
  EXPECT_EQ(api.malloc(b, 16), Error::kQuotaExceeded);
  EXPECT_EQ(decodes.value(), decodes_before);

  ASSERT_EQ(api.free(a), Error::kSuccess);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
  EXPECT_EQ(api.malloc(b, 16), Error::kSuccess);

  // Partial headroom: a malloc that would overshoot is refused in-band
  // (all-or-nothing), with the same typed error.
  cuda::DevPtr c = 0;
  EXPECT_EQ(api.malloc(c, 1 << 20), Error::kQuotaExceeded);
}

TEST_F(TenancyFixture, SessionLimitRejectsExtraConnections) {
  TenantQuota quota;
  quota.max_sessions = 1;
  add("alice", quota);
  auto& first = connect("alice");
  int n = 0;
  ASSERT_EQ(first.get_device_count(n), Error::kSuccess);
  auto& second = connect("alice");
  EXPECT_EQ(second.get_device_count(n), Error::kQuotaExceeded);
  // The first session is unaffected.
  EXPECT_EQ(first.get_device_count(n), Error::kSuccess);
}

TEST_F(TenancyFixture, LeakedAllocationsReleaseTenantQuotaOnDisconnect) {
  TenantQuota quota;
  quota.device_mem_bytes = 1 << 20;
  const TenantId alice = add("alice", quota);
  {
    auto& api = connect("alice");
    cuda::DevPtr p = 0;
    ASSERT_EQ(api.malloc(p, 1 << 20), Error::kSuccess);
    // Client vanishes without freeing.
  }
  disconnect_all();
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
  EXPECT_EQ(tenants.stats(alice).open_sessions, 0u);
}

}  // namespace
}  // namespace cricket::core
