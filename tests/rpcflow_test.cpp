// rpcflow: pipelined channel, small-call batcher, pipelined server loop, and
// the async Cricket client end-to-end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cricket/async_api.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "rpcflow/batcher.hpp"
#include "rpcflow/channel.hpp"
#include "workloads/histogram.hpp"
#include "workloads/kernels.hpp"
#include "workloads/matrix_mul.hpp"

namespace cricket::rpcflow {
namespace {

using namespace std::chrono_literals;

constexpr std::uint32_t kProg = 0x20000002;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcAdd = 1;
constexpr std::uint32_t kProcDelayEcho = 2;  // (value, delay_ms) -> value
constexpr std::uint32_t kProcTrack = 3;      // concurrency probe

/// Counts transport sends without consuming them (batcher unit tests).
class RecordingTransport final : public rpc::Transport {
 public:
  void send(std::span<const std::uint8_t> data) override {
    std::lock_guard lock(mu_);
    ++sends_;
    bytes_ += data.size();
  }
  std::size_t recv(std::span<std::uint8_t>) override { return 0; }
  void shutdown() override {}

  [[nodiscard]] std::uint64_t sends() const {
    std::lock_guard lock(mu_);
    return sends_;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    std::lock_guard lock(mu_);
    return bytes_;
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t sends_ = 0;
  std::uint64_t bytes_ = 0;
};

std::vector<std::uint8_t> record_of(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0xAB);
}

TEST(CallBatcherTest, DisabledSendsEachRecordImmediately) {
  RecordingTransport wire;
  CallBatcher batcher(wire, CallBatcher::Options{.enabled = false},
                      rpc::RecordWriter::kDefaultMaxFragment);
  batcher.append(record_of(40));
  batcher.append(record_of(40));
  batcher.append(record_of(40));
  EXPECT_EQ(wire.sends(), 3u);
  EXPECT_EQ(batcher.stats().records, 3u);
  EXPECT_EQ(batcher.stats().batches, 3u);
}

TEST(CallBatcherTest, FlushesWhenRecordCountFills) {
  RecordingTransport wire;
  CallBatcher batcher(wire,
                      CallBatcher::Options{.enabled = true,
                                           .max_bytes = 1 << 20,
                                           .max_calls = 2,
                                           .deadline = 0us},
                      rpc::RecordWriter::kDefaultMaxFragment);
  batcher.append(record_of(40));
  EXPECT_EQ(wire.sends(), 0u);  // below both thresholds: buffered
  batcher.append(record_of(40));
  batcher.append(record_of(40));
  batcher.append(record_of(40));
  EXPECT_EQ(wire.sends(), 2u);  // two full batches of two calls each
  EXPECT_EQ(batcher.stats().flush_full, 2u);
  // Each batch is one send carrying both record-marked calls.
  EXPECT_EQ(wire.bytes(), 4 * (4u + 40u));
}

TEST(CallBatcherTest, FlushesWhenByteThresholdFills) {
  RecordingTransport wire;
  CallBatcher batcher(wire,
                      CallBatcher::Options{.enabled = true,
                                           .max_bytes = 64,
                                           .max_calls = 1000,
                                           .deadline = 0us},
                      rpc::RecordWriter::kDefaultMaxFragment);
  batcher.append(record_of(40));  // 44 wire bytes: buffered
  EXPECT_EQ(wire.sends(), 0u);
  batcher.append(record_of(40));  // 88 wire bytes: over the cap
  EXPECT_EQ(wire.sends(), 1u);
  EXPECT_EQ(batcher.stats().flush_full, 1u);
}

TEST(CallBatcherTest, FlushesOnDeadlineWithoutHelp) {
  RecordingTransport wire;
  CallBatcher batcher(wire,
                      CallBatcher::Options{.enabled = true,
                                           .max_bytes = 1 << 20,
                                           .max_calls = 1000,
                                           .deadline = 2ms},
                      rpc::RecordWriter::kDefaultMaxFragment);
  batcher.append(record_of(40));
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (wire.sends() == 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(wire.sends(), 1u);
  EXPECT_EQ(batcher.stats().flush_deadline, 1u);
}

TEST(CallBatcherTest, ExplicitFlushDrainsTheBuffer) {
  RecordingTransport wire;
  CallBatcher batcher(wire,
                      CallBatcher::Options{.enabled = true,
                                           .max_bytes = 1 << 20,
                                           .max_calls = 1000,
                                           .deadline = 0us},
                      rpc::RecordWriter::kDefaultMaxFragment);
  batcher.append(record_of(40));
  batcher.append(record_of(40));
  EXPECT_EQ(wire.sends(), 0u);
  batcher.flush();
  EXPECT_EQ(wire.sends(), 1u);
  EXPECT_EQ(batcher.stats().flush_explicit, 1u);
  batcher.flush();  // empty flush is a no-op
  EXPECT_EQ(wire.sends(), 1u);
}

/// Pipe-connected channel + pipelined server with concurrency probes.
class ChannelHarness {
 public:
  ChannelHarness(rpc::ServeOptions serve, ChannelOptions channel_options) {
    registry_.register_typed<std::uint32_t, std::uint32_t, std::uint32_t>(
        kProg, kVers, kProcAdd,
        [](std::uint32_t a, std::uint32_t b) { return a + b; });
    registry_.register_typed<std::uint32_t, std::uint32_t, std::uint32_t>(
        kProg, kVers, kProcDelayEcho,
        [](std::uint32_t value, std::uint32_t delay_ms) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
          return value;
        });
    registry_.register_typed<std::uint32_t, std::uint32_t>(
        kProg, kVers, kProcTrack, [this](std::uint32_t value) {
          const auto cur = in_handler_.fetch_add(1) + 1;
          auto seen = max_in_handler_.load();
          while (cur > seen &&
                 !max_in_handler_.compare_exchange_weak(seen, cur)) {
          }
          std::this_thread::sleep_for(20ms);
          in_handler_.fetch_sub(1);
          return value;
        });

    auto [client_end, server_end] = rpc::make_pipe_pair();
    server_end_ = std::move(server_end);
    server_thread_ = std::thread([this, serve] {
      rpc::serve_transport(registry_, *server_end_, serve);
    });
    channel_ = std::make_unique<AsyncRpcChannel>(std::move(client_end), kProg,
                                                 kVers, channel_options);
  }

  ~ChannelHarness() {
    channel_.reset();  // shuts down the client->server direction
    if (server_thread_.joinable()) server_thread_.join();
  }

  [[nodiscard]] AsyncRpcChannel& channel() { return *channel_; }
  [[nodiscard]] std::uint32_t max_handler_concurrency() const {
    return max_in_handler_.load();
  }

 private:
  rpc::ServiceRegistry registry_;
  std::atomic<std::uint32_t> in_handler_{0};
  std::atomic<std::uint32_t> max_in_handler_{0};
  std::unique_ptr<rpc::Transport> server_end_;
  std::thread server_thread_;
  std::unique_ptr<AsyncRpcChannel> channel_;
};

TEST(AsyncRpcChannelTest, OutOfOrderRepliesMatchTheirCalls) {
  ChannelHarness h(rpc::ServeOptions{.workers = 4, .max_in_flight = 16},
                   ChannelOptions{.max_outstanding = 16});
  // The first call sleeps; the rest complete immediately on other workers,
  // so their replies overtake it on the wire.
  auto slow = h.channel().call_async<std::uint32_t>(
      kProcDelayEcho, std::uint32_t{111}, std::uint32_t{150});
  std::vector<TypedFuture<std::uint32_t>> fast;
  for (std::uint32_t i = 0; i < 3; ++i) {
    fast.push_back(h.channel().call_async<std::uint32_t>(
        kProcDelayEcho, 1000 + i, std::uint32_t{0}));
  }
  h.channel().flush();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fast[i].get(), 1000 + i);
  }
  EXPECT_FALSE(slow.ready());  // fast replies arrived while it still ran
  EXPECT_EQ(slow.get(), 111u);
  const auto stats = h.channel().stats();
  EXPECT_EQ(stats.calls, 4u);
  EXPECT_EQ(stats.replies, 4u);
  EXPECT_EQ(stats.unmatched, 0u);
}

TEST(AsyncRpcChannelTest, WindowSaturatesAtMaxOutstanding) {
  ChannelHarness h(rpc::ServeOptions{.workers = 4, .max_in_flight = 64},
                   ChannelOptions{.max_outstanding = 4});
  std::vector<TypedFuture<std::uint32_t>> futures;
  for (std::uint32_t i = 0; i < 32; ++i) {
    futures.push_back(h.channel().call_async<std::uint32_t>(
        kProcDelayEcho, i, std::uint32_t{5}));
  }
  h.channel().flush();
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i);
  }
  const auto stats = h.channel().stats();
  EXPECT_EQ(stats.replies, 32u);
  EXPECT_EQ(stats.max_in_flight, 4u);  // saturated, never exceeded
}

TEST(AsyncRpcChannelTest, ServerWorkerPoolRunsHandlersConcurrently) {
  ChannelHarness h(rpc::ServeOptions{.workers = 4, .max_in_flight = 16},
                   ChannelOptions{.max_outstanding = 16});
  std::vector<TypedFuture<std::uint32_t>> futures;
  for (std::uint32_t i = 0; i < 8; ++i) {
    futures.push_back(h.channel().call_async<std::uint32_t>(kProcTrack, i));
  }
  h.channel().flush();
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(futures[i].get(), i);
  }
  EXPECT_GE(h.max_handler_concurrency(), 2u);
  EXPECT_LE(h.max_handler_concurrency(), 4u);
}

TEST(AsyncRpcChannelTest, BatchedPipelineMatchesExpectedResults) {
  ChannelHarness h(
      rpc::ServeOptions{.workers = 2, .max_in_flight = 64},
      ChannelOptions{.max_outstanding = 64,
                     .batch = CallBatcher::Options{.enabled = true,
                                                   .max_calls = 8,
                                                   .deadline = 500us}});
  std::vector<TypedFuture<std::uint32_t>> futures;
  for (std::uint32_t i = 0; i < 200; ++i) {
    futures.push_back(
        h.channel().call_async<std::uint32_t>(kProcAdd, i, 2 * i));
  }
  h.channel().drain();
  for (std::uint32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(futures[i].ready());
    EXPECT_EQ(futures[i].get(), 3 * i);
  }
  EXPECT_EQ(h.channel().stats().replies, 200u);
}

TEST(AsyncRpcChannelTest, CallLevelErrorsSurfaceThroughFutures) {
  ChannelHarness h(rpc::ServeOptions{.workers = 2, .max_in_flight = 8},
                   ChannelOptions{.max_outstanding = 8});
  auto fut = h.channel().call_async<std::uint32_t>(999);  // unknown proc
  h.channel().flush();
  try {
    (void)fut.get();
    FAIL() << "expected RpcError";
  } catch (const rpc::RpcError& e) {
    EXPECT_EQ(e.kind(), rpc::RpcError::Kind::kProcUnavail);
  }
  // The channel survives a per-call error: the next call works.
  EXPECT_EQ((h.channel().call<std::uint32_t>(kProcAdd, std::uint32_t{20},
                                             std::uint32_t{22})),
            42u);
}

TEST(AsyncRpcChannelTest, MidPipelineFailureFailsEveryPendingFuture) {
  auto [client_end, server_end] = rpc::make_pipe_pair();
  AsyncRpcChannel channel(std::move(client_end), kProg, kVers,
                          ChannelOptions{.max_outstanding = 64});
  std::vector<TypedFuture<std::uint32_t>> futures;
  for (std::uint32_t i = 0; i < 16; ++i) {
    futures.push_back(channel.call_async<std::uint32_t>(kProcAdd, i, i));
  }
  EXPECT_EQ(channel.outstanding(), 16u);
  // The "server" dies with every call still unanswered.
  server_end->shutdown();
  for (auto& fut : futures) {
    EXPECT_THROW((void)fut.get(), rpc::TransportError);
  }
  EXPECT_EQ(channel.outstanding(), 0u);
  EXPECT_EQ(channel.stats().failed, 16u);
  // drain() must not hang on a dead channel...
  channel.drain();
  // ...and new calls fail immediately instead of queueing forever.
  auto late = channel.call_async<std::uint32_t>(kProcAdd, std::uint32_t{1},
                                                std::uint32_t{1});
  EXPECT_THROW((void)late.get(), rpc::TransportError);
}

TEST(AsyncRpcChannelTest, OversizedReplyFailsUndecodedViaBoundsTable) {
  static constexpr rpc::ProcWireBounds kTable[] = {
      {kProg, kVers, kProcAdd, 8, 8, 4, 4, "add"},
  };
  auto [client_end, server_end] = rpc::make_pipe_pair();
  AsyncRpcChannel channel(
      std::move(client_end), kProg, kVers,
      ChannelOptions{.max_outstanding = 4, .bounds = kTable});
  // Raw "server": answers the call with a well-formed success reply whose
  // results blob far exceeds the procedure's proven result bound. The
  // channel must fail the future from the record length alone, before
  // decode_reply ever sees the payload.
  std::thread server([&] {
    rpc::RecordReader reader(*server_end);
    std::vector<std::uint8_t> record;
    if (!reader.read_record(record)) return;
    const rpc::CallMsg call = rpc::decode_call(record);
    rpc::ReplyMsg reply;
    reply.xid = call.xid;
    reply.results.assign(4096, 0x5A);  // proven max is 4 bytes
    rpc::RecordWriter writer(*server_end);
    writer.write_record(rpc::encode_reply(reply));
  });
  auto fut = channel.call_async<std::uint32_t>(kProcAdd, std::uint32_t{1},
                                               std::uint32_t{2});
  try {
    (void)fut.get();
    FAIL() << "expected RpcError";
  } catch (const rpc::RpcError& e) {
    EXPECT_EQ(e.kind(), rpc::RpcError::Kind::kBadReply);
  }
  server.join();
  EXPECT_EQ(channel.stats().preflight_rejected, 1u);
  EXPECT_EQ(channel.stats().failed, 1u);
  EXPECT_EQ(channel.stats().replies, 0u);
  EXPECT_EQ(channel.outstanding(), 0u);

  // The same channel stays usable: an in-bounds reply still completes.
  std::thread server2([&] {
    rpc::RecordReader reader(*server_end);
    std::vector<std::uint8_t> record;
    if (!reader.read_record(record)) return;
    const rpc::CallMsg call = rpc::decode_call(record);
    rpc::ReplyMsg reply;
    reply.xid = call.xid;
    reply.results = {0, 0, 0, 42};
    rpc::RecordWriter writer(*server_end);
    writer.write_record(rpc::encode_reply(reply));
  });
  EXPECT_EQ(
      (channel.call_async<std::uint32_t>(kProcAdd, std::uint32_t{40},
                                         std::uint32_t{2})
           .get()),
      42u);
  server2.join();
  // End the reader loop: the channel destructor joins the reader, which
  // runs until the server half-closes.
  server_end->shutdown();
}

TEST(AsyncRpcChannelTest, DrainIsIdleSafe) {
  ChannelHarness h(rpc::ServeOptions{.workers = 1, .max_in_flight = 4},
                   ChannelOptions{.max_outstanding = 4});
  h.channel().drain();
  EXPECT_EQ(h.channel().outstanding(), 0u);
}

/// End-to-end: the pipelined CUDA client against a pipelined Cricket server.
class AsyncCricketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node_ = cuda::GpuNode::make_a100();
    workloads::register_sample_kernels(node_->registry());
    core::ServerOptions server_options;
    server_options.serve.workers = 2;  // clamped to 1 by CricketServer
    server_ = std::make_unique<core::CricketServer>(*node_, server_options);
    environment_ = env::with_pipelining(
        env::make_environment(env::EnvKind::kNativeRust), 32, true);
    auto conn = env::connect(environment_, node_->clock());
    server_thread_ = server_->serve_async(std::move(conn.server));
    api_ = std::make_unique<core::AsyncRemoteCudaApi>(
        std::move(conn.guest), node_->clock(),
        core::AsyncClientConfig{.flavor = environment_.flavor,
                                .pipeline = environment_.pipeline});
  }

  void TearDown() override {
    api_.reset();
    if (server_thread_.joinable()) server_thread_.join();
  }

  std::unique_ptr<cuda::GpuNode> node_;
  std::unique_ptr<core::CricketServer> server_;
  env::Environment environment_;
  std::thread server_thread_;
  std::unique_ptr<core::AsyncRemoteCudaApi> api_;
};

TEST_F(AsyncCricketTest, MatrixMulIsBitIdenticalThroughThePipeline) {
  const auto report = workloads::run_matrix_mul(
      *api_, node_->clock(), environment_.flavor,
      workloads::MatrixMulConfig{
          .hA = 64, .wA = 64, .wB = 128, .iterations = 25, .verify = true});
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(api_->drain(), cuda::Error::kSuccess);
  EXPECT_GT(api_->stats().pipelined, 0u);  // launches actually pipelined
}

TEST_F(AsyncCricketTest, HistogramIsBitIdenticalThroughThePipeline) {
  const auto report = workloads::run_histogram(
      *api_, node_->clock(), environment_.flavor,
      workloads::HistogramConfig{
          .data_bytes = 1u << 20, .iterations = 20, .verify = true});
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(api_->drain(), cuda::Error::kSuccess);
}

TEST_F(AsyncCricketTest, SyncPointsReportPipelinedErrors) {
  // Launch through an invalid function handle: the fire-and-forget call
  // "succeeds", the error surfaces at the next synchronization point.
  EXPECT_EQ(api_->launch_kernel(/*func=*/0xDEAD, cuda::Dim3{1, 1, 1},
                                cuda::Dim3{1, 1, 1}, 0, /*stream=*/0, {}),
            cuda::Error::kSuccess);
  EXPECT_NE(api_->device_synchronize(), cuda::Error::kSuccess);
  // The sticky error was reported and cleared; the device is usable again.
  int count = 0;
  EXPECT_EQ(api_->get_device_count(count), cuda::Error::kSuccess);
  EXPECT_EQ(api_->device_synchronize(), cuda::Error::kSuccess);
}

TEST_F(AsyncCricketTest, DisconnectFailsSubsequentCalls) {
  int count = 0;
  EXPECT_EQ(api_->get_device_count(count), cuda::Error::kSuccess);
  api_->disconnect();
  EXPECT_EQ(api_->get_device_count(count), cuda::Error::kRpcFailure);
  EXPECT_EQ(api_->launch_kernel(1, cuda::Dim3{1, 1, 1}, cuda::Dim3{1, 1, 1},
                                0, 0, {}),
            cuda::Error::kRpcFailure);
}

}  // namespace
}  // namespace cricket::rpcflow
