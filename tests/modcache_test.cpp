// Content-addressed module cache (src/modcache) and fatbin ingest
// hardening: LZ round-trip/hostile-stream properties, forged-length
// refusal, cache unit semantics (refcounts, quota, LRU eviction), the
// two-phase rpc_module_load_cached negotiation end-to-end (sync + async
// clients, faulty networks, cache-less servers), and warm migration
// (cached modules travel as hashes; targets seed and adoption
// re-references without re-charging).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "cricket/async_api.hpp"
#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "fatbin/cubin.hpp"
#include "fatbin/fatbin.hpp"
#include "fatbin/lz.hpp"
#include "migrate/service.hpp"
#include "migrate/state.hpp"
#include "modcache/module_cache.hpp"
#include "rpc/transport.hpp"
#include "sim/rng.hpp"
#include "tenancy/session_manager.hpp"

namespace cricket::modcache {
namespace {

using namespace std::chrono_literals;
using core::CricketServer;
using core::RemoteCudaApi;
using cuda::Error;

/// Distinct, deterministic module images: the variant lands in the kernel
/// name and the pseudo-ISA seed, so every variant has a different content
/// hash while staying a valid cubin.
std::vector<std::uint8_t> test_image(int variant, std::size_t code_bytes = 2048) {
  fatbin::CubinImage img;
  img.sm_arch = 75;
  fatbin::KernelDescriptor k;
  k.name = "cache_mark_" + std::to_string(variant);
  k.params = {{.size = 8, .align = 8, .is_pointer = true}};
  img.kernels.push_back(k);
  img.code = fatbin::make_pseudo_isa(code_bytes,
                                     static_cast<std::uint64_t>(variant) + 3);
  return fatbin::cubin_serialize(img);
}

// ------------------------- LZ codec hardening ------------------------------

TEST(LzHardening, RoundTripPropertySweep) {
  sim::Xoshiro256ss rng(7);
  std::vector<std::vector<std::uint8_t>> inputs;
  inputs.push_back({});                                  // empty
  inputs.push_back({0x42});                              // single byte
  inputs.emplace_back(100'000, std::uint8_t{0});         // long zero run
  inputs.emplace_back(65'600, std::uint8_t{0xAB});       // run past kWindow
  for (const std::size_t n : {1u, 3u, 127u, 128u, 129u, 4096u, 70'000u}) {
    std::vector<std::uint8_t> random(n);
    for (auto& b : random) b = static_cast<std::uint8_t>(rng.next());
    inputs.push_back(std::move(random));
    // Repetitive-but-not-constant: realistic pseudo-ISA compresses well.
    inputs.push_back(fatbin::make_pseudo_isa(n, n));
  }
  for (const auto& input : inputs) {
    const auto packed = fatbin::lz_compress(input);
    const auto unpacked = fatbin::lz_decompress(packed);
    ASSERT_EQ(unpacked, input) << "round-trip of " << input.size() << " bytes";
    // No valid stream outruns the declared worst-case expansion bound.
    EXPECT_LE(input.size(), packed.size() * fatbin::kMaxExpansion);
  }
}

/// A ratio bomb: one literal byte, then max-length matches at distance 1 —
/// the densest valid encoding (~44x per stream byte).
std::vector<std::uint8_t> ratio_bomb(std::size_t tokens) {
  std::vector<std::uint8_t> bomb = {0x00, 0x5A};  // literal run of 1: 'Z'
  for (std::size_t i = 0; i < tokens; ++i) {
    bomb.push_back(0xFF);  // match, length kMaxMatch
    bomb.push_back(0x01);  // distance 1 (little-endian)
    bomb.push_back(0x00);
  }
  return bomb;
}

TEST(LzHardening, RatioBombStopsAtTheOutputCap) {
  const auto bomb = ratio_bomb(1000);  // would decompress to ~131 KB
  // Direct decompression refuses once output would pass the cap; the peak
  // allocation is bounded by the cap, not the bomb's implied size.
  EXPECT_THROW((void)fatbin::lz_decompress(bomb, 4096), fatbin::LzError);
  // The server ingest path bounds bare streams by min(cap, size * 44).
  EXPECT_THROW((void)fatbin::extract_metadata(bomb, 75, 4096),
               fatbin::LzError);
  // Even under the default cap a fully-decompressed bomb is not a cubin.
  EXPECT_THROW((void)fatbin::extract_metadata(ratio_bomb(8), 75),
               fatbin::CubinError);
}

TEST(LzHardening, HostileStreamCorpusRejected) {
  using Bytes = std::vector<std::uint8_t>;
  const struct {
    const char* name;
    Bytes stream;
  } corpus[] = {
      {"match distance zero", {0x00, 0x5A, 0x80, 0x00, 0x00}},
      {"distance past output start", {0x00, 0x5A, 0x80, 0x10, 0x00}},
      {"match before any output", {0x84, 0x01, 0x00}},
      {"truncated match token", {0x00, 0x5A, 0xFF, 0x01}},
      {"bare control byte", {0x9C}},
      {"truncated literal run", {0x05, 0x61, 0x62}},
  };
  for (const auto& bad : corpus) {
    EXPECT_THROW((void)fatbin::lz_decompress(bad.stream), fatbin::LzError)
        << bad.name;
    // Through the server ingest path the same streams must also die cleanly
    // (they are neither cubins nor fatbins, so they hit the bare-LZ branch).
    try {
      (void)fatbin::extract_metadata(bad.stream, 75);
      FAIL() << bad.name << " accepted by extract_metadata";
    } catch (const fatbin::LzError&) {
    } catch (const fatbin::CubinError&) {
    }
  }
}

// Fatbin layout: magic(4) version(4) nentries(4), then per entry
// sm_arch(4) flags(4) uncompressed_len(8) payload_len(4) payload.
constexpr std::size_t kLenFieldOffset = 4 + 4 + 4 + 4 + 4;

void patch_u64(std::vector<std::uint8_t>& bytes, std::size_t at,
               std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

TEST(LzHardening, ForgedUncompressedLenRefusedAtParse) {
  fatbin::Fatbin fb;
  fb.add_raw(75, test_image(0), /*compress=*/true);
  const auto clean = fb.serialize();
  ASSERT_NO_THROW((void)fatbin::Fatbin::parse(clean));
  const std::uint64_t plen = fb.entries()[0].payload.size();

  // Over the global module cap: refused no matter the payload.
  auto huge = clean;
  patch_u64(huge, kLenFieldOffset, fatbin::kMaxModuleBytes + 1);
  EXPECT_THROW((void)fatbin::Fatbin::parse(huge), fatbin::CubinError);

  // Under the cap but beyond what any valid token stream could produce.
  auto implausible = clean;
  patch_u64(implausible, kLenFieldOffset,
            plen * fatbin::kMaxExpansion + 1);
  EXPECT_THROW((void)fatbin::Fatbin::parse(implausible), fatbin::CubinError);

  // Uncompressed entries must declare exactly their payload size.
  fatbin::Fatbin raw;
  raw.add_raw(75, test_image(0), /*compress=*/false);
  auto mismatched = raw.serialize();
  patch_u64(mismatched, kLenFieldOffset, raw.entries()[0].payload.size() + 1);
  EXPECT_THROW((void)fatbin::Fatbin::parse(mismatched), fatbin::CubinError);
}

TEST(LzHardening, ModuleByteCapPlumbsThroughLoadAndExtract) {
  const auto image = test_image(1, 8192);
  // Under its own size the image is refused up front, compressed or not.
  EXPECT_THROW((void)fatbin::extract_metadata(image, 75, image.size() - 1),
               fatbin::CubinError);
  fatbin::Fatbin fb;
  fb.add_raw(75, image, /*compress=*/true);
  EXPECT_THROW((void)fb.load(75, image.size() - 1), fatbin::CubinError);
  EXPECT_NO_THROW((void)fb.load(75, image.size()));
}

// --------------------------- SHA-256 / hash_image --------------------------

std::vector<std::uint8_t> ascii(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

std::string hex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

TEST(Sha256Impl, FipsKnownVectors) {
  EXPECT_EQ(hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(sha256(ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex(sha256(ascii(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One million 'a's, fed in uneven chunks to cross block boundaries.
  const std::vector<std::uint8_t> as(1'000'000, std::uint8_t{'a'});
  Sha256 ctx;
  std::size_t off = 0;
  for (const std::size_t chunk : {1u, 63u, 64u, 65u, 1000u}) {
    ctx.update(std::span<const std::uint8_t>(as).subspan(off, chunk));
    off += chunk;
  }
  ctx.update(std::span<const std::uint8_t>(as).subspan(off));
  EXPECT_EQ(hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HashImage, TruncatedSha256KnownVectorsAndDispersion) {
  // First 64 bits (big-endian) of the SHA-256 vectors above.
  EXPECT_EQ(hash_image({}), 0xE3B0C44298FC1C14ull);
  EXPECT_EQ(hash_image(ascii("abc")), 0xBA7816BF8F01CFEAull);
  const auto img0 = test_image(0);
  const auto img1 = test_image(1);
  EXPECT_EQ(hash_image(img0), hash_image(img0));  // deterministic
  EXPECT_NE(hash_image(img0), hash_image(img1));  // variants diverge
}

TEST(PossessionProof, BindsTenantAndImage) {
  const auto image = test_image(0);
  const Digest alice = possession_proof("alice", image);
  // Deterministic for (name, bytes); different from either ingredient alone.
  EXPECT_TRUE(digest_equal(alice, possession_proof("alice", image)));
  EXPECT_FALSE(digest_equal(alice, possession_proof("bob", image)));
  EXPECT_FALSE(digest_equal(alice, possession_proof("alice", test_image(1))));
  // Domain-separated from the plain content digest.
  EXPECT_FALSE(digest_equal(alice, sha256(image)));
}

// --------------------------- ModuleCache unit ------------------------------

struct ModuleCacheUnit : ::testing::Test {
  ModuleCacheUnit()
      : tenants(clock, {.device_count = 2, .default_tenant = ""}) {}

  tenancy::TenantId add(const std::string& name, std::uint64_t mem_quota) {
    tenancy::TenantSpec spec;
    spec.name = name;
    spec.quota.device_mem_bytes = mem_quota;
    return tenants.register_tenant(spec);
  }

  ModuleCache make(std::uint64_t max_bytes) {
    return ModuleCache({.max_bytes = max_bytes}, &tenants,
                       [this](std::uint32_t device, std::uint64_t module) {
                         unloads.emplace_back(device, module);
                       });
  }

  /// A well-formed probe: hash and possession proof both derived from the
  /// image, the way a client holding the bytes computes them.
  static ModuleCache::Result probe(ModuleCache& cache,
                                   std::span<const std::uint8_t> image,
                                   std::uint32_t device,
                                   tenancy::TenantId tenant,
                                   std::string_view name) {
    const Digest proof = possession_proof(name, image);
    return cache.acquire(hash_image(image), device, tenant, name, proof);
  }

  sim::SimClock clock;
  tenancy::SessionManager tenants;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> unloads;
};

TEST_F(ModuleCacheUnit, MissInsertHitLifecycle) {
  const auto alice = add("alice", 1 << 20);
  auto cache = make(1 << 20);
  const std::vector<std::uint8_t> image(64, 0x11);
  const std::uint64_t hash = hash_image(image);

  auto res = probe(cache, image, 0, alice, "alice");
  EXPECT_EQ(res.outcome, ModuleCache::Outcome::kMiss);

  res = cache.insert(hash, image, 0, /*module=*/41, alice);
  ASSERT_EQ(res.outcome, ModuleCache::Outcome::kHit);
  EXPECT_EQ(res.module, 41u);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());

  // Second reference by the same tenant: same module, no second charge.
  res = probe(cache, image, 0, alice, "alice");
  ASSERT_EQ(res.outcome, ModuleCache::Outcome::kHit);
  EXPECT_EQ(res.module, 41u);
  EXPECT_EQ(res.size, image.size());
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());

  // The charge lifts only on the last release; the module stays warm.
  cache.release(hash, 0, alice);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());
  cache.release(hash, 0, alice);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
  EXPECT_TRUE(unloads.empty());
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_EQ(probe(cache, image, 0, alice, "alice").outcome,
            ModuleCache::Outcome::kHit);
}

TEST_F(ModuleCacheUnit, PerTenantChargesAndQuotaRefusal) {
  const auto alice = add("alice", 1 << 20);
  const auto bob = add("bob", 16);  // cannot cover the image
  auto cache = make(1 << 20);
  const std::vector<std::uint8_t> image(64, 0x22);
  const std::uint64_t hash = hash_image(image);
  ASSERT_EQ(cache.insert(hash, image, 0, 7, alice).outcome,
            ModuleCache::Outcome::kHit);

  // A refused charge takes no reference and leaves accounting untouched.
  EXPECT_EQ(probe(cache, image, 0, bob, "bob").outcome,
            ModuleCache::Outcome::kQuotaExceeded);
  EXPECT_EQ(tenants.stats(bob).mem_used_bytes, 0u);
  // Alice's standing is unaffected by Bob's refusal.
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());
}

TEST_F(ModuleCacheUnit, CrossDevicePromotionNeedsInstance) {
  const auto alice = add("alice", 1 << 20);
  auto cache = make(1 << 20);
  const std::vector<std::uint8_t> image(64, 0x33);
  const std::uint64_t hash = hash_image(image);
  ASSERT_EQ(cache.insert(hash, image, 0, 7, alice).outcome,
            ModuleCache::Outcome::kHit);

  // Known hash, bytes resident, but no instance on device 1: the caller is
  // told to instantiate locally from the cached bytes (zero wire traffic).
  // That answer is a promotion, not a hit — the hit counter only moves when
  // a reference is actually taken.
  EXPECT_EQ(probe(cache, image, 1, alice, "alice").outcome,
            ModuleCache::Outcome::kNeedInstance);
  EXPECT_EQ(cache.stats().promotions, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  const auto bytes = cache.image_bytes(hash);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, image);
  EXPECT_EQ(cache.insert(hash, *bytes, 1, 8, alice).outcome,
            ModuleCache::Outcome::kHit);
  EXPECT_EQ(probe(cache, image, 1, alice, "alice").module, 8u);
  EXPECT_EQ(probe(cache, image, 0, alice, "alice").module, 7u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST_F(ModuleCacheUnit, ConcurrentLoadRaceKeepsTheCanonicalInstance) {
  const auto alice = add("alice", 1 << 20);
  auto cache = make(1 << 20);
  const std::vector<std::uint8_t> image(64, 0x44);
  const std::uint64_t hash = hash_image(image);
  ASSERT_EQ(cache.insert(hash, image, 0, 7, alice).module, 7u);
  // A second loader raced the same image: its redundant module is unloaded
  // and its reference lands on the winner.
  const auto res = cache.insert(hash, image, 0, 9, alice);
  ASSERT_EQ(res.outcome, ModuleCache::Outcome::kHit);
  EXPECT_EQ(res.module, 7u);
  ASSERT_EQ(unloads.size(), 1u);
  EXPECT_EQ(unloads[0], (std::pair<std::uint32_t, std::uint64_t>{0, 9}));
}

TEST_F(ModuleCacheUnit, LruEvictionIsIdleOnlyAndBudgetBounded) {
  const auto alice = add("alice", 1 << 20);
  const std::vector<std::uint8_t> a(100, 0xA0), b(100, 0xB0), c(100, 0xC0);
  auto cache = make(250);  // room for two resident images, not three

  ASSERT_EQ(cache.insert(hash_image(a), a, 0, 1, alice).outcome,
            ModuleCache::Outcome::kHit);
  ASSERT_EQ(cache.insert(hash_image(b), b, 0, 2, alice).outcome,
            ModuleCache::Outcome::kHit);
  cache.release(hash_image(a), 0, alice);  // a idle, b still live

  // Inserting c passes the budget: the idle LRU entry (a) is evicted and
  // its instance leaves the device; the live entry (b) is untouchable.
  ASSERT_EQ(cache.insert(hash_image(c), c, 0, 3, alice).outcome,
            ModuleCache::Outcome::kHit);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_entries, 2u);
  EXPECT_LE(stats.resident_bytes, 250u);
  ASSERT_EQ(unloads.size(), 1u);
  EXPECT_EQ(unloads[0], (std::pair<std::uint32_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(probe(cache, a, 0, alice, "alice").outcome,
            ModuleCache::Outcome::kMiss);
  EXPECT_EQ(probe(cache, b, 0, alice, "alice").module, 2u);
}

TEST_F(ModuleCacheUnit, AllLiveEntriesMayExceedTheBudget) {
  const auto alice = add("alice", 1 << 20);
  const std::vector<std::uint8_t> a(100, 0xA1), b(100, 0xB1);
  auto cache = make(150);
  ASSERT_EQ(cache.insert(hash_image(a), a, 0, 1, alice).outcome,
            ModuleCache::Outcome::kHit);
  ASSERT_EQ(cache.insert(hash_image(b), b, 0, 2, alice).outcome,
            ModuleCache::Outcome::kHit);
  // Both referenced: nothing evictable, the budget is temporarily exceeded.
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 200u);
}

TEST_F(ModuleCacheUnit, SeedAndAdoptSkipChargingUntilRelease) {
  const auto alice = add("alice", 1 << 20);
  auto cache = make(1 << 20);
  // Seeding mirrors a migration import: the bytes stay on the source fleet,
  // only hash, size, and alice's source-computed possession proof travel.
  const auto image = test_image(10);
  const std::uint64_t hash = hash_image(image);
  cache.seed(hash, image.size(), /*device=*/1, /*module=*/99, "alice",
             possession_proof("alice", image));
  // Adoption re-references without charging: the imported tenant
  // accounting already carries the source's charge.
  const auto adopted = cache.adopt(hash, 1, alice);
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(*adopted, 99u);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
  // Unknown (hash, device) pairs refuse adoption cleanly.
  EXPECT_FALSE(cache.adopt(hash, 0, alice).has_value());
  EXPECT_FALSE(cache.adopt(0xBEEF, 1, alice).has_value());

  // A seeded entry's bytes never reached this server: probes on other
  // devices miss (only a full re-upload can instantiate it there), while
  // the seeded device answers alice's probe via the imported proof.
  EXPECT_FALSE(cache.image_bytes(hash).has_value());
  EXPECT_EQ(probe(cache, image, 0, alice, "alice").outcome,
            ModuleCache::Outcome::kMiss);
  EXPECT_EQ(probe(cache, image, 1, alice, "alice").module, 99u);
}

TEST_F(ModuleCacheUnit, ProofRejectionIsIndistinguishableFromMiss) {
  const auto alice = add("alice", 1 << 20);
  const auto bob = add("bob", 1 << 20);
  auto cache = make(1 << 20);
  const auto image = test_image(11);
  const std::uint64_t hash = hash_image(image);
  ASSERT_EQ(cache.insert(hash, image, 0, 7, alice).outcome,
            ModuleCache::Outcome::kHit);

  // A bare hash is worth nothing: no proof, a garbage proof, a wrong-size
  // proof, and a replayed proof computed under someone else's name must all
  // answer exactly like an unknown hash — no reference, no oracle.
  const Digest alices = possession_proof("alice", image);
  const struct {
    const char* name;
    std::vector<std::uint8_t> proof;
  } bad[] = {
      {"empty", {}},
      {"wrong size", std::vector<std::uint8_t>(16, 0xAA)},
      {"garbage", std::vector<std::uint8_t>(32, 0xAA)},
      {"replayed under another tenant",
       {alices.begin(), alices.end()}},
  };
  for (const auto& attempt : bad) {
    const auto res = cache.acquire(hash, 0, bob, "bob", attempt.proof);
    EXPECT_EQ(res.outcome, ModuleCache::Outcome::kMiss) << attempt.name;
    EXPECT_EQ(res.module, 0u) << attempt.name;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.proof_rejects, 4u);
  EXPECT_EQ(stats.misses, 4u);  // wire answers are ordinary misses
  EXPECT_EQ(tenants.stats(bob).mem_used_bytes, 0u);

  // Bob holding the real bytes proves possession under his own name.
  EXPECT_EQ(probe(cache, image, 0, bob, "bob").module, 7u);
}

TEST_F(ModuleCacheUnit, CollisionNeverSubstitutesResidentBytes) {
  const auto alice = add("alice", 1 << 20);
  const auto mallory = add("mallory", 1 << 20);
  auto cache = make(1 << 20);
  const auto image = test_image(12);
  const auto forged = test_image(13);
  const std::uint64_t hash = hash_image(image);
  ASSERT_EQ(cache.insert(hash, image, 0, 7, alice).outcome,
            ModuleCache::Outcome::kHit);

  // Mallory claims the same key for different bytes (a real truncated-hash
  // collision, or a poisoning attempt): refused outright, nothing cached,
  // nothing unloaded — mallory keeps the module private, session-owned.
  const auto res = cache.insert(hash, forged, 0, 666, mallory);
  EXPECT_EQ(res.outcome, ModuleCache::Outcome::kCollision);
  EXPECT_EQ(cache.stats().collisions, 1u);
  EXPECT_TRUE(unloads.empty());
  EXPECT_EQ(tenants.stats(mallory).mem_used_bytes, 0u);
  ASSERT_TRUE(cache.image_bytes(hash).has_value());
  EXPECT_EQ(*cache.image_bytes(hash), image);  // canonical bytes untouched
  EXPECT_EQ(probe(cache, image, 0, alice, "alice").module, 7u);
}

TEST_F(ModuleCacheUnit, SeededEntryRefusesAnUnprovableReupload) {
  const auto alice = add("alice", 1 << 20);
  const auto mallory = add("mallory", 1 << 20);
  auto cache = make(1 << 20);
  const auto image = test_image(14);
  const auto forged = test_image(15);
  const std::uint64_t hash = hash_image(image);
  cache.seed(hash, image.size(), /*device=*/0, /*module=*/99, "alice",
             possession_proof("alice", image));

  // A byte-less seeded entry still has an authority to check uploads
  // against: the imported proof. Bytes that cannot reproduce it are
  // refused, so the import can never be used to launder forged bytes in.
  EXPECT_EQ(cache.insert(hash, forged, 1, 666, mallory).outcome,
            ModuleCache::Outcome::kCollision);
  EXPECT_FALSE(cache.image_bytes(hash).has_value());

  // The genuine bytes reproduce the proof and become resident.
  EXPECT_EQ(cache.insert(hash, image, 1, 42, alice).outcome,
            ModuleCache::Outcome::kHit);
  ASSERT_TRUE(cache.image_bytes(hash).has_value());
  EXPECT_EQ(*cache.image_bytes(hash), image);
}

TEST_F(ModuleCacheUnit, ProofForServesExportsFromBytesOrImports) {
  const auto alice = add("alice", 1 << 20);
  auto cache = make(1 << 20);
  const auto image = test_image(16);
  const std::uint64_t hash = hash_image(image);

  EXPECT_FALSE(cache.proof_for(hash, "alice").has_value());  // unknown
  ASSERT_EQ(cache.insert(hash, image, 0, 7, alice).outcome,
            ModuleCache::Outcome::kHit);
  // Byte-resident entries derive any tenant's proof on demand (migration
  // export uses this to ship the proof alongside the hash).
  const auto derived = cache.proof_for(hash, "alice");
  ASSERT_TRUE(derived.has_value());
  EXPECT_TRUE(digest_equal(*derived, possession_proof("alice", image)));

  // Byte-less seeded entries can only serve the proofs they imported.
  auto warm = make(1 << 20);
  warm.seed(hash, image.size(), 0, 7, "alice",
            possession_proof("alice", image));
  EXPECT_TRUE(warm.proof_for(hash, "alice").has_value());
  EXPECT_FALSE(warm.proof_for(hash, "bob").has_value());
}

// ------------------------ end-to-end negotiation ---------------------------

/// Client<->server stack with the cache on and multi-tenant admission, so
/// quota interactions are exercised through real wire calls.
struct ModcacheE2E : ::testing::Test {
  ModcacheE2E()
      : node(cuda::GpuNode::make_a100()),
        tenants(node->clock(),
                {.device_count =
                     static_cast<std::uint32_t>(node->device_count()),
                 .default_tenant = ""}) {
    core::ServerOptions options;
    options.tenants = &tenants;
    options.module_cache = true;
    server = std::make_unique<CricketServer>(*node, options);
  }

  ~ModcacheE2E() override { disconnect_all(); }

  tenancy::TenantId add(const std::string& name,
                        std::uint64_t mem_quota = 1 << 30) {
    tenancy::TenantSpec spec;
    spec.name = name;
    spec.quota.device_mem_bytes = mem_quota;
    return tenants.register_tenant(spec);
  }

  RemoteCudaApi& connect(const std::string& tenant) {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    threads.push_back(server->serve_async(std::move(server_end)));
    core::ClientConfig config;
    config.tenant = tenant;
    config.module_cache = true;
    apis.push_back(std::make_unique<RemoteCudaApi>(
        std::move(client_end), node->clock(), std::move(config)));
    return *apis.back();
  }

  void disconnect_all() {
    apis.clear();
    for (auto& t : threads)
      if (t.joinable()) t.join();
    threads.clear();
  }

  std::unique_ptr<cuda::GpuNode> node;
  tenancy::SessionManager tenants;
  std::unique_ptr<CricketServer> server;
  std::vector<std::unique_ptr<RemoteCudaApi>> apis;
  std::vector<std::thread> threads;
};

TEST_F(ModcacheE2E, SecondClientLoadSkipsTheUpload) {
  add("alice");
  add("bob");
  const auto image = test_image(0);

  auto& a = connect("alice");
  cuda::ModuleId mod_a = 0;
  ASSERT_EQ(a.module_load(mod_a, image), Error::kSuccess);
  EXPECT_EQ(a.stats().module_cache_hits, 0u);  // cold: probe missed

  auto& b = connect("bob");
  cuda::ModuleId mod_b = 0;
  ASSERT_EQ(b.module_load(mod_b, image), Error::kSuccess);
  EXPECT_EQ(mod_b, mod_a);  // one canonical device module
  EXPECT_EQ(b.stats().module_cache_hits, 1u);
  EXPECT_EQ(b.stats().module_bytes_saved, image.size());

  // The cached handle is a first-class module for both sessions.
  cuda::FuncId fn = 0;
  EXPECT_EQ(b.module_get_function(fn, mod_b, "cache_mark_0"),
            Error::kSuccess);

  const auto stats = server->module_cache()->stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);  // alice's cold probe
}

TEST_F(ModcacheE2E, RepeatLoadsShareOneChargeAndUnloadReleasesIt) {
  const auto alice = add("alice");
  const auto image = test_image(1);
  auto& api = connect("alice");

  cuda::ModuleId m1 = 0, m2 = 0;
  ASSERT_EQ(api.module_load(m1, image), Error::kSuccess);
  ASSERT_EQ(api.module_load(m2, image), Error::kSuccess);
  EXPECT_EQ(m2, m1);
  EXPECT_EQ(api.stats().module_cache_hits, 1u);
  // One unique image, one charge — not per load.
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());

  ASSERT_EQ(api.module_unload(m1), Error::kSuccess);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());
  ASSERT_EQ(api.module_unload(m2), Error::kSuccess);
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
  // The device module stays warm for the next tenant.
  EXPECT_EQ(server->module_cache()->stats().resident_entries, 1u);
}

TEST_F(ModcacheE2E, TeardownReleasesReferencesAndKeepsEntriesWarm) {
  const auto alice = add("alice");
  add("bob");
  const auto image = test_image(2);
  {
    auto& a = connect("alice");
    cuda::ModuleId mod = 0;
    ASSERT_EQ(a.module_load(mod, image), Error::kSuccess);
    EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());
  }
  disconnect_all();  // session teardown without an explicit unload
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
  EXPECT_EQ(server->module_cache()->stats().resident_entries, 1u);

  // A later tenant hits warm: zero image bytes cross the wire.
  auto& b = connect("bob");
  cuda::ModuleId mod = 0;
  ASSERT_EQ(b.module_load(mod, image), Error::kSuccess);
  EXPECT_EQ(b.stats().module_cache_hits, 1u);
  EXPECT_EQ(b.stats().module_bytes_saved, image.size());
}

TEST_F(ModcacheE2E, QuotaRefusalSurfacesOnBothCachePaths) {
  const auto image = test_image(3);
  add("tiny", image.size() / 2);  // cannot cover the image
  add("rich");

  // Populate the cache through a tenant with room.
  auto& rich = connect("rich");
  cuda::ModuleId mod = 0;
  ASSERT_EQ(rich.module_load(mod, image), Error::kSuccess);

  // The cache-hit path still enforces the probing tenant's quota.
  auto& tiny = connect("tiny");
  cuda::ModuleId denied = 0;
  EXPECT_EQ(tiny.module_load(denied, image), Error::kQuotaExceeded);
  // And so does the cold upload path for a distinct image.
  EXPECT_EQ(tiny.module_load(denied, test_image(4)), Error::kQuotaExceeded);
}

TEST(ModcacheFallback, CachelessServerAnswersMissAndClientFallsBack) {
  auto node = cuda::GpuNode::make_a100();
  CricketServer server(*node);  // no cache, no tenants
  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto thread = server.serve_async(std::move(server_end));
  {
    core::ClientConfig config;
    config.module_cache = true;  // client probes; server has no cache
    RemoteCudaApi api(std::move(client_end), node->clock(),
                      std::move(config));
    const auto image = test_image(5);
    cuda::ModuleId mod = 0;
    ASSERT_EQ(api.module_load(mod, image), Error::kSuccess);
    EXPECT_EQ(api.stats().module_cache_hits, 0u);
    EXPECT_EQ(api.stats().module_bytes_saved, 0u);
    cuda::FuncId fn = 0;
    EXPECT_EQ(api.module_get_function(fn, mod, "cache_mark_5"),
              Error::kSuccess);
    EXPECT_EQ(api.module_unload(mod), Error::kSuccess);
  }
  thread.join();
}

TEST(ModcacheUncachedQuota, LegacyUploadPathChargesTenantMemory) {
  // Cache off, tenancy on: the historical per-load path now meters the
  // tenant's memory quota (released on unload and on teardown).
  auto node = cuda::GpuNode::make_a100();
  tenancy::SessionManager tenants(
      node->clock(),
      {.device_count = static_cast<std::uint32_t>(node->device_count()),
       .default_tenant = ""});
  const auto image = test_image(6);
  tenancy::TenantSpec spec;
  spec.name = "alice";
  spec.quota.device_mem_bytes = image.size() + image.size() / 2;
  const auto alice = tenants.register_tenant(spec);
  core::ServerOptions options;
  options.tenants = &tenants;
  CricketServer server(*node, options);

  std::vector<std::thread> threads;
  auto connect = [&]() {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    threads.push_back(server.serve_async(std::move(server_end)));
    core::ClientConfig config;
    config.tenant = "alice";
    return std::make_unique<RemoteCudaApi>(std::move(client_end),
                                           node->clock(), std::move(config));
  };
  {
    auto api = connect();
    cuda::ModuleId m1 = 0, m2 = 0;
    ASSERT_EQ(api->module_load(m1, image), Error::kSuccess);
    EXPECT_EQ(tenants.stats(alice).mem_used_bytes, image.size());
    // Per load, not per unique image: the second copy busts the quota.
    EXPECT_EQ(api->module_load(m2, image), Error::kQuotaExceeded);
    ASSERT_EQ(api->module_unload(m1), Error::kSuccess);
    EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
    // Leak one load; session teardown must release the charge.
    ASSERT_EQ(api->module_load(m2, image), Error::kSuccess);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  EXPECT_EQ(tenants.stats(alice).mem_used_bytes, 0u);
}

TEST(ModcacheAsync, PipelinedClientNegotiatesTheSameProtocol) {
  auto node = cuda::GpuNode::make_a100();
  core::ServerOptions options;
  options.module_cache = true;
  CricketServer server(*node, options);
  const auto environment = env::with_module_cache(env::with_pipelining(
      env::make_environment(env::EnvKind::kRustyHermit), 32, true));
  const auto image = test_image(7);

  auto load_once = [&](cuda::ModuleId& mod) {
    auto conn = env::connect(environment, node->clock());
    auto thread = server.serve_async(std::move(conn.server));
    {
      core::AsyncRemoteCudaApi api(
          std::move(conn.guest), node->clock(),
          core::AsyncClientConfig{.flavor = environment.flavor,
                                  .pipeline = environment.pipeline,
                                  .module_cache = environment.module_cache});
      ASSERT_EQ(api.module_load(mod, image), Error::kSuccess);
      cuda::FuncId fn = 0;
      EXPECT_EQ(api.module_get_function(fn, mod, "cache_mark_7"),
                Error::kSuccess);
      EXPECT_EQ(api.drain(), Error::kSuccess);
    }
    thread.join();
  };

  cuda::ModuleId first = 0, second = 0;
  load_once(first);
  const auto cold = server.module_cache()->stats();
  EXPECT_EQ(cold.inserts, 1u);
  load_once(second);
  EXPECT_EQ(second, first);  // answered from the cache, not re-uploaded
  const auto warm = server.module_cache()->stats();
  EXPECT_EQ(warm.inserts, 1u);
  EXPECT_EQ(warm.hits, cold.hits + 1);
}

TEST(ModcacheFaults, NegotiationSurvivesDropFaults) {
  auto node = cuda::GpuNode::make_a100();
  core::ServerOptions options;
  options.module_cache = true;
  options.at_most_once = true;  // retries must never double-reference
  CricketServer server(*node, options);
  const auto environment = env::with_module_cache(env::with_faults(
      env::make_environment(env::EnvKind::kNativeRust), "drop=0.05,seed=42"));
  const auto image = test_image(8);

  std::vector<std::thread> threads;
  auto connect = [&]() {
    auto conn = env::connect(environment, node->clock());
    threads.push_back(server.serve_async(std::move(conn.server)));
    core::ClientConfig config;
    config.flavor = environment.flavor;
    config.profile = environment.profile;
    config.module_cache = true;
    config.retry.enabled = true;
    config.retry.max_attempts = 8;
    config.retry.attempt_timeout = 250ms;
    config.retry.deadline = 30s;
    return std::make_unique<RemoteCudaApi>(std::move(conn.guest),
                                           node->clock(), std::move(config));
  };
  {
    auto a = connect();
    auto b = connect();
    cuda::ModuleId mod_a = 0, mod_b = 0;
    // Both the cold (probe miss -> upload) and warm (probe hit) paths must
    // come through the lossy link; any dropped leg is retried.
    ASSERT_EQ(a->module_load(mod_a, image), Error::kSuccess);
    ASSERT_EQ(b->module_load(mod_b, image), Error::kSuccess);
    EXPECT_EQ(mod_b, mod_a);
    cuda::FuncId fn = 0;
    EXPECT_EQ(b->module_get_function(fn, mod_b, "cache_mark_8"),
              Error::kSuccess);
    EXPECT_EQ(a->module_unload(mod_a), Error::kSuccess);
    EXPECT_EQ(b->module_unload(mod_b), Error::kSuccess);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  EXPECT_EQ(server.module_cache()->stats().inserts, 1u);
}

// ------------------------------ migration ----------------------------------

TEST(ModcacheMigration, CachedModulesSurviveTheImageCodec) {
  migrate::MigrationImage img;
  img.tenant.spec.name = "alice";
  core::SessionExport s;
  s.session_id = 4;
  s.client_id = 0xC0FFEE;
  const Digest proof = possession_proof("alice", test_image(0));
  s.cached_modules = {
      {/*id=*/7, /*hash=*/0xDEADBEEFCAFEull, /*bytes=*/4096, /*owner=*/true,
       proof},
      {/*id=*/9, /*hash=*/0x1234ull, /*bytes=*/128, /*owner=*/false,
       Digest{}}};
  img.sessions.push_back(std::move(s));

  const auto out = migrate::decode_image(migrate::encode_image(img));
  ASSERT_EQ(out.sessions.size(), 1u);
  ASSERT_EQ(out.sessions[0].cached_modules.size(), 2u);
  EXPECT_EQ(out.sessions[0].cached_modules[0].id, 7u);
  EXPECT_EQ(out.sessions[0].cached_modules[0].hash, 0xDEADBEEFCAFEull);
  EXPECT_EQ(out.sessions[0].cached_modules[0].bytes, 4096u);
  EXPECT_TRUE(out.sessions[0].cached_modules[0].owner);
  EXPECT_TRUE(digest_equal(out.sessions[0].cached_modules[0].proof, proof));
  EXPECT_EQ(out.sessions[0].cached_modules[1].id, 9u);
  EXPECT_EQ(out.sessions[0].cached_modules[1].hash, 0x1234ull);
  EXPECT_EQ(out.sessions[0].cached_modules[1].bytes, 128u);
  EXPECT_FALSE(out.sessions[0].cached_modules[1].owner);
  EXPECT_TRUE(
      digest_equal(out.sessions[0].cached_modules[1].proof, Digest{}));
}

xdr::Untrusted<std::uint64_t> U(std::uint64_t v) {
  return xdr::Untrusted<std::uint64_t>(v);
}

TEST(ModcacheMigration, WarmTargetSeedsCacheAndAdoptionRereferences) {
  constexpr std::uint32_t kStamp = 77;  // the migrating client's identity
  const auto image = test_image(9);
  const std::uint64_t hash = hash_image(image);

  // ---- source fleet: tenant alice loads a module through the cache ----
  auto src_node = cuda::GpuNode::make_paper_testbed();
  tenancy::SessionManager src_tenants(
      src_node->clock(),
      {.device_count = static_cast<std::uint32_t>(src_node->device_count()),
       .default_tenant = ""});
  tenancy::TenantSpec spec;
  spec.name = "alice";
  const auto src_alice = src_tenants.register_tenant(spec);
  core::ServerOptions so;
  so.tenants = &src_tenants;
  so.module_cache = true;
  CricketServer source(*src_node, so);

  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto src_thread = source.serve_async(std::move(server_end));
  core::ClientConfig config;
  config.tenant = "alice";
  config.auth_stamp = kStamp;
  config.module_cache = true;
  auto api = std::make_unique<RemoteCudaApi>(std::move(client_end),
                                             src_node->clock(), config);
  cuda::ModuleId mod = 0;
  ASSERT_EQ(api->module_load(mod, image), Error::kSuccess);

  // ---- snapshot: the cached module travels as (id, hash, size) ----
  migrate::MigrationImage img;
  const auto exported = src_tenants.export_tenant(src_alice);
  ASSERT_TRUE(exported.has_value());
  img.tenant = *exported;
  img.sessions = source.export_tenant_sessions(src_alice);
  ASSERT_EQ(img.sessions.size(), 1u);
  ASSERT_EQ(img.sessions[0].cached_modules.size(), 1u);
  EXPECT_EQ(img.sessions[0].cached_modules[0].id, mod);
  EXPECT_EQ(img.sessions[0].cached_modules[0].hash, hash);
  EXPECT_EQ(img.sessions[0].cached_modules[0].bytes, image.size());
  // The module is cache-owned, not session-owned, so the per-session handle
  // list is empty — but the device record still rides in the state snapshot
  // exactly once, so the target can restore it without a re-upload.
  EXPECT_TRUE(img.sessions[0].modules.empty());
  EXPECT_EQ(img.sessions[0].state.modules.size(), 1u);

  // ---- target fleet: import commits, the cache is seeded ----
  auto dst_node = cuda::GpuNode::make_paper_testbed();
  tenancy::SessionManager dst_tenants(
      dst_node->clock(),
      {.device_count = static_cast<std::uint32_t>(dst_node->device_count()),
       .default_tenant = ""});
  core::ServerOptions to;
  to.tenants = &dst_tenants;
  to.module_cache = true;
  CricketServer target(*dst_node, to);
  migrate::MigrationTarget mt(target);
  const auto blob = migrate::encode_image(img);
  const auto opened = mt.begin("alice", U(blob.size()));
  ASSERT_EQ(opened.err, migrate::kMigOk);
  ASSERT_EQ(mt.chunk(U(opened.ticket), U(0), blob), migrate::kMigOk);
  ASSERT_EQ(mt.commit(U(opened.ticket), migrate::fnv64(blob)),
            migrate::kMigOk);
  EXPECT_EQ(target.module_cache()->stats().resident_entries, 1u);

  // ---- the client reconnects to the target: adoption re-references ----
  auto [c2, s2] = rpc::make_pipe_pair();
  auto dst_thread = target.serve_async(std::move(s2));
  {
    RemoteCudaApi reconnected(std::move(c2), dst_node->clock(), config);
    // Reloading the same image probes by hash and hits the seeded entry:
    // the multi-KB image never crosses the wire to the warm target.
    cuda::ModuleId warm = 0;
    ASSERT_EQ(reconnected.module_load(warm, image), Error::kSuccess);
    EXPECT_EQ(warm, mod);  // the restored handle survived the move
    EXPECT_EQ(reconnected.stats().module_cache_hits, 1u);
    EXPECT_EQ(reconnected.stats().module_bytes_saved, image.size());
    cuda::FuncId fn = 0;
    EXPECT_EQ(reconnected.module_get_function(fn, warm, "cache_mark_9"),
              Error::kSuccess);
    // Adopted + probed references unwind through the cache path.
    EXPECT_EQ(reconnected.module_unload(warm), Error::kSuccess);
  }
  dst_thread.join();
  api.reset();
  src_thread.join();
}

TEST(ModcacheMigration, CachelessTargetRefusesCacheSharedModules) {
  // A target without a module cache has no safe home for cache-shared
  // modules: adopting them as plain per-session handles would let the first
  // session teardown unload a module its siblings still use. The import is
  // refused whole, before anything touches the device.
  migrate::MigrationImage img;
  img.tenant.spec.name = "alice";
  core::SessionExport s;
  s.session_id = 1;
  s.client_id = 0xC0FFEE;
  s.cached_modules = {{/*id=*/7, /*hash=*/0xFEEDull, /*bytes=*/128,
                       /*owner=*/true, Digest{}}};
  img.sessions.push_back(std::move(s));

  auto node = cuda::GpuNode::make_paper_testbed();
  tenancy::SessionManager tenants(
      node->clock(),
      {.device_count = static_cast<std::uint32_t>(node->device_count()),
       .default_tenant = ""});
  core::ServerOptions options;
  options.tenants = &tenants;  // tenancy on, module cache OFF
  CricketServer target(*node, options);
  ASSERT_EQ(target.module_cache(), nullptr);

  migrate::MigrationTarget mt(target);
  const auto blob = migrate::encode_image(img);
  const auto opened = mt.begin("alice", U(blob.size()));
  ASSERT_EQ(opened.err, migrate::kMigOk);
  ASSERT_EQ(mt.chunk(U(opened.ticket), U(0), blob), migrate::kMigOk);
  EXPECT_EQ(mt.commit(U(opened.ticket), migrate::fnv64(blob)),
            migrate::kMigNoModCache);
  EXPECT_EQ(mt.committed_count(), 0u);
}

}  // namespace
}  // namespace cricket::modcache
