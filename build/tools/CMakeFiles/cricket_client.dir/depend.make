# Empty dependencies file for cricket_client.
# This may be replaced when dependencies are built.
