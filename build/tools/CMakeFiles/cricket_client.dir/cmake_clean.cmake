file(REMOVE_RECURSE
  "CMakeFiles/cricket_client.dir/cricket_client_main.cpp.o"
  "CMakeFiles/cricket_client.dir/cricket_client_main.cpp.o.d"
  "cricket_client"
  "cricket_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
