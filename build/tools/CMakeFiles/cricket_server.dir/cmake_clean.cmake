file(REMOVE_RECURSE
  "CMakeFiles/cricket_server.dir/cricket_server_main.cpp.o"
  "CMakeFiles/cricket_server.dir/cricket_server_main.cpp.o.d"
  "cricket_server"
  "cricket_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
