# Empty dependencies file for cricket_server.
# This may be replaced when dependencies are built.
