
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_primitives.cpp" "bench/CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o" "gcc" "bench/CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cricket/CMakeFiles/cricket_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cricket_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/cricket_env.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/cricket_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/vnet/CMakeFiles/cricket_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/fatbin/CMakeFiles/cricket_fatbin.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/cricket_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/cricket_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cricket_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/cricket_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
