file(REMOVE_RECURSE
  "CMakeFiles/bench_transfer_methods.dir/bench_transfer_methods.cpp.o"
  "CMakeFiles/bench_transfer_methods.dir/bench_transfer_methods.cpp.o.d"
  "bench_transfer_methods"
  "bench_transfer_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfer_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
