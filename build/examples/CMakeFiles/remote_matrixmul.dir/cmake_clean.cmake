file(REMOVE_RECURSE
  "CMakeFiles/remote_matrixmul.dir/remote_matrixmul.cpp.o"
  "CMakeFiles/remote_matrixmul.dir/remote_matrixmul.cpp.o.d"
  "remote_matrixmul"
  "remote_matrixmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_matrixmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
