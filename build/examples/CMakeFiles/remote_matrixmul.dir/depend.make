# Empty dependencies file for remote_matrixmul.
# This may be replaced when dependencies are built.
