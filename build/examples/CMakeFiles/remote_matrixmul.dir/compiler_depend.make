# Empty compiler generated dependencies file for remote_matrixmul.
# This may be replaced when dependencies are built.
