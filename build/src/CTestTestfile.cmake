# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("xdr")
subdirs("rpc")
subdirs("rpcl")
subdirs("fatbin")
subdirs("gpusim")
subdirs("cudart")
subdirs("vnet")
subdirs("env")
subdirs("cricket")
subdirs("workloads")
