file(REMOVE_RECURSE
  "CMakeFiles/cricket_fatbin.dir/cubin.cpp.o"
  "CMakeFiles/cricket_fatbin.dir/cubin.cpp.o.d"
  "CMakeFiles/cricket_fatbin.dir/fatbin.cpp.o"
  "CMakeFiles/cricket_fatbin.dir/fatbin.cpp.o.d"
  "CMakeFiles/cricket_fatbin.dir/lz.cpp.o"
  "CMakeFiles/cricket_fatbin.dir/lz.cpp.o.d"
  "libcricket_fatbin.a"
  "libcricket_fatbin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_fatbin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
