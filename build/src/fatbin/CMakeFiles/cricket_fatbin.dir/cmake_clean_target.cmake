file(REMOVE_RECURSE
  "libcricket_fatbin.a"
)
