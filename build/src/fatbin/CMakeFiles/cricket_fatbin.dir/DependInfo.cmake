
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fatbin/cubin.cpp" "src/fatbin/CMakeFiles/cricket_fatbin.dir/cubin.cpp.o" "gcc" "src/fatbin/CMakeFiles/cricket_fatbin.dir/cubin.cpp.o.d"
  "/root/repo/src/fatbin/fatbin.cpp" "src/fatbin/CMakeFiles/cricket_fatbin.dir/fatbin.cpp.o" "gcc" "src/fatbin/CMakeFiles/cricket_fatbin.dir/fatbin.cpp.o.d"
  "/root/repo/src/fatbin/lz.cpp" "src/fatbin/CMakeFiles/cricket_fatbin.dir/lz.cpp.o" "gcc" "src/fatbin/CMakeFiles/cricket_fatbin.dir/lz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cricket_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
