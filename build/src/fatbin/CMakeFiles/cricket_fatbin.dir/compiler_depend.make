# Empty compiler generated dependencies file for cricket_fatbin.
# This may be replaced when dependencies are built.
