file(REMOVE_RECURSE
  "libcricket_core.a"
)
