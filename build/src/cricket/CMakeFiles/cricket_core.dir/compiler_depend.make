# Empty compiler generated dependencies file for cricket_core.
# This may be replaced when dependencies are built.
