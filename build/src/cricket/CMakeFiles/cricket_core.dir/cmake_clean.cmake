file(REMOVE_RECURSE
  "CMakeFiles/cricket_core.dir/checkpoint.cpp.o"
  "CMakeFiles/cricket_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/cricket_core.dir/client.cpp.o"
  "CMakeFiles/cricket_core.dir/client.cpp.o.d"
  "CMakeFiles/cricket_core.dir/scheduler.cpp.o"
  "CMakeFiles/cricket_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/cricket_core.dir/server.cpp.o"
  "CMakeFiles/cricket_core.dir/server.cpp.o.d"
  "CMakeFiles/cricket_core.dir/transfer.cpp.o"
  "CMakeFiles/cricket_core.dir/transfer.cpp.o.d"
  "gen/cricket_proto.hpp"
  "libcricket_core.a"
  "libcricket_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
