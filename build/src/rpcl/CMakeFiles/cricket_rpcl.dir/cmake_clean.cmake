file(REMOVE_RECURSE
  "CMakeFiles/cricket_rpcl.dir/codegen.cpp.o"
  "CMakeFiles/cricket_rpcl.dir/codegen.cpp.o.d"
  "CMakeFiles/cricket_rpcl.dir/lexer.cpp.o"
  "CMakeFiles/cricket_rpcl.dir/lexer.cpp.o.d"
  "CMakeFiles/cricket_rpcl.dir/parser.cpp.o"
  "CMakeFiles/cricket_rpcl.dir/parser.cpp.o.d"
  "libcricket_rpcl.a"
  "libcricket_rpcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_rpcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
