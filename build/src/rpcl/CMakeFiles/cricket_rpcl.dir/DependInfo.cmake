
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpcl/codegen.cpp" "src/rpcl/CMakeFiles/cricket_rpcl.dir/codegen.cpp.o" "gcc" "src/rpcl/CMakeFiles/cricket_rpcl.dir/codegen.cpp.o.d"
  "/root/repo/src/rpcl/lexer.cpp" "src/rpcl/CMakeFiles/cricket_rpcl.dir/lexer.cpp.o" "gcc" "src/rpcl/CMakeFiles/cricket_rpcl.dir/lexer.cpp.o.d"
  "/root/repo/src/rpcl/parser.cpp" "src/rpcl/CMakeFiles/cricket_rpcl.dir/parser.cpp.o" "gcc" "src/rpcl/CMakeFiles/cricket_rpcl.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cricket_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
