file(REMOVE_RECURSE
  "libcricket_rpcl.a"
)
