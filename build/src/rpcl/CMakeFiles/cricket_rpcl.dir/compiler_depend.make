# Empty compiler generated dependencies file for cricket_rpcl.
# This may be replaced when dependencies are built.
