# Empty dependencies file for rpclgen.
# This may be replaced when dependencies are built.
