file(REMOVE_RECURSE
  "CMakeFiles/rpclgen.dir/rpclgen_main.cpp.o"
  "CMakeFiles/rpclgen.dir/rpclgen_main.cpp.o.d"
  "rpclgen"
  "rpclgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpclgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
