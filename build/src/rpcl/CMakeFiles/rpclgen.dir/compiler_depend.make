# Empty compiler generated dependencies file for rpclgen.
# This may be replaced when dependencies are built.
