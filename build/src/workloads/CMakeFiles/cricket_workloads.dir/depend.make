# Empty dependencies file for cricket_workloads.
# This may be replaced when dependencies are built.
