file(REMOVE_RECURSE
  "CMakeFiles/cricket_workloads.dir/bandwidth_test.cpp.o"
  "CMakeFiles/cricket_workloads.dir/bandwidth_test.cpp.o.d"
  "CMakeFiles/cricket_workloads.dir/histogram.cpp.o"
  "CMakeFiles/cricket_workloads.dir/histogram.cpp.o.d"
  "CMakeFiles/cricket_workloads.dir/kernels.cpp.o"
  "CMakeFiles/cricket_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/cricket_workloads.dir/linear_solver.cpp.o"
  "CMakeFiles/cricket_workloads.dir/linear_solver.cpp.o.d"
  "CMakeFiles/cricket_workloads.dir/matrix_mul.cpp.o"
  "CMakeFiles/cricket_workloads.dir/matrix_mul.cpp.o.d"
  "libcricket_workloads.a"
  "libcricket_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
