file(REMOVE_RECURSE
  "libcricket_workloads.a"
)
