file(REMOVE_RECURSE
  "CMakeFiles/cricket_sim.dir/rng.cpp.o"
  "CMakeFiles/cricket_sim.dir/rng.cpp.o.d"
  "CMakeFiles/cricket_sim.dir/sim_clock.cpp.o"
  "CMakeFiles/cricket_sim.dir/sim_clock.cpp.o.d"
  "CMakeFiles/cricket_sim.dir/stats.cpp.o"
  "CMakeFiles/cricket_sim.dir/stats.cpp.o.d"
  "libcricket_sim.a"
  "libcricket_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
