file(REMOVE_RECURSE
  "libcricket_sim.a"
)
