# Empty compiler generated dependencies file for cricket_sim.
# This may be replaced when dependencies are built.
