# Empty compiler generated dependencies file for cricket_xdr.
# This may be replaced when dependencies are built.
