file(REMOVE_RECURSE
  "CMakeFiles/cricket_xdr.dir/xdr.cpp.o"
  "CMakeFiles/cricket_xdr.dir/xdr.cpp.o.d"
  "libcricket_xdr.a"
  "libcricket_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
