file(REMOVE_RECURSE
  "libcricket_xdr.a"
)
