file(REMOVE_RECURSE
  "libcricket_rpc.a"
)
