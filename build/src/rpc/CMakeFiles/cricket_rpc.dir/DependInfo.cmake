
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/client.cpp" "src/rpc/CMakeFiles/cricket_rpc.dir/client.cpp.o" "gcc" "src/rpc/CMakeFiles/cricket_rpc.dir/client.cpp.o.d"
  "/root/repo/src/rpc/portmap.cpp" "src/rpc/CMakeFiles/cricket_rpc.dir/portmap.cpp.o" "gcc" "src/rpc/CMakeFiles/cricket_rpc.dir/portmap.cpp.o.d"
  "/root/repo/src/rpc/record.cpp" "src/rpc/CMakeFiles/cricket_rpc.dir/record.cpp.o" "gcc" "src/rpc/CMakeFiles/cricket_rpc.dir/record.cpp.o.d"
  "/root/repo/src/rpc/rpc_msg.cpp" "src/rpc/CMakeFiles/cricket_rpc.dir/rpc_msg.cpp.o" "gcc" "src/rpc/CMakeFiles/cricket_rpc.dir/rpc_msg.cpp.o.d"
  "/root/repo/src/rpc/server.cpp" "src/rpc/CMakeFiles/cricket_rpc.dir/server.cpp.o" "gcc" "src/rpc/CMakeFiles/cricket_rpc.dir/server.cpp.o.d"
  "/root/repo/src/rpc/transport.cpp" "src/rpc/CMakeFiles/cricket_rpc.dir/transport.cpp.o" "gcc" "src/rpc/CMakeFiles/cricket_rpc.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xdr/CMakeFiles/cricket_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cricket_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
