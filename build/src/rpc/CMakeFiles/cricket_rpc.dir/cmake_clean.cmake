file(REMOVE_RECURSE
  "CMakeFiles/cricket_rpc.dir/client.cpp.o"
  "CMakeFiles/cricket_rpc.dir/client.cpp.o.d"
  "CMakeFiles/cricket_rpc.dir/portmap.cpp.o"
  "CMakeFiles/cricket_rpc.dir/portmap.cpp.o.d"
  "CMakeFiles/cricket_rpc.dir/record.cpp.o"
  "CMakeFiles/cricket_rpc.dir/record.cpp.o.d"
  "CMakeFiles/cricket_rpc.dir/rpc_msg.cpp.o"
  "CMakeFiles/cricket_rpc.dir/rpc_msg.cpp.o.d"
  "CMakeFiles/cricket_rpc.dir/server.cpp.o"
  "CMakeFiles/cricket_rpc.dir/server.cpp.o.d"
  "CMakeFiles/cricket_rpc.dir/transport.cpp.o"
  "CMakeFiles/cricket_rpc.dir/transport.cpp.o.d"
  "libcricket_rpc.a"
  "libcricket_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
