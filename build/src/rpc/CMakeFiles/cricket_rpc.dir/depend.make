# Empty dependencies file for cricket_rpc.
# This may be replaced when dependencies are built.
