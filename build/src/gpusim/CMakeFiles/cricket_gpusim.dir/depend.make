# Empty dependencies file for cricket_gpusim.
# This may be replaced when dependencies are built.
