file(REMOVE_RECURSE
  "libcricket_gpusim.a"
)
