file(REMOVE_RECURSE
  "CMakeFiles/cricket_gpusim.dir/device.cpp.o"
  "CMakeFiles/cricket_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/cricket_gpusim.dir/device_props.cpp.o"
  "CMakeFiles/cricket_gpusim.dir/device_props.cpp.o.d"
  "CMakeFiles/cricket_gpusim.dir/kernel.cpp.o"
  "CMakeFiles/cricket_gpusim.dir/kernel.cpp.o.d"
  "CMakeFiles/cricket_gpusim.dir/memory.cpp.o"
  "CMakeFiles/cricket_gpusim.dir/memory.cpp.o.d"
  "CMakeFiles/cricket_gpusim.dir/thread_pool.cpp.o"
  "CMakeFiles/cricket_gpusim.dir/thread_pool.cpp.o.d"
  "libcricket_gpusim.a"
  "libcricket_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
