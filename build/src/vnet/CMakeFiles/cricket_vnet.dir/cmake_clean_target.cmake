file(REMOVE_RECURSE
  "libcricket_vnet.a"
)
