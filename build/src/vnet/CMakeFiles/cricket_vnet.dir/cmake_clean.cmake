file(REMOVE_RECURSE
  "CMakeFiles/cricket_vnet.dir/checksum.cpp.o"
  "CMakeFiles/cricket_vnet.dir/checksum.cpp.o.d"
  "CMakeFiles/cricket_vnet.dir/cost_model.cpp.o"
  "CMakeFiles/cricket_vnet.dir/cost_model.cpp.o.d"
  "CMakeFiles/cricket_vnet.dir/minitcp.cpp.o"
  "CMakeFiles/cricket_vnet.dir/minitcp.cpp.o.d"
  "CMakeFiles/cricket_vnet.dir/packet.cpp.o"
  "CMakeFiles/cricket_vnet.dir/packet.cpp.o.d"
  "CMakeFiles/cricket_vnet.dir/virtio_net.cpp.o"
  "CMakeFiles/cricket_vnet.dir/virtio_net.cpp.o.d"
  "CMakeFiles/cricket_vnet.dir/virtqueue.cpp.o"
  "CMakeFiles/cricket_vnet.dir/virtqueue.cpp.o.d"
  "libcricket_vnet.a"
  "libcricket_vnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_vnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
