
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vnet/checksum.cpp" "src/vnet/CMakeFiles/cricket_vnet.dir/checksum.cpp.o" "gcc" "src/vnet/CMakeFiles/cricket_vnet.dir/checksum.cpp.o.d"
  "/root/repo/src/vnet/cost_model.cpp" "src/vnet/CMakeFiles/cricket_vnet.dir/cost_model.cpp.o" "gcc" "src/vnet/CMakeFiles/cricket_vnet.dir/cost_model.cpp.o.d"
  "/root/repo/src/vnet/minitcp.cpp" "src/vnet/CMakeFiles/cricket_vnet.dir/minitcp.cpp.o" "gcc" "src/vnet/CMakeFiles/cricket_vnet.dir/minitcp.cpp.o.d"
  "/root/repo/src/vnet/packet.cpp" "src/vnet/CMakeFiles/cricket_vnet.dir/packet.cpp.o" "gcc" "src/vnet/CMakeFiles/cricket_vnet.dir/packet.cpp.o.d"
  "/root/repo/src/vnet/virtio_net.cpp" "src/vnet/CMakeFiles/cricket_vnet.dir/virtio_net.cpp.o" "gcc" "src/vnet/CMakeFiles/cricket_vnet.dir/virtio_net.cpp.o.d"
  "/root/repo/src/vnet/virtqueue.cpp" "src/vnet/CMakeFiles/cricket_vnet.dir/virtqueue.cpp.o" "gcc" "src/vnet/CMakeFiles/cricket_vnet.dir/virtqueue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/cricket_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cricket_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/cricket_xdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
