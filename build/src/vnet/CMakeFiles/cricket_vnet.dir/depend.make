# Empty dependencies file for cricket_vnet.
# This may be replaced when dependencies are built.
