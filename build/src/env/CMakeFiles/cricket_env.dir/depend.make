# Empty dependencies file for cricket_env.
# This may be replaced when dependencies are built.
