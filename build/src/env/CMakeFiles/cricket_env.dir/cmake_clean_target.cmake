file(REMOVE_RECURSE
  "libcricket_env.a"
)
