file(REMOVE_RECURSE
  "CMakeFiles/cricket_env.dir/environment.cpp.o"
  "CMakeFiles/cricket_env.dir/environment.cpp.o.d"
  "libcricket_env.a"
  "libcricket_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
