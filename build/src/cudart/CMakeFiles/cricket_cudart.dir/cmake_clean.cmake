file(REMOVE_RECURSE
  "CMakeFiles/cricket_cudart.dir/culibs.cpp.o"
  "CMakeFiles/cricket_cudart.dir/culibs.cpp.o.d"
  "CMakeFiles/cricket_cudart.dir/error.cpp.o"
  "CMakeFiles/cricket_cudart.dir/error.cpp.o.d"
  "CMakeFiles/cricket_cudart.dir/local_api.cpp.o"
  "CMakeFiles/cricket_cudart.dir/local_api.cpp.o.d"
  "libcricket_cudart.a"
  "libcricket_cudart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cricket_cudart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
