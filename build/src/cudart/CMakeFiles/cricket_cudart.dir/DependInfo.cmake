
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudart/culibs.cpp" "src/cudart/CMakeFiles/cricket_cudart.dir/culibs.cpp.o" "gcc" "src/cudart/CMakeFiles/cricket_cudart.dir/culibs.cpp.o.d"
  "/root/repo/src/cudart/error.cpp" "src/cudart/CMakeFiles/cricket_cudart.dir/error.cpp.o" "gcc" "src/cudart/CMakeFiles/cricket_cudart.dir/error.cpp.o.d"
  "/root/repo/src/cudart/local_api.cpp" "src/cudart/CMakeFiles/cricket_cudart.dir/local_api.cpp.o" "gcc" "src/cudart/CMakeFiles/cricket_cudart.dir/local_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/cricket_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/fatbin/CMakeFiles/cricket_fatbin.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cricket_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
