file(REMOVE_RECURSE
  "libcricket_cudart.a"
)
