# Empty dependencies file for cricket_cudart.
# This may be replaced when dependencies are built.
