# Empty dependencies file for test_cricket.
# This may be replaced when dependencies are built.
