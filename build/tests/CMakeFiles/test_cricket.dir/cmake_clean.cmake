file(REMOVE_RECURSE
  "CMakeFiles/test_cricket.dir/cricket_test.cpp.o"
  "CMakeFiles/test_cricket.dir/cricket_test.cpp.o.d"
  "test_cricket"
  "test_cricket.pdb"
  "test_cricket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cricket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
