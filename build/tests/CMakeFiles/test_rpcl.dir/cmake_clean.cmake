file(REMOVE_RECURSE
  "CMakeFiles/test_rpcl.dir/rpcl_test.cpp.o"
  "CMakeFiles/test_rpcl.dir/rpcl_test.cpp.o.d"
  "test_rpcl"
  "test_rpcl.pdb"
  "test_rpcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
