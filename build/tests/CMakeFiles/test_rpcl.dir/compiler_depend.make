# Empty compiler generated dependencies file for test_rpcl.
# This may be replaced when dependencies are built.
