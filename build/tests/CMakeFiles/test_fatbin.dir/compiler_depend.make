# Empty compiler generated dependencies file for test_fatbin.
# This may be replaced when dependencies are built.
