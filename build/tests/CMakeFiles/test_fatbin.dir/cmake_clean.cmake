file(REMOVE_RECURSE
  "CMakeFiles/test_fatbin.dir/fatbin_test.cpp.o"
  "CMakeFiles/test_fatbin.dir/fatbin_test.cpp.o.d"
  "test_fatbin"
  "test_fatbin.pdb"
  "test_fatbin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fatbin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
