file(REMOVE_RECURSE
  "CMakeFiles/test_vnet.dir/vnet_test.cpp.o"
  "CMakeFiles/test_vnet.dir/vnet_test.cpp.o.d"
  "test_vnet"
  "test_vnet.pdb"
  "test_vnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
