# Empty compiler generated dependencies file for test_vnet.
# This may be replaced when dependencies are built.
