
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vnet_test.cpp" "tests/CMakeFiles/test_vnet.dir/vnet_test.cpp.o" "gcc" "tests/CMakeFiles/test_vnet.dir/vnet_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vnet/CMakeFiles/cricket_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/cricket_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/cricket_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cricket_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
