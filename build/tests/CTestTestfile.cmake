# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_xdr[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_fatbin[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_cudart[1]_include.cmake")
include("/root/repo/build/tests/test_vnet[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_rpcl[1]_include.cmake")
include("/root/repo/build/tests/test_cricket[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
