// Figure 5: application benchmark execution times across configurations.
//
//   (a) matrixMul, 100 000 iterations           (paper: 100 041 API calls,
//       1.95 MiB transferred)
//   (b) cuSolverDn_LinearSolver, 900x900, 1000  (20 047 calls, 6.07 GiB)
//   (c) histogram                               (80 033 calls, 64 MiB)
//
// For each Table 1 row the workload first runs once at small scale with
// real arithmetic and CPU verification, then at paper scale in timing-only
// mode (the kernels charge modelled cost without recomputing identical
// math). Reported times are virtual.
//
// Flags: --app=matrixMul|linearSolver|histogram|all   (default all)
//        --scale=<0.0..1.0>  iteration-count scale    (default 1.0)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/histogram.hpp"
#include "workloads/linear_solver.hpp"
#include "workloads/matrix_mul.hpp"

namespace {

using namespace cricket;
using bench::Rig;

struct Row {
  std::string config;
  workloads::WorkloadReport report;
};

void print_rows(const char* title, const char* paper_note,
                const std::vector<Row>& rows) {
  std::printf("\n--- Figure 5: %s ---\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "config", "exec", "init",
              "total", "API calls", "memcpy vol");
  const double native =
      rows.empty() ? 1.0 : static_cast<double>(rows[1].report.total_ns);
  for (const auto& row : rows) {
    const auto& r = row.report;
    std::printf("%-10s %12s %12s %12s %10llu %10s  (%.2fx %s)\n",
                row.config.c_str(), sim::format_nanos(
                    static_cast<double>(r.exec_ns)).c_str(),
                sim::format_nanos(static_cast<double>(r.init_ns)).c_str(),
                sim::format_nanos(static_cast<double>(r.total_ns)).c_str(),
                static_cast<unsigned long long>(r.api_calls),
                sim::format_bytes(
                    static_cast<double>(r.memcpy_volume())).c_str(),
                static_cast<double>(r.total_ns) / native,
                r.verified ? "ok" : "UNVERIFIED");
  }
}

template <typename RunFn>
std::vector<Row> run_everywhere(RunFn&& run) {
  std::vector<Row> rows;
  for (const auto& environment : env::all_environments()) {
    Rig rig(environment);
    rows.push_back(Row{environment.name, run(rig)});
  }
  return rows;
}

void run_matrix_mul_fig(double scale) {
  const auto rows = run_everywhere([&](Rig& rig) {
    // Verified warmup at small scale with real arithmetic.
    workloads::MatrixMulConfig warm;
    warm.hA = warm.wA = warm.wB = 64;
    warm.iterations = 1;
    auto warm_report = workloads::run_matrix_mul(
        rig.api(), rig.clock(), rig.environment().flavor, warm);

    workloads::MatrixMulConfig cfg;  // paper scale
    cfg.iterations =
        std::max(1u, static_cast<std::uint32_t>(100'000 * scale));
    cfg.verify = false;
    rig.set_timing_only(true);
    rig.clock().reset();
    auto report = workloads::run_matrix_mul(
        rig.api(), rig.clock(), rig.environment().flavor, cfg);
    rig.set_timing_only(false);
    report.verified = warm_report.verified;
    return report;
  });
  print_rows("(a) matrixMul, 100 000 iterations",
             "unikernels > 2x native; unikernels <= Linux VM; C ~= Rust",
             rows);
}

void run_linear_solver_fig(double scale) {
  const auto rows = run_everywhere([&](Rig& rig) {
    workloads::LinearSolverConfig warm;
    warm.n = 64;
    warm.iterations = 1;
    auto warm_report = workloads::run_linear_solver(
        rig.api(), rig.clock(), rig.environment().flavor, warm);

    workloads::LinearSolverConfig cfg;
    cfg.n = 900;
    cfg.iterations = std::max(1u, static_cast<std::uint32_t>(1'000 * scale));
    cfg.verify = false;
    rig.set_timing_only(true);
    rig.clock().reset();
    auto report = workloads::run_linear_solver(
        rig.api(), rig.clock(), rig.environment().flavor, cfg);
    rig.set_timing_only(false);
    report.verified = warm_report.verified;
    return report;
  });
  print_rows(
      "(b) cuSolverDn_LinearSolver LU, 900x900, 1000 iterations",
      "smallest overheads of the three apps; Hermit only ~26.6% over native",
      rows);
}

void run_histogram_fig(double scale) {
  const auto rows = run_everywhere([&](Rig& rig) {
    workloads::HistogramConfig warm;
    warm.data_bytes = 1 << 18;
    warm.iterations = 1;
    auto warm_report = workloads::run_histogram(
        rig.api(), rig.clock(), rig.environment().flavor, warm);

    workloads::HistogramConfig cfg;
    cfg.iterations = std::max(1u, static_cast<std::uint32_t>(40'000 * scale));
    cfg.verify = false;
    rig.set_timing_only(true);
    rig.clock().reset();
    auto report = workloads::run_histogram(
        rig.api(), rig.clock(), rig.environment().flavor, cfg);
    rig.set_timing_only(false);
    report.verified = warm_report.verified;
    return report;
  });
  print_rows("(c) histogram",
             "Rust ~37.6% faster than C (slow C RNG + short kernels); "
             "unikernels > 2x native",
             rows);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = bench::arg_value(argc, argv, "app", "all");
  const double scale =
      std::atof(bench::arg_value(argc, argv, "scale", "1.0").c_str());

  std::printf("Figure 5 reproduction: execution time on a (simulated) A100 "
              "via 100 Gbit/s Ethernet\n");
  std::printf("scale=%.3g (1.0 = paper iteration counts)\n", scale);

  if (app == "matrixMul" || app == "all") run_matrix_mul_fig(scale);
  if (app == "linearSolver" || app == "all") run_linear_solver_fig(scale);
  if (app == "histogram" || app == "all") run_histogram_fig(scale);
  return 0;
}
