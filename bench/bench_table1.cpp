// Table 1: "Overview of configurations for the evaluation".
//
// Prints the five configuration rows exactly as the paper tabulates them,
// plus the resolved virtio feature set and cost parameters each row maps to
// in this reproduction (DESIGN.md §3, src/env) — and then, per row, a
// measured where-does-the-time-go breakdown: a small mixed workload runs
// under span tracing and the per-layer latency histograms are printed for
// each environment in turn (the obs registry is reset between rows so each
// breakdown is scoped to its configuration).
//
// Flags: --calls=N (mixed workload size, default 2000)
//        --no-breakdown (static tables only)
//        --json=<path> (machine-readable per-env rows)
// Env:   CRICKET_TRACE=<path> / CRICKET_METRICS=<path> via obs::TraceSession.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cudart/raii.hpp"
#include "env/environment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace cricket;

void print_static_tables() {
  std::printf("Table 1: Overview of configurations for the evaluation\n\n");
  std::printf("%-10s %-6s %-13s %-11s %-8s\n", "Name", "app.", "OS",
              "Hypervisor", "Network");
  std::printf("%.*s\n", 52, "----------------------------------------------------");
  for (const auto& e : env::all_environments()) {
    std::printf("%-10s %-6s %-13s %-11s %-8s\n", e.name.c_str(),
                e.app_lang.c_str(), e.os.c_str(), e.hypervisor.c_str(),
                e.network.c_str());
  }

  std::printf("\nResolved network profiles (reproduction parameters):\n\n");
  std::printf("%-10s %5s %5s %5s %5s %5s %9s %9s %8s\n", "Name", "csum",
              "gcsum", "tso", "mrgrx", "gro", "syscall", "vmexit", "pkt_ns");
  for (const auto& e : env::all_environments()) {
    const auto& p = e.profile;
    std::printf("%-10s %5s %5s %5s %5s %5s %7lldns %7lldns %6lldns\n",
                e.name.c_str(), p.offloads.tx_checksum ? "yes" : "no",
                p.offloads.rx_checksum ? "yes" : "no",
                p.offloads.tso ? "yes" : "no",
                p.offloads.mrg_rxbuf ? "yes" : "no",
                p.offloads.rx_coalesce ? "yes" : "no",
                static_cast<long long>(p.guest.syscall_ns),
                static_cast<long long>(p.guest.vm_exit_ns),
                static_cast<long long>(p.guest.per_packet_ns));
  }

  std::printf("\nvirtio feature bits negotiated per guest:\n");
  for (const auto& e : env::all_environments()) {
    if (!e.profile.virtualized) continue;
    std::printf("  %-10s 0x%08llx\n", e.name.c_str(),
                static_cast<unsigned long long>(
                    e.profile.offloads.feature_bits()));
  }
  std::printf("\nAll guests use IP-MTU 9000 over a 100 Gbit/s link, as in "
              "the paper (section 4).\n");
}

/// A small mixed workload (no-payload calls, kernel launches, one 64 KiB
/// round trip) whose spans populate every layer of the breakdown.
void run_mixed_workload(bench::Rig& rig, std::uint64_t calls,
                        sim::Log2Histogram& per_call) {
  int count = 0;
  cuda::Module mod(rig.api(), workloads::sample_cubin());
  const auto fn = mod.function(workloads::kVectorAddKernel);
  cuda::DeviceBuffer a(rig.api(), 64 * 1024), b(rig.api(), 1024),
      c(rig.api(), 1024);
  cuda::ParamPacker params;
  params.add_ptr(c).add_ptr(b).add_ptr(b).add(std::uint32_t{256});
  std::vector<std::uint8_t> host(64 * 1024, 0x5A);
  rig.set_timing_only(true);
  for (std::uint64_t i = 0; i < calls; ++i) {
    const sim::Nanos t0 = rig.clock().now();
    switch (i % 4) {
      case 0:
        cuda::check(rig.api().get_device_count(count));
        break;
      case 1:
      case 2:
        cuda::check(rig.api().launch_kernel(fn, {1, 1, 1}, {256, 1, 1}, 0,
                                            gpusim::kDefaultStream,
                                            params.bytes()));
        break;
      case 3:
        cuda::check(rig.api().memcpy_h2d(a.get(), host));
        break;
    }
    per_call.add(static_cast<std::uint64_t>(rig.clock().now() - t0));
  }
  cuda::check(rig.api().device_synchronize());
  rig.set_timing_only(false);
}

void measured_breakdown(std::uint64_t calls, const std::string& json) {
  std::printf("\n=== Measured per-layer breakdown (mixed workload, %llu "
              "calls per row) ===\n",
              static_cast<unsigned long long>(calls));
  std::vector<bench::BenchRow> rows;
  for (const auto& environment : env::all_environments()) {
    // Reset between rows so each breakdown covers exactly one configuration.
    obs::Registry::global().reset();
    obs::reset_trace();
    bench::Rig rig(env::with_tracing(environment));
    rig.clock().reset();
    sim::Log2Histogram per_call;
    const sim::SimStopwatch sw(rig.clock());
    run_mixed_workload(rig, calls, per_call);
    const auto total = static_cast<double>(sw.elapsed());
    std::printf("\n[%s]  total %s, %.2f us/call", environment.name.c_str(),
                sim::format_nanos(total).c_str(),
                total / static_cast<double>(calls) / 1e3);
    bench::print_layer_breakdown(environment.name.c_str());
    rows.push_back(bench::make_row("table1", "mixed", environment.name,
                                   per_call, total));
  }
  bench::write_bench_json(json, rows);
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceSession trace_session = obs::TraceSession::from_env();
  print_static_tables();
  if (!bench::has_flag(argc, argv, "no-breakdown")) {
    const auto calls = static_cast<std::uint64_t>(
        std::atoll(bench::arg_value(argc, argv, "calls", "2000").c_str()));
    measured_breakdown(calls, bench::arg_value(argc, argv, "json", ""));
  }
  return 0;
}
