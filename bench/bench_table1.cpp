// Table 1: "Overview of configurations for the evaluation".
//
// Prints the five configuration rows exactly as the paper tabulates them,
// plus the resolved virtio feature set and cost parameters each row maps to
// in this reproduction (DESIGN.md §3, src/env).
#include <cstdio>

#include "env/environment.hpp"

int main() {
  using namespace cricket;

  std::printf("Table 1: Overview of configurations for the evaluation\n\n");
  std::printf("%-10s %-6s %-13s %-11s %-8s\n", "Name", "app.", "OS",
              "Hypervisor", "Network");
  std::printf("%.*s\n", 52, "----------------------------------------------------");
  for (const auto& e : env::all_environments()) {
    std::printf("%-10s %-6s %-13s %-11s %-8s\n", e.name.c_str(),
                e.app_lang.c_str(), e.os.c_str(), e.hypervisor.c_str(),
                e.network.c_str());
  }

  std::printf("\nResolved network profiles (reproduction parameters):\n\n");
  std::printf("%-10s %5s %5s %5s %5s %5s %9s %9s %8s\n", "Name", "csum",
              "gcsum", "tso", "mrgrx", "gro", "syscall", "vmexit", "pkt_ns");
  for (const auto& e : env::all_environments()) {
    const auto& p = e.profile;
    std::printf("%-10s %5s %5s %5s %5s %5s %7lldns %7lldns %6lldns\n",
                e.name.c_str(), p.offloads.tx_checksum ? "yes" : "no",
                p.offloads.rx_checksum ? "yes" : "no",
                p.offloads.tso ? "yes" : "no",
                p.offloads.mrg_rxbuf ? "yes" : "no",
                p.offloads.rx_coalesce ? "yes" : "no",
                static_cast<long long>(p.guest.syscall_ns),
                static_cast<long long>(p.guest.vm_exit_ns),
                static_cast<long long>(p.guest.per_packet_ns));
  }

  std::printf("\nvirtio feature bits negotiated per guest:\n");
  for (const auto& e : env::all_environments()) {
    if (!e.profile.virtualized) continue;
    std::printf("  %-10s 0x%08llx\n", e.name.c_str(),
                static_cast<unsigned long long>(
                    e.profile.offloads.feature_bits()));
  }
  std::printf("\nAll guests use IP-MTU 9000 over a 100 Gbit/s link, as in "
              "the paper (section 4).\n");
  return 0;
}
