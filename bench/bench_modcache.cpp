// Content-addressed module cache bench (DESIGN.md §15).
//
// A 16-tenant fleet shares 4 distinct fatbins (the fleet-scale shape from
// ROADMAP item 5: most tenants launch the same kernels). Every client
// connects with the two-phase hash-first load path enabled; the server runs
// the content-addressed module cache. Wire traffic is counted by a
// byte-counting transport decorator around each client connection, so the
// numbers are actual bytes on the wire, not estimates:
//
//   cold    — the first tenant loads all 4 fatbins: every probe misses and
//             the full (compressed) container crosses the wire.
//   repeat  — the remaining 15 tenants load the same 4 fatbins: every
//             probe hits, so only the 8-byte hash and the small result
//             frame cross the wire per load.
//
// Latency is virtual nanoseconds from the node's SimClock (the simulation
// substitution, DESIGN.md §2); wire bytes are exact.
//
// Gates (exit 1 on failure):
//   * every load succeeds and returns the canonical module id
//   * repeat loads move >= 10x fewer wire bytes per load than cold loads
//   * the server cache saw exactly 4 inserts (one per distinct image) and
//     zero evictions; every repeat load hit
//   * tenant memory accounting: each tenant is charged each image once,
//     and disconnecting releases every charge
//
// Flags: --json=PATH (default BENCH_modcache.json)
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "fatbin/cubin.hpp"
#include "fatbin/fatbin.hpp"
#include "modcache/module_cache.hpp"
#include "rpc/transport.hpp"
#include "tenancy/session_manager.hpp"

namespace {

using namespace cricket;

constexpr int kTenants = 16;
constexpr int kImages = 4;

/// Counts every byte crossing the wrapped transport, both directions.
class CountingTransport final : public rpc::Transport {
 public:
  CountingTransport(std::unique_ptr<rpc::Transport> inner,
                    std::atomic<std::uint64_t>* sent,
                    std::atomic<std::uint64_t>* received)
      : inner_(std::move(inner)), sent_(sent), received_(received) {}

  void send(std::span<const std::uint8_t> data) override {
    inner_->send(data);
    sent_->fetch_add(data.size(), std::memory_order_relaxed);
  }
  std::size_t recv(std::span<std::uint8_t> out) override {
    const std::size_t n = inner_->recv(out);
    received_->fetch_add(n, std::memory_order_relaxed);
    return n;
  }
  bool set_recv_timeout(std::chrono::nanoseconds timeout) override {
    return inner_->set_recv_timeout(timeout);
  }
  void shutdown() override { inner_->shutdown(); }

 private:
  std::unique_ptr<rpc::Transport> inner_;
  std::atomic<std::uint64_t>* sent_;
  std::atomic<std::uint64_t>* received_;
};

/// One of the 4 distinct shared modules, shipped as a compressed fatbin —
/// the realistic upload shape (paper §3.3) and the one the cache's wire
/// savings are measured against.
std::vector<std::uint8_t> shared_fatbin(int variant) {
  fatbin::CubinImage img;
  img.sm_arch = 75;
  fatbin::KernelDescriptor k;
  k.name = "fleet_kernel_" + std::to_string(variant);
  k.params = {{.size = 8, .align = 8, .is_pointer = true},
              {.size = 4, .align = 4, .is_pointer = false}};
  img.kernels.push_back(k);
  // ~256 KB of pseudo-ISA per module: large enough that the upload
  // dominates cold wire traffic, as a real fatbin's would.
  img.code = fatbin::make_pseudo_isa(64 * 1024, variant + 17);
  fatbin::Fatbin fb;
  fb.add_raw(75, fatbin::cubin_serialize(img), /*compress=*/true);
  return fb.serialize();
}

struct PhaseResult {
  std::uint64_t loads = 0;
  std::uint64_t wire_bytes = 0;  // both directions, across the phase
  double mean_load_ns = 0;       // virtual time per module_load
  std::uint64_t cache_hits = 0;  // client-observed probe hits
  std::uint64_t bytes_saved = 0; // image bytes that never crossed the wire
};

struct Fleet {
  Fleet()
      : node(cuda::GpuNode::make_a100()),
        tenants(node->clock(),
                {.device_count =
                     static_cast<std::uint32_t>(node->device_count()),
                 .default_tenant = ""}) {
    for (int t = 0; t < kTenants; ++t) {
      tenancy::TenantSpec spec;
      spec.name = "tenant-" + std::to_string(t);
      spec.quota.device_mem_bytes = 64ull << 20;
      (void)tenants.register_tenant(spec);
    }
    core::ServerOptions options;
    options.tenants = &tenants;
    options.module_cache = true;
    server = std::make_unique<core::CricketServer>(*node, options);
  }

  ~Fleet() { join(); }

  std::unique_ptr<core::RemoteCudaApi> connect(int tenant) {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    threads.push_back(server->serve_async(std::move(server_end)));
    auto counted = std::make_unique<CountingTransport>(
        std::move(client_end), &wire_sent, &wire_received);
    core::ClientConfig config;
    config.tenant = "tenant-" + std::to_string(tenant);
    config.module_cache = true;
    return std::make_unique<core::RemoteCudaApi>(
        std::move(counted), node->clock(), std::move(config));
  }

  void join() {
    for (auto& t : threads)
      if (t.joinable()) t.join();
    threads.clear();
  }

  std::uint64_t wire_total() const {
    return wire_sent.load() + wire_received.load();
  }

  std::unique_ptr<cuda::GpuNode> node;
  tenancy::SessionManager tenants;
  std::unique_ptr<core::CricketServer> server;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> wire_sent{0};
  std::atomic<std::uint64_t> wire_received{0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_modcache.json");

  Fleet fleet;
  std::vector<std::vector<std::uint8_t>> images;
  std::uint64_t image_bytes_total = 0;
  for (int i = 0; i < kImages; ++i) {
    images.push_back(shared_fatbin(i));
    image_bytes_total += images.back().size();
  }

  bool gates_ok = true;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench_modcache: GATE FAILED: %s\n", what);
      gates_ok = false;
    }
  };

  // ---- cold: tenant 0 uploads all 4 images (every probe misses) ----
  PhaseResult cold;
  std::vector<cuda::ModuleId> canonical(kImages, 0);
  {
    auto api = fleet.connect(0);
    const std::uint64_t wire0 = fleet.wire_total();
    const auto t0 = fleet.node->clock().now();
    for (int i = 0; i < kImages; ++i) {
      gate(api->module_load(canonical[i], images[i]) == cuda::Error::kSuccess,
           "cold module_load failed");
    }
    cold.loads = kImages;
    cold.mean_load_ns =
        static_cast<double>(fleet.node->clock().now() - t0) / kImages;
    cold.wire_bytes = fleet.wire_total() - wire0;
    cold.cache_hits = api->stats().module_cache_hits;
    cold.bytes_saved = api->stats().module_bytes_saved;
    gate(cold.cache_hits == 0, "cold loads unexpectedly hit the cache");
  }
  fleet.join();  // tenant 0 disconnected; its references released

  // ---- repeat: tenants 1..15 load the same 4 images (probes hit) ----
  PhaseResult repeat;
  {
    double total_ns = 0;
    for (int t = 1; t < kTenants; ++t) {
      auto api = fleet.connect(t);
      const std::uint64_t wire0 = fleet.wire_total();
      const auto t0 = fleet.node->clock().now();
      for (int i = 0; i < kImages; ++i) {
        cuda::ModuleId mod = 0;
        gate(api->module_load(mod, images[i]) == cuda::Error::kSuccess,
             "repeat module_load failed");
        gate(mod == canonical[i],
             "repeat load did not return the canonical module id");
        cuda::FuncId fn = 0;
        gate(api->module_get_function(
                 fn, mod, "fleet_kernel_" + std::to_string(i)) ==
                 cuda::Error::kSuccess,
             "cached module does not resolve its kernel");
      }
      total_ns += static_cast<double>(fleet.node->clock().now() - t0);
      repeat.loads += kImages;
      repeat.wire_bytes += fleet.wire_total() - wire0;
      repeat.cache_hits += api->stats().module_cache_hits;
      repeat.bytes_saved += api->stats().module_bytes_saved;
      const auto tenant_id =
          fleet.tenants.find("tenant-" + std::to_string(t));
      gate(tenant_id.has_value() &&
               fleet.tenants.stats(*tenant_id).mem_used_bytes ==
                   image_bytes_total,
           "tenant charged != once per distinct image");
    }
    repeat.mean_load_ns = total_ns / static_cast<double>(repeat.loads);
  }
  fleet.join();

  // ---- gates over the phase totals ----
  const double cold_per_load =
      static_cast<double>(cold.wire_bytes) / static_cast<double>(cold.loads);
  const double repeat_per_load = static_cast<double>(repeat.wire_bytes) /
                                 static_cast<double>(repeat.loads);
  const double wire_reduction = cold_per_load / repeat_per_load;
  gate(wire_reduction >= 10.0, "repeat loads moved < 10x fewer wire bytes");
  gate(repeat.cache_hits == repeat.loads, "a repeat probe missed");

  const auto stats = fleet.server->module_cache()->stats();
  gate(stats.inserts == kImages, "cache inserts != distinct images");
  gate(stats.evictions == 0, "unexpected eviction under the default budget");
  for (int t = 0; t < kTenants; ++t) {
    const auto id = fleet.tenants.find("tenant-" + std::to_string(t));
    gate(id.has_value() && fleet.tenants.stats(*id).mem_used_bytes == 0,
         "disconnect did not release a tenant's module charges");
  }

  std::printf(
      "bench_modcache: %d tenants, %d distinct fatbins (%.0f KB total)\n"
      "  cold:   %llu loads, %llu wire bytes (%.0f/load), %.0f virtual "
      "ns/load\n"
      "  repeat: %llu loads, %llu wire bytes (%.0f/load), %.0f virtual "
      "ns/load\n"
      "  wire reduction: %.1fx   cache: %llu hits %llu misses %llu inserts\n",
      kTenants, kImages, static_cast<double>(image_bytes_total) / 1024.0,
      static_cast<unsigned long long>(cold.loads),
      static_cast<unsigned long long>(cold.wire_bytes), cold_per_load,
      cold.mean_load_ns, static_cast<unsigned long long>(repeat.loads),
      static_cast<unsigned long long>(repeat.wire_bytes), repeat_per_load,
      repeat.mean_load_ns, wire_reduction,
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.inserts));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_modcache: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    char buf[2048];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"bench\": \"modcache\",\n"
        "  \"fleet\": {\"tenants\": %d, \"images\": %d, "
        "\"image_bytes_total\": %llu},\n"
        "  \"cold\": {\"loads\": %llu, \"wire_bytes\": %llu, "
        "\"wire_bytes_per_load\": %.1f, \"mean_load_ns\": %.1f, "
        "\"cache_hits\": %llu},\n"
        "  \"repeat\": {\"loads\": %llu, \"wire_bytes\": %llu, "
        "\"wire_bytes_per_load\": %.1f, \"mean_load_ns\": %.1f, "
        "\"cache_hits\": %llu, \"bytes_saved\": %llu},\n"
        "  \"wire_reduction\": %.2f,\n"
        "  \"server_cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"inserts\": %llu, \"evictions\": %llu, \"resident_bytes\": %llu, "
        "\"resident_entries\": %llu},\n"
        "  \"gates_ok\": %s\n"
        "}\n",
        kTenants, kImages,
        static_cast<unsigned long long>(image_bytes_total),
        static_cast<unsigned long long>(cold.loads),
        static_cast<unsigned long long>(cold.wire_bytes), cold_per_load,
        cold.mean_load_ns, static_cast<unsigned long long>(cold.cache_hits),
        static_cast<unsigned long long>(repeat.loads),
        static_cast<unsigned long long>(repeat.wire_bytes), repeat_per_load,
        repeat.mean_load_ns,
        static_cast<unsigned long long>(repeat.cache_hits),
        static_cast<unsigned long long>(repeat.bytes_saved), wire_reduction,
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.inserts),
        static_cast<unsigned long long>(stats.evictions),
        static_cast<unsigned long long>(stats.resident_bytes),
        static_cast<unsigned long long>(stats.resident_entries),
        gates_ok ? "true" : "false");
    out << buf;
  }

  return gates_ok ? 0 : 1;
}
