// Shared harness plumbing for the reproduction benches.
//
// Each figure bench builds a "rig" per Table 1 row: a simulated GPU node
// running a Cricket server, connected to a client through that row's
// network path (virtio-net for virtualized rows), with the row's client
// flavour. All numbers reported are *virtual time* from the shared SimClock
// (see DESIGN.md §2 on the simulation substitution).
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "workloads/kernels.hpp"

namespace cricket::bench {

/// A complete client<->server stack for one environment.
class Rig {
 public:
  explicit Rig(env::Environment environment,
               core::ServerOptions server_options = {})
      : environment_(std::move(environment)),
        node_(cuda::GpuNode::make_a100()) {
    workloads::register_sample_kernels(node_->registry());
    // Tracing: `with_tracing` presets switch the collector on; whenever it
    // is on (also via CRICKET_TRACE/TraceSession) the span time source is
    // bound to this rig's SimClock so trace timelines read in virtual time.
    if (environment_.tracing) obs::enable_tracing();
    if (obs::tracing_enabled()) {
      obs::bind_clock(&node_->clock());
      bound_clock_ = true;
    }
    // with_module_cache presets switch on both halves of the negotiation:
    // the server-side content-addressed cache and the client's hash-first
    // load path.
    if (environment_.module_cache) server_options.module_cache = true;
    server_ = std::make_unique<core::CricketServer>(*node_, server_options);
    auto conn = env::connect(environment_, node_->clock());
    server_thread_ = server_->serve_async(std::move(conn.server));
    core::ClientConfig client_config{.flavor = environment_.flavor,
                                     .profile = environment_.profile};
    client_config.module_cache = environment_.module_cache;
    api_ = std::make_unique<core::RemoteCudaApi>(
        std::move(conn.guest), node_->clock(), std::move(client_config));
  }

  ~Rig() {
    api_.reset();  // closes the connection; the server session ends
    if (server_thread_.joinable()) server_thread_.join();
    if (bound_clock_) obs::bind_clock(nullptr);  // clock dies with the rig
  }

  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  [[nodiscard]] core::RemoteCudaApi& api() { return *api_; }
  [[nodiscard]] cuda::GpuNode& node() { return *node_; }
  [[nodiscard]] sim::SimClock& clock() { return node_->clock(); }
  [[nodiscard]] const env::Environment& environment() const {
    return environment_;
  }
  /// Timing-only mode on the device: kernels charge cost but skip math —
  /// used for the paper-scale iteration counts after a verified warmup.
  void set_timing_only(bool value) { node_->device(0).set_timing_only(value); }

 private:
  env::Environment environment_;
  std::unique_ptr<cuda::GpuNode> node_;
  std::unique_ptr<core::CricketServer> server_;
  std::thread server_thread_;
  std::unique_ptr<core::RemoteCudaApi> api_;
  bool bound_clock_ = false;
};

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("%-10s %14s %14s %10s\n", "config", "total", "per-unit",
              "vs native");
}

/// Simple "--flag=value" argument lookup.
inline std::string arg_value(int argc, char** argv, const std::string& name,
                             const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

inline bool has_flag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Machine-readable results (--json=<path>)
// ---------------------------------------------------------------------------

/// One measured configuration of one bench section, in nanoseconds of
/// virtual time. Quantiles come from a per-call Log2Histogram, so p50/p95/
/// p99 are bucket-upper-edge estimates (factor-of-two resolution).
struct BenchRow {
  std::string bench;    // e.g. "fig6_micro"
  std::string section;  // e.g. "kernel_launch"
  std::string config;   // Table 1 row name
  std::uint64_t count = 0;
  double total_ns = 0;
  double mean_ns = 0;
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
  double bytes_per_sec = 0;  // 0 for non-bandwidth sections
};

/// Builds a row from a per-call latency histogram plus the section's total
/// virtual time. `bytes_moved` (optional) yields bytes_per_sec over total.
inline BenchRow make_row(std::string bench, std::string section,
                         std::string config,
                         const sim::Log2Histogram& per_call_ns,
                         double total_ns, std::uint64_t bytes_moved = 0) {
  BenchRow row;
  row.bench = std::move(bench);
  row.section = std::move(section);
  row.config = std::move(config);
  row.count = per_call_ns.total();
  row.total_ns = total_ns;
  row.mean_ns = row.count ? total_ns / static_cast<double>(row.count) : 0.0;
  row.p50_ns = static_cast<double>(per_call_ns.quantile(0.50));
  row.p95_ns = static_cast<double>(per_call_ns.quantile(0.95));
  row.p99_ns = static_cast<double>(per_call_ns.quantile(0.99));
  if (bytes_moved > 0 && total_ns > 0)
    row.bytes_per_sec = static_cast<double>(bytes_moved) / (total_ns / 1e9);
  return row;
}

/// Writes rows as a JSON array (one object per row). Returns false when the
/// file cannot be opened; an empty path is a silent no-op returning true.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRow>& rows) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  {\"bench\": \"%s\", \"section\": \"%s\", "
                  "\"config\": \"%s\", \"count\": %llu, "
                  "\"total_ns\": %.1f, \"mean_ns\": %.1f, "
                  "\"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": %.1f, "
                  "\"bytes_per_sec\": %.1f}%s\n",
                  r.bench.c_str(), r.section.c_str(), r.config.c_str(),
                  static_cast<unsigned long long>(r.count), r.total_ns,
                  r.mean_ns, r.p50_ns, r.p95_ns, r.p99_ns, r.bytes_per_sec,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "]\n";
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Per-layer latency breakdown (from the obs registry)
// ---------------------------------------------------------------------------

/// Prints a Table-1-style where-does-the-time-go breakdown from the
/// `cricket_span_latency_ns{layer=...}` histograms the span collector feeds.
/// Silent when tracing was off (no series have samples). Call
/// `obs::Registry::global().reset()` between configurations to scope the
/// breakdown to one run.
inline void print_layer_breakdown(const char* title = "per-layer latency") {
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  bool printed_header = false;
  for (const auto& [series, hist] : snap.histograms) {
    if (series.rfind("cricket_span_latency_ns", 0) != 0) continue;
    if (hist.hist.total() == 0) continue;
    const auto key_pos = series.find("layer=\"");
    std::string layer = series;
    if (key_pos != std::string::npos) {
      const auto start = key_pos + 7;
      layer = series.substr(start, series.find('"', start) - start);
    }
    if (!printed_header) {
      std::printf("\n--- %s (virtual ns per span) ---\n", title);
      std::printf("%-18s %10s %12s %12s %12s %12s\n", "layer", "count",
                  "mean", "p50", "p95", "p99");
      printed_header = true;
    }
    const double count = static_cast<double>(hist.hist.total());
    std::printf("%-18s %10llu %12.0f %12llu %12llu %12llu\n", layer.c_str(),
                static_cast<unsigned long long>(hist.hist.total()),
                static_cast<double>(hist.sum) / count,
                static_cast<unsigned long long>(hist.hist.quantile(0.50)),
                static_cast<unsigned long long>(hist.hist.quantile(0.95)),
                static_cast<unsigned long long>(hist.hist.quantile(0.99)));
  }
}

}  // namespace cricket::bench
