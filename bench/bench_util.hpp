// Shared harness plumbing for the reproduction benches.
//
// Each figure bench builds a "rig" per Table 1 row: a simulated GPU node
// running a Cricket server, connected to a client through that row's
// network path (virtio-net for virtualized rows), with the row's client
// flavour. All numbers reported are *virtual time* from the shared SimClock
// (see DESIGN.md §2 on the simulation substitution).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "env/environment.hpp"
#include "workloads/kernels.hpp"

namespace cricket::bench {

/// A complete client<->server stack for one environment.
class Rig {
 public:
  explicit Rig(env::Environment environment,
               core::ServerOptions server_options = {})
      : environment_(std::move(environment)),
        node_(cuda::GpuNode::make_a100()) {
    workloads::register_sample_kernels(node_->registry());
    server_ = std::make_unique<core::CricketServer>(*node_, server_options);
    auto conn = env::connect(environment_, node_->clock());
    server_thread_ = server_->serve_async(std::move(conn.server));
    api_ = std::make_unique<core::RemoteCudaApi>(
        std::move(conn.guest), node_->clock(),
        core::ClientConfig{.flavor = environment_.flavor,
                           .profile = environment_.profile});
  }

  ~Rig() {
    api_.reset();  // closes the connection; the server session ends
    if (server_thread_.joinable()) server_thread_.join();
  }

  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  [[nodiscard]] core::RemoteCudaApi& api() { return *api_; }
  [[nodiscard]] cuda::GpuNode& node() { return *node_; }
  [[nodiscard]] sim::SimClock& clock() { return node_->clock(); }
  [[nodiscard]] const env::Environment& environment() const {
    return environment_;
  }
  /// Timing-only mode on the device: kernels charge cost but skip math —
  /// used for the paper-scale iteration counts after a verified warmup.
  void set_timing_only(bool value) { node_->device(0).set_timing_only(value); }

 private:
  env::Environment environment_;
  std::unique_ptr<cuda::GpuNode> node_;
  std::unique_ptr<core::CricketServer> server_;
  std::thread server_thread_;
  std::unique_ptr<core::RemoteCudaApi> api_;
};

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("%-10s %14s %14s %10s\n", "config", "total", "per-unit",
              "vs native");
}

/// Simple "--flag=value" argument lookup.
inline std::string arg_value(int argc, char** argv, const std::string& name,
                             const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

inline bool has_flag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

}  // namespace cricket::bench
