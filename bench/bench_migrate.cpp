// Rolling-restart live-migration bench (DESIGN.md §13).
//
// A two-server fleet (paper-testbed nodes "A" and "B") serves sustained
// multi-tenant traffic over faulted client links (2% record drop each way,
// absorbed by per-call retry against the servers' duplicate-request
// caches). The bench then performs a full rolling restart:
//
//   1. every tenant is live-migrated A -> B (drain / snapshot / transfer /
//      flip), one at a time, while its client keeps issuing kernel
//      launches and readback verifies;
//   2. once no connection references A, A is "restarted" — its node,
//      session manager, and server are replaced by fresh instances, as a
//      binary upgrade would;
//   3. every tenant is migrated back B -> A', and B is restarted the same
//      way. The fleet has now been fully upgraded with zero downtime.
//
// Measured client-side with the real steady clock: for each migration, the
// longest gap between consecutive successful calls of the migrating
// tenant's client that overlaps the migration window — the blackout. The
// committed JSON (BENCH_migrate.json) reports the p50/p99/max over all
// (migration x client) samples against a fixed budget.
//
// Gates (exit 1 on failure):
//   * every migration commits (both directions, every tenant)
//   * zero failed calls across all traffic (retry + DRC absorb everything)
//   * exactly-once: kernel executions across every server generation ==
//     successful launches (no duplicate, no lost execution), with the
//     migrated DRC suppressing cross-flip re-execution
//   * device memory readback matches the written pattern after both hops
//   * every blackout sample within the budget
//
// Flags: --json=PATH (default BENCH_migrate.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "fatbin/cubin.hpp"
#include "faultnet/fault_spec.hpp"
#include "faultnet/faulty_transport.hpp"
#include "migrate/coordinator.hpp"
#include "migrate/redirect.hpp"
#include "migrate/service.hpp"
#include "obs/metrics.hpp"
#include "rpc/transport.hpp"
#include "sim/rng.hpp"
#include "tenancy/session_manager.hpp"

namespace {

using namespace cricket;
using namespace std::chrono_literals;

constexpr int kTenants = 4;          // one per paper-testbed device
constexpr std::uint64_t kBufBytes = 16 * 1024;
constexpr double kDropRate = 0.02;   // per-record, each direction
constexpr double kBlackoutBudgetMs = 5000.0;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The marker kernel every tenant launches; the registered handler counts
// executions, which grounds the exactly-once gate.
fatbin::CubinImage mark_image() {
  fatbin::CubinImage img;
  img.sm_arch = 75;
  fatbin::KernelDescriptor k;
  k.name = "mig_mark";
  k.params = {{.size = 4, .align = 4, .is_pointer = false}};
  img.kernels.push_back(k);
  img.code = fatbin::make_pseudo_isa(64, 3);
  return img;
}

rpc::RetryPolicy traffic_retry() {
  rpc::RetryPolicy retry;
  retry.enabled = true;
  retry.max_attempts = 64;
  retry.attempt_timeout = 100ms;
  retry.deadline = std::chrono::seconds(30);
  retry.assume_at_most_once = true;  // both servers run the DRC
  return retry;
}

/// One fleet member. restart() retires the current node/manager/server
/// instead of destroying them: traffic clients keep a reference to the
/// clock of the node they dialed first, and keeping retired generations
/// alive until the end of the run models a rolling upgrade (the old
/// process lingers until its last connection is gone) without lifetime
/// hazards.
struct Instance {
  explicit Instance(std::string label_) : label(std::move(label_)) { boot(); }

  ~Instance() { join_threads(); }

  void boot() {
    node = cuda::GpuNode::make_paper_testbed();
    node->registry().register_kernel(
        "mig_mark", [n = &execs](gpusim::LaunchContext& ctx) {
          (void)ctx.param<std::uint32_t>(0);
          n->fetch_add(1);
          ctx.charge_flops(1.0);
        });
    tenants = std::make_unique<tenancy::SessionManager>(
        node->clock(),
        tenancy::SessionManagerOptions{
            .device_count = static_cast<std::uint32_t>(node->device_count()),
            .default_tenant = ""});
    core::ServerOptions options;
    options.tenants = tenants.get();
    options.at_most_once = true;  // required by the retrying clients
    server = std::make_unique<core::CricketServer>(*node, options);
  }

  /// Preconditions: every tenant has been migrated off this instance and
  /// every client has completed a call on its new server (so no transport
  /// still points here and the serve threads have all unwound).
  void restart() {
    join_threads();
    retired.push_back({std::move(node), std::move(tenants),
                       std::move(server)});
    boot();
    ++generation;
  }

  void join_threads() {
    std::vector<std::thread> pending;
    {
      const std::lock_guard<std::mutex> lock(threads_mu);
      pending.swap(threads);
    }
    for (auto& t : pending)
      if (t.joinable()) t.join();
  }

  /// Connection factory: a fresh faulted pipe served by the *current*
  /// server generation.
  migrate::RedirectingConnector::Factory factory() {
    return [this]() -> std::unique_ptr<rpc::Transport> {
      auto [client_end, server_end] = rpc::make_pipe_pair();
      std::unique_ptr<rpc::Transport> c = std::move(client_end);
      std::unique_ptr<rpc::Transport> s = std::move(server_end);
      faultnet::FaultSpec drop;
      drop.drop = kDropRate;
      const std::uint64_t n = link_seq.fetch_add(1);
      c = std::make_unique<faultnet::FaultyTransport>(
          std::move(c), drop.with_seed(0xB16B00 + 2 * n + 1));
      s = std::make_unique<faultnet::FaultyTransport>(
          std::move(s), drop.with_seed(0xB16B00 + 2 * n + 2));
      {
        const std::lock_guard<std::mutex> lock(threads_mu);
        threads.push_back(server->serve_async(std::move(s)));
      }
      return c;
    };
  }

  struct Generation {
    std::unique_ptr<cuda::GpuNode> node;
    std::unique_ptr<tenancy::SessionManager> tenants;
    std::unique_ptr<core::CricketServer> server;
  };

  std::string label;
  std::unique_ptr<cuda::GpuNode> node;
  std::unique_ptr<tenancy::SessionManager> tenants;
  std::unique_ptr<core::CricketServer> server;
  std::atomic<std::uint64_t> execs{0};  // across all generations
  int generation = 1;
  std::vector<Generation> retired;
  std::atomic<std::uint64_t> link_seq{0};
  std::mutex threads_mu;
  std::vector<std::thread> threads;
};

/// One tenant's guest: a single connection (one server session — the
/// duplicate-request cache is per connection, so the session's DRC bundle
/// follows its own retried calls through both migrations) issuing marker
/// launches with periodic readback verification.
struct Worker {
  std::string tenant;
  migrate::RedirectingConnector* redirect = nullptr;
  sim::SimClock* clock = nullptr;
  std::uint32_t seed = 0;

  std::atomic<std::uint64_t> ok_calls{0};  // polled by the restart gate
  std::uint64_t calls = 0;
  std::uint64_t failures = 0;
  std::uint64_t launches = 0;         // successful launches only
  bool integrity_ok = true;
  std::vector<std::int64_t> successes;  // steady ns of each successful call
  std::thread thread;

  void run(const std::atomic<bool>& stop) {
    core::ClientConfig config;
    config.tenant = tenant;
    config.retry = traffic_retry();
    config.reconnect = redirect->factory();
    core::RemoteCudaApi api(redirect->dial(), *clock, std::move(config));

    std::vector<std::uint8_t> pattern(kBufBytes);
    sim::Xoshiro256ss rng(seed);
    rng.fill_bytes(pattern);

    const auto ok = [&](cuda::Error err) {
      ++calls;
      if (err == cuda::Error::kSuccess) {
        ok_calls.fetch_add(1);
        successes.push_back(now_ns());
        return true;
      }
      ++failures;
      return false;
    };

    cuda::DevPtr ptr = 0;
    cuda::ModuleId mod = 0;
    cuda::FuncId fn = 0;
    if (!ok(api.malloc(ptr, kBufBytes)) || !ok(api.memcpy_h2d(ptr, pattern)) ||
        !ok(api.module_load(mod, fatbin::cubin_serialize(mark_image()))) ||
        !ok(api.module_get_function(fn, mod, "mig_mark"))) {
      integrity_ok = false;
      return;
    }

    std::vector<std::uint8_t> readback(kBufBytes);
    std::uint32_t tag = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::uint8_t params[4];
      std::memcpy(params, &tag, 4);
      ++tag;
      if (ok(api.launch_kernel(fn, {1, 1, 1}, {1, 1, 1}, 0, 0, params)))
        ++launches;
      if (tag % 64 == 0) {
        if (ok(api.memcpy_d2h(readback, ptr)) && readback != pattern)
          integrity_ok = false;
      }
      std::this_thread::sleep_for(300us);
    }
    if (ok(api.memcpy_d2h(readback, ptr)) && readback != pattern)
      integrity_ok = false;
  }
};

struct MigrationRecord {
  std::string tenant;
  std::string from;
  std::string to;
  migrate::MigrationReport report;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  double blackout_ms = 0;  // filled in after the workers are joined
};

/// Runs one tenant's migration over a clean control link, importing onto
/// `pin` (one device per tenant keeps restored address spaces disjoint).
MigrationRecord run_migration(Instance& source, Instance& target,
                              migrate::RedirectingConnector& redirect,
                              const std::string& tenant, std::uint32_t pin) {
  MigrationRecord rec;
  rec.tenant = tenant;
  rec.from = source.label;
  rec.to = target.label;

  auto [client_end, server_end] = rpc::make_pipe_pair();
  migrate::MigrationTargetOptions target_options;
  target_options.pin_device = pin;
  migrate::MigrationTarget mig_target(*target.server, target_options);
  std::thread serve = mig_target.serve_async(std::move(server_end));
  rpc::ClientOptions client_options;
  client_options.retry = traffic_retry();
  auto client = migrate::make_migrate_client(std::move(client_end),
                                             client_options);
  migrate::MigrationCoordinator coordinator(*source.server, *client,
                                            &redirect, target.factory(), {});
  rec.start_ns = now_ns();
  rec.report = coordinator.migrate(tenant);
  rec.end_ns = now_ns();
  client.reset();  // closes the control link; the serve thread unwinds
  serve.join();
  return rec;
}

/// Blocks until every worker completes one more successful call (post-flip
/// progress implies it reconnected, so its old transport is gone and the
/// drained server's serve threads can be joined before the restart).
bool wait_progress(std::vector<std::unique_ptr<Worker>>& workers) {
  std::vector<std::uint64_t> snap;
  snap.reserve(workers.size());
  for (const auto& w : workers) snap.push_back(w->ok_calls.load());
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  for (;;) {
    bool all = true;
    for (std::size_t i = 0; i < workers.size(); ++i)
      all = all && workers[i]->ok_calls.load() > snap[i];
    if (all) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
}

/// Largest gap between consecutive successful calls that overlaps
/// [start, end], in milliseconds. The pair straddling the window's edge
/// counts: a blackout that begins before the drain or ends after the flip
/// still belongs to this migration.
double blackout_ms(const std::vector<std::int64_t>& successes,
                   std::int64_t start, std::int64_t end) {
  double worst = 0;
  for (std::size_t i = 1; i < successes.size(); ++i) {
    const std::int64_t a = successes[i - 1];
    const std::int64_t b = successes[i];
    if (a > end || b < start) continue;
    worst = std::max(worst, static_cast<double>(b - a) / 1e6);
  }
  return worst;
}

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void write_json(const std::string& path,
                const std::vector<std::unique_ptr<Worker>>& workers,
                const std::vector<MigrationRecord>& migrations,
                std::uint64_t executions, std::uint64_t total_calls,
                std::uint64_t total_failures, std::uint64_t total_launches,
                bool integrity, double p50, double p99, double worst,
                bool gates_ok) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  auto& registry = obs::Registry::global();
  std::fprintf(f, "{\n  \"bench\": \"migrate\",\n");
  std::fprintf(f,
               "  \"fleet\": {\"servers\": 2, \"tenants\": %d, "
               "\"threads_per_tenant\": 1, \"drop_rate\": %.2f},\n",
               kTenants, kDropRate);
  std::fprintf(
      f,
      "  \"traffic\": {\"calls\": %llu, \"failed_calls\": %llu, "
      "\"launches\": %llu, \"executions\": %llu, "
      "\"duplicate_executions\": %lld, \"drc_hits\": %llu, "
      "\"reconnects\": %llu, \"migrating_redirects\": %llu, "
      "\"data_integrity_ok\": %s},\n",
      static_cast<unsigned long long>(total_calls),
      static_cast<unsigned long long>(total_failures),
      static_cast<unsigned long long>(total_launches),
      static_cast<unsigned long long>(executions),
      static_cast<long long>(executions) -
          static_cast<long long>(total_launches),
      static_cast<unsigned long long>(
          registry.counter("cricket_drc_hits_total", {}).value()),
      static_cast<unsigned long long>(
          registry.counter("cricket_rpc_reconnects_total", {}).value()),
      static_cast<unsigned long long>(
          registry.counter("cricket_rpc_migrating_redirects_total", {})
              .value()),
      integrity ? "true" : "false");
  std::fprintf(f, "  \"migrations\": [\n");
  for (std::size_t i = 0; i < migrations.size(); ++i) {
    const MigrationRecord& m = migrations[i];
    std::fprintf(
        f,
        "    {\"tenant\": \"%s\", \"from\": \"%s\", \"to\": \"%s\", "
        "\"committed\": %s, \"sessions\": %llu, \"image_bytes\": %llu, "
        "\"chunks\": %llu, \"duration_ms\": %.2f, \"blackout_ms\": %.2f}%s\n",
        m.tenant.c_str(), m.from.c_str(), m.to.c_str(),
        m.report.committed ? "true" : "false",
        static_cast<unsigned long long>(m.report.sessions),
        static_cast<unsigned long long>(m.report.image_bytes),
        static_cast<unsigned long long>(m.report.chunks),
        static_cast<double>(m.end_ns - m.start_ns) / 1e6, m.blackout_ms,
        i + 1 < migrations.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"blackout_ms\": {\"budget\": %.1f, \"p50\": %.2f, "
               "\"p99\": %.2f, \"max\": %.2f},\n",
               kBlackoutBudgetMs, p50, p99, worst);
  std::fprintf(f, "  \"gates_ok\": %s\n}\n", gates_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nJSON summary written to %s (%zu workers)\n", path.c_str(),
              workers.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_migrate.json");

  std::printf("rolling restart: 2-server fleet, %d tenants, %.0f%% record "
              "drop on every client link\n",
              kTenants, kDropRate * 100);

  Instance a("A");
  Instance b("B");

  std::vector<std::unique_ptr<migrate::RedirectingConnector>> redirects;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::string> tenant_names;
  for (int i = 0; i < kTenants; ++i) {
    tenant_names.push_back("tenant-" + std::to_string(i));
    tenancy::TenantSpec spec;
    spec.name = tenant_names.back();
    (void)a.tenants->register_tenant(spec);
    redirects.push_back(
        std::make_unique<migrate::RedirectingConnector>(a.factory()));
    auto worker = std::make_unique<Worker>();
    worker->tenant = tenant_names.back();
    worker->redirect = redirects.back().get();
    worker->clock = &a.node->clock();
    worker->seed = static_cast<std::uint32_t>(1000 + i);
    workers.push_back(std::move(worker));
  }

  std::atomic<bool> stop{false};
  for (auto& w : workers)
    w->thread = std::thread([&stop, worker = w.get()] { worker->run(stop); });

  std::this_thread::sleep_for(300ms);  // steady-state traffic first

  std::vector<MigrationRecord> migrations;
  const auto roll = [&](Instance& from, Instance& to) {
    for (int i = 0; i < kTenants; ++i) {
      migrations.push_back(run_migration(from, to, *redirects[i],
                                         tenant_names[i],
                                         static_cast<std::uint32_t>(i)));
      const auto& rec = migrations.back();
      std::printf("  %s %s->%s: %s (%llu sessions, %llu bytes, %.1f ms)\n",
                  rec.tenant.c_str(), rec.from.c_str(), rec.to.c_str(),
                  rec.report.committed ? "committed" : rec.report.error.c_str(),
                  static_cast<unsigned long long>(rec.report.sessions),
                  static_cast<unsigned long long>(rec.report.image_bytes),
                  static_cast<double>(rec.end_ns - rec.start_ns) / 1e6);
      std::this_thread::sleep_for(30ms);
    }
  };

  std::printf("phase 1: drain A (migrate every tenant A->B)\n");
  roll(a, b);
  bool progressed = wait_progress(workers);
  std::printf("phase 2: restart A (generation %d -> %d)\n", a.generation,
              a.generation + 1);
  a.restart();
  std::printf("phase 3: drain B (migrate every tenant B->A')\n");
  roll(b, a);
  progressed = wait_progress(workers) && progressed;
  std::printf("phase 4: restart B (generation %d -> %d)\n", b.generation,
              b.generation + 1);
  b.restart();

  std::this_thread::sleep_for(300ms);  // steady-state tail on the new fleet
  stop.store(true);
  for (auto& w : workers)
    if (w->thread.joinable()) w->thread.join();

  // Blackout per (migration x its tenant's worker), computed now that the
  // success timelines are safely joined.
  std::vector<double> samples;
  for (auto& m : migrations) {
    for (const auto& w : workers) {
      if (w->tenant != m.tenant) continue;
      m.blackout_ms = blackout_ms(w->successes, m.start_ns, m.end_ns);
      samples.push_back(m.blackout_ms);
    }
  }
  std::sort(samples.begin(), samples.end());
  const double p50 = quantile(samples, 0.50);
  const double p99 = quantile(samples, 0.99);
  const double worst = samples.empty() ? 0 : samples.back();

  std::uint64_t total_calls = 0, total_failures = 0, total_launches = 0;
  bool integrity = true;
  for (const auto& w : workers) {
    total_calls += w->calls;
    total_failures += w->failures;
    total_launches += w->launches;
    integrity = integrity && w->integrity_ok;
  }
  const std::uint64_t executions = a.execs.load() + b.execs.load();

  bool committed = true;
  for (const auto& m : migrations) committed = committed && m.report.committed;
  std::uint64_t flips = 0;
  for (const auto& r : redirects) flips += r->flips();

  const bool gates_ok = committed && progressed && total_failures == 0 &&
                        integrity && executions == total_launches &&
                        flips == migrations.size() &&
                        (samples.empty() || worst <= kBlackoutBudgetMs);

  std::printf("\ntraffic: %llu calls, %llu failed, %llu launches, "
              "%llu executions (delta %lld)\n",
              static_cast<unsigned long long>(total_calls),
              static_cast<unsigned long long>(total_failures),
              static_cast<unsigned long long>(total_launches),
              static_cast<unsigned long long>(executions),
              static_cast<long long>(executions) -
                  static_cast<long long>(total_launches));
  std::printf("blackout over %zu samples: p50 %.1f ms, p99 %.1f ms, "
              "max %.1f ms (budget %.0f ms)\n",
              samples.size(), p50, p99, worst, kBlackoutBudgetMs);
  std::printf("gates (all migrations committed, zero failed calls, "
              "exactly-once, integrity, blackout budget): %s\n",
              gates_ok ? "OK" : "FAILED");

  write_json(json_path, workers, migrations, executions, total_calls,
             total_failures, total_launches, integrity, p50, p99, worst,
             gates_ok);
  return gates_ok ? 0 : 1;
}
