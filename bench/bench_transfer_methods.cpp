// Transfer-method ablation (paper §4.2 discussion).
//
// "Cricket implements multiple methods for transferring device memory...:
// RPC arguments, parallel sockets, InfiniBand and shared memory." The
// unikernels can only use RPC arguments; this bench quantifies what that
// costs by comparing the three software methods on the native path:
//   * rpc-args       — payload inline in the RPC (single TCP, one thread)
//   * parallel-8     — striped over 8 side connections / threads
//   * shared-memory  — local GPU, no buffer, no wire (the GPUdirect-class
//                      upper bound)
//
// Flags: --mib=N (default 256)
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/bandwidth_test.hpp"

namespace {

using namespace cricket;

struct Row {
  std::string method;
  double h2d_mibps = 0;
  double d2h_mibps = 0;
  bool verified = true;
};

Row run_method(core::TransferMethod method, std::uint64_t bytes) {
  const auto environment = env::make_environment(env::EnvKind::kNativeRust);
  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  core::CricketServer server(*node);

  auto conn = env::connect(environment, node->clock());
  core::TransferLanes client_lanes, server_lanes;
  if (method == core::TransferMethod::kParallelSockets) {
    auto pair = core::make_lane_pairs(8);
    client_lanes = std::move(pair.first);
    server_lanes = std::move(pair.second);
  }
  auto thread =
      server.serve_async(std::move(conn.server), std::move(server_lanes));

  Row row;
  switch (method) {
    case core::TransferMethod::kRpcArgs: row.method = "rpc-args"; break;
    case core::TransferMethod::kParallelSockets:
      row.method = "parallel-8";
      break;
    case core::TransferMethod::kSharedMemory:
      row.method = "shared-memory";
      break;
  }
  {
    core::ClientConfig cfg{.flavor = environment.flavor,
                           .profile = environment.profile,
                           .transfer = method,
                           .local_node = method ==
                                             core::TransferMethod::kSharedMemory
                                         ? node.get()
                                         : nullptr};
    core::RemoteCudaApi api(std::move(conn.guest), node->clock(), cfg,
                            std::move(client_lanes));
    for (const auto dir : {workloads::CopyDirection::kHostToDevice,
                           workloads::CopyDirection::kDeviceToHost}) {
      workloads::BandwidthConfig bcfg;
      bcfg.bytes = bytes;
      bcfg.runs = 2;
      bcfg.direction = dir;
      node->clock().reset();
      const auto report = workloads::run_bandwidth_test(
          api, node->clock(), environment.flavor, bcfg);
      row.verified = row.verified && report.base.verified;
      (dir == workloads::CopyDirection::kHostToDevice ? row.h2d_mibps
                                                      : row.d2h_mibps) =
          report.mib_per_s;
    }
  }
  thread.join();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(
          std::atoll(bench::arg_value(argc, argv, "mib", "256").c_str()))
      << 20;

  std::printf("Transfer-method ablation (%llu MiB per direction, native "
              "client)\n",
              static_cast<unsigned long long>(bytes >> 20));
  std::printf("paper section 4.2: rpc-args is single-core bound; parallel "
              "sockets raise bandwidth but still buffer; shared memory "
              "eliminates the buffer entirely\n\n");
  std::printf("%-14s %14s %14s %10s\n", "method", "H2D MiB/s", "D2H MiB/s",
              "verified");
  for (const auto method :
       {core::TransferMethod::kRpcArgs, core::TransferMethod::kParallelSockets,
        core::TransferMethod::kSharedMemory}) {
    const Row row = run_method(method, bytes);
    std::printf("%-14s %14.1f %14.1f %10s\n", row.method.c_str(),
                row.h2d_mibps, row.d2h_mibps, row.verified ? "yes" : "NO");
  }
  return 0;
}
