// Wall-clock performance of the implementation's own primitives
// (google-benchmark). These are *real time*, unlike the figure benches'
// virtual time: they answer "is this codebase itself fast enough to be a
// credible substrate?"
#include <benchmark/benchmark.h>

#include <thread>

#include "fatbin/cubin.hpp"
#include "fatbin/lz.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "sim/rng.hpp"
#include "vnet/checksum.hpp"
#include "vnet/packet.hpp"
#include "vnet/virtqueue.hpp"
#include "xdr/xdr.hpp"

namespace {

using namespace cricket;

void BM_XdrEncodeU32(benchmark::State& state) {
  xdr::Encoder enc(1 << 16);
  for (auto _ : state) {
    enc.clear();
    for (int i = 0; i < 1000; ++i) enc.put_u32(static_cast<std::uint32_t>(i));
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_XdrEncodeU32);

void BM_XdrOpaqueRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Xoshiro256ss rng(1);
  std::vector<std::uint8_t> payload(n);
  rng.fill_bytes(payload);
  for (auto _ : state) {
    xdr::Encoder enc(n + 16);
    enc.put_opaque(payload);
    xdr::Decoder dec(enc.bytes());
    benchmark::DoNotOptimize(dec.get_opaque());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_XdrOpaqueRoundTrip)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_LzCompress(benchmark::State& state) {
  const auto code = fatbin::make_pseudo_isa(
      static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) benchmark::DoNotOptimize(fatbin::lz_compress(code));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(code.size()));
}
BENCHMARK(BM_LzCompress)->Arg(1 << 12)->Arg(1 << 16);

void BM_LzDecompress(benchmark::State& state) {
  const auto code = fatbin::make_pseudo_isa(
      static_cast<std::size_t>(state.range(0)), 7);
  const auto compressed = fatbin::lz_compress(code);
  for (auto _ : state)
    benchmark::DoNotOptimize(fatbin::lz_decompress(compressed));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(code.size()));
}
BENCHMARK(BM_LzDecompress)->Arg(1 << 12)->Arg(1 << 16);

void BM_InternetChecksum(benchmark::State& state) {
  sim::Xoshiro256ss rng(3);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  rng.fill_bytes(data);
  for (auto _ : state)
    benchmark::DoNotOptimize(vnet::internet_checksum(data));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_InternetChecksum)->Arg(1500)->Arg(9000)->Arg(65536);

void BM_FrameEncodeParse(benchmark::State& state) {
  std::vector<std::uint8_t> payload(8960, 0x5A);
  vnet::EthHeader eth;
  vnet::Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  vnet::TcpHeader tcp;
  for (auto _ : state) {
    const auto frame = vnet::encode_frame(eth, ip, tcp, payload, true);
    benchmark::DoNotOptimize(vnet::parse_frame(frame, true));
  }
  state.SetBytesProcessed(state.iterations() * 8960);
}
BENCHMARK(BM_FrameEncodeParse);

void BM_RpcRoundTrip(benchmark::State& state) {
  rpc::ServiceRegistry registry;
  registry.register_typed<std::uint32_t, std::uint32_t>(
      99, 1, 1, [](std::uint32_t x) { return x + 1; });
  auto [client_end, server_end] = rpc::make_pipe_pair();
  std::thread server([&registry, t = std::move(server_end)]() mutable {
    rpc::serve_transport(registry, *t);
  });
  {
    rpc::RpcClient client(std::move(client_end), 99, 1);
    for (auto _ : state)
      benchmark::DoNotOptimize(
          client.call<std::uint32_t>(1, std::uint32_t{41}));
    state.SetItemsProcessed(state.iterations());
  }
  server.join();
}
BENCHMARK(BM_RpcRoundTrip);

void BM_VirtqueueProduceConsume(benchmark::State& state) {
  vnet::GuestMemory mem(1 << 20);
  vnet::Virtqueue vq(mem, 256);
  std::vector<std::uint8_t> payload(1024, 1);
  const std::span<const std::uint8_t> bufs[1] = {payload};
  for (auto _ : state) {
    const auto head = vq.add_chain(bufs, {});
    vq.kick(*head);
    auto chain = vq.pop_avail(false);
    benchmark::DoNotOptimize(vq.gather(*chain));
    vq.push_used(chain->head, 0);
    const auto used = vq.take_used(false);
    vq.recycle(used->first);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtqueueProduceConsume);

}  // namespace
