// Figure 7: memory transfer bandwidth (bandwidthTest, 512 MiB, A100,
// 100 Gbit/s link) — device-to-host (a) and host-to-device (b).
//
// Paper shape: the unikernels cannot approach native bandwidth (RustyHermit
// ~9.8% of native in one direction) because they lack TSO (and, for
// Unikraft, checksum offload); the Linux VM retains >= ~80%. Disabling the
// VM's TX offloads (TSO, transmit checksum, scatter-gather) collapses its
// host-to-device bandwidth to ~923.9 MiB/s while device-to-host degrades
// far less — the ablation reproduced by --ablate (on by default).
//
// Flags: --dir=h2d|d2h|both   --mib=N (default 512)   --runs=N (default 2)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/bandwidth_test.hpp"

namespace {

using namespace cricket;
using bench::Rig;

struct Row {
  std::string config;
  double mib_per_s = 0;
  bool verified = true;
};

double run_direction(Rig& rig, workloads::CopyDirection dir,
                     std::uint64_t bytes, std::uint32_t runs,
                     bool* verified) {
  workloads::BandwidthConfig cfg;
  cfg.bytes = bytes;
  cfg.runs = runs;
  cfg.direction = dir;
  cfg.verify = true;
  rig.clock().reset();
  const auto report = workloads::run_bandwidth_test(
      rig.api(), rig.clock(), rig.environment().flavor, cfg);
  *verified = report.base.verified;
  return report.mib_per_s;
}

void print_rows(const char* title, const char* paper_note,
                const std::vector<Row>& rows) {
  std::printf("\n--- Figure 7: %s ---\n", title);
  std::printf("paper: %s\n", paper_note);
  const double native = rows[1].mib_per_s;
  for (const auto& row : rows) {
    std::printf("%-16s %10.1f MiB/s   %5.1f%% of native-Rust  %s\n",
                row.config.c_str(), row.mib_per_s,
                row.mib_per_s / native * 100.0,
                row.verified ? "" : "UNVERIFIED");
  }
}

env::Environment vm_without_tx_offloads() {
  auto e = env::make_environment(env::EnvKind::kLinuxVm);
  e.name = "VM-no-offl";
  // Exactly the paper's ablation: TCP segmentation offloading, transmit
  // checksum offloading, and scatter-gather off; receive side untouched.
  e.profile.offloads.tso = false;
  e.profile.offloads.tx_checksum = false;
  e.profile.offloads.scatter_gather = false;
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = bench::arg_value(argc, argv, "dir", "both");
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(
          std::atoll(bench::arg_value(argc, argv, "mib", "512").c_str()))
      << 20;
  const auto runs = static_cast<std::uint32_t>(
      std::atoi(bench::arg_value(argc, argv, "runs", "2").c_str()));

  std::printf("Figure 7 reproduction: bandwidthTest with %llu MiB x %u runs\n",
              static_cast<unsigned long long>(bytes >> 20), runs);

  std::vector<env::Environment> environments = env::all_environments();
  environments.push_back(vm_without_tx_offloads());

  if (dir == "d2h" || dir == "both") {
    std::vector<Row> rows;
    for (const auto& environment : environments) {
      Rig rig(environment);
      Row row{environment.name, 0, true};
      row.mib_per_s =
          run_direction(rig, workloads::CopyDirection::kDeviceToHost, bytes,
                        runs, &row.verified);
      rows.push_back(row);
    }
    print_rows("(a) memory transfer from device to host",
               "unikernels ~10% of native; VM >= 80%; removing the VM's TX "
               "offloads barely hurts this direction",
               rows);
  }
  if (dir == "h2d" || dir == "both") {
    std::vector<Row> rows;
    for (const auto& environment : environments) {
      Rig rig(environment);
      Row row{environment.name, 0, true};
      row.mib_per_s =
          run_direction(rig, workloads::CopyDirection::kHostToDevice, bytes,
                        runs, &row.verified);
      rows.push_back(row);
    }
    print_rows("(b) memory transfer from host to device",
               "RustyHermit ~9.8% of native; VM without TX offloads drops "
               "to ~923.9 MiB/s",
               rows);
  }
  return 0;
}
