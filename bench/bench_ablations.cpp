// Offload & MTU ablations — the paper's explanations and future-work rows,
// made measurable:
//
//   * §3.1: what the paper's Hermit patches (VIRTIO_NET_F_CSUM, GUEST_CSUM,
//     MRG_RXBUF) bought — a "Hermit-before" row without them.
//   * §5: "there are ongoing efforts to support TCP segmentation
//     offloading, which we expect to increase performance significantly" —
//     a "Hermit+TSO" row with it.
//   * §4: the evaluation fixes IP-MTU 9000; an MTU-1500 row shows why.
//
// Flags: --mib=N (default 128)  --calls=N (default 20000)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/bandwidth_test.hpp"

namespace {

using namespace cricket;
using bench::Rig;

env::Environment hermit_before_paper_patches() {
  auto e = env::make_environment(env::EnvKind::kRustyHermit);
  e.name = "Hermit-pre";
  e.profile.offloads.tx_checksum = false;  // the paper added these
  e.profile.offloads.rx_checksum = false;
  e.profile.offloads.mrg_rxbuf = false;
  e.profile.guest.rx_per_buffer_ns = 1'500;
  e.profile.guest.copy_ns_per_byte = 0.08;  // before the copy reduction
  e.profile.guest.tx_copies = 2;
  return e;
}

env::Environment hermit_with_tso() {
  auto e = env::make_environment(env::EnvKind::kRustyHermit);
  e.name = "Hermit+TSO";
  e.profile.offloads.tso = true;  // the paper's projected future work
  return e;
}

env::Environment hermit_with_vdpa() {
  auto e = env::make_environment(env::EnvKind::kRustyHermit);
  e.name = "Hermit+vDPA";
  // §4.2: "vDPA ... removes the virtualization overhead from the data path
  // by allowing direct access to hardware queues" — no VM exits per
  // notification, and the NIC hardware takes over checksum/segmentation.
  e.profile.guest.vm_exit_ns = 0;
  e.profile.offloads.tso = true;
  e.profile.offloads.scatter_gather = true;
  return e;
}

env::Environment hermit_mtu(std::size_t mtu, const char* name) {
  auto e = env::make_environment(env::EnvKind::kRustyHermit);
  e.name = name;
  e.profile.ip_mtu = mtu;
  return e;
}

struct Row {
  std::string name;
  double h2d_mibps = 0;
  double rtt_us = 0;
};

Row measure(const env::Environment& environment, std::uint64_t bytes,
            std::uint64_t calls) {
  Row row{environment.name, 0, 0};
  {
    Rig rig(environment);
    workloads::BandwidthConfig cfg;
    cfg.bytes = bytes;
    cfg.runs = 1;
    cfg.direction = workloads::CopyDirection::kHostToDevice;
    rig.clock().reset();
    row.h2d_mibps = workloads::run_bandwidth_test(
                        rig.api(), rig.clock(), environment.flavor, cfg)
                        .mib_per_s;
  }
  {
    Rig rig(environment);
    rig.clock().reset();
    const sim::SimStopwatch sw(rig.clock());
    int count = 0;
    for (std::uint64_t i = 0; i < calls; ++i)
      cuda::check(rig.api().get_device_count(count));
    row.rtt_us = static_cast<double>(sw.elapsed()) /
                 static_cast<double>(calls) / 1e3;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(
          std::atoll(bench::arg_value(argc, argv, "mib", "128").c_str()))
      << 20;
  const auto calls = static_cast<std::uint64_t>(
      std::atoll(bench::arg_value(argc, argv, "calls", "20000").c_str()));

  std::printf("Hermit offload & MTU ablations (%llu MiB bulk, %llu calls "
              "latency)\n\n",
              static_cast<unsigned long long>(bytes >> 20),
              static_cast<unsigned long long>(calls));

  std::vector<env::Environment> variants = {
      hermit_before_paper_patches(),
      env::make_environment(env::EnvKind::kRustyHermit),
      hermit_with_tso(),
      hermit_with_vdpa(),
      hermit_mtu(1500, "Hermit-1500"),
      hermit_mtu(9000, "Hermit-9000"),
      env::make_environment(env::EnvKind::kNativeRust),
  };

  std::printf("%-12s %14s %14s\n", "variant", "H2D MiB/s", "us/call");
  for (const auto& v : variants) {
    const Row row = measure(v, bytes, calls);
    std::printf("%-12s %14.1f %14.2f\n", row.name.c_str(), row.h2d_mibps,
                row.rtt_us);
  }
  std::printf("\nexpected shape: Hermit-pre < Hermit (the paper's patches), "
              "Hermit << Hermit+TSO (the paper's projection), Hermit-1500 < "
              "Hermit-9000 (why the paper uses jumbo frames)\n");
  return 0;
}
