// Scheduler ablation: FIFO vs fair-share with many unikernel tenants
// (paper §5: "managing the shared access through configurable schedulers").
//
// N Hermit guests share one A100 and enter their launch loops together
// (barrier-synchronized). Tenant 0 launches heavy GEMM kernels (~100us of
// device time each); the others launch light vectorAdds. Under FIFO the
// greedy tenant monopolizes the device unpunished; under fair-share the
// scheduler makes it wait once its device-time lead exceeds the quantum.
//
// Flags: --tenants=N (default 4)  --iters=N (default 150)
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "cudart/raii.hpp"
#include "env/environment.hpp"
#include "sim/stats.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace cricket;

std::vector<core::SchedulerStats> run_policy(core::SchedulerPolicy policy,
                                             int tenants,
                                             std::uint32_t iters) {
  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  core::ServerOptions options;
  options.scheduler = policy;
  core::CricketServer server(*node, options);
  const auto environment = env::make_environment(env::EnvKind::kRustyHermit);

  // The launch phase is about timing, not numerics: skip the arithmetic.
  node->device(0).set_timing_only(true);

  std::barrier start_barrier(tenants);
  std::vector<std::thread> serve_threads, guests;
  for (int t = 0; t < tenants; ++t) {
    auto conn = env::connect(environment, node->clock());
    serve_threads.push_back(server.serve_async(std::move(conn.server)));
    guests.emplace_back([&, t, guest = std::move(conn.guest)]() mutable {
      core::RemoteCudaApi api(
          std::move(guest), node->clock(),
          core::ClientConfig{.flavor = environment.flavor,
                             .profile = environment.profile});
      cuda::Module mod(api, workloads::sample_cubin());
      const bool greedy = t == 0;
      constexpr std::uint32_t kDim = 1024;  // 2.1 GFLOP GEMM, ~110us device
      constexpr std::uint32_t kVec = 4096;

      cuda::FuncId fn = 0;
      cuda::DeviceBuffer a(api, greedy ? kDim * kDim * 4 : kVec * 4);
      cuda::DeviceBuffer b(api, greedy ? kDim * kDim * 4 : kVec * 4);
      cuda::DeviceBuffer c(api, greedy ? kDim * kDim * 4 : kVec * 4);
      cuda::ParamPacker params;
      cuda::Dim3 grid{1, 1, 1}, block{256, 1, 1};
      std::uint32_t shared = 0;
      if (greedy) {
        fn = mod.function(workloads::kMatrixMulKernel);
        params.add_ptr(c).add_ptr(a).add_ptr(b).add(kDim).add(kDim);
        grid = {kDim / 32, kDim / 32, 1};
        block = {32, 32, 1};
        shared = 2 * 32 * 32 * 4;
      } else {
        fn = mod.function(workloads::kVectorAddKernel);
        params.add_ptr(c).add_ptr(a).add_ptr(b).add(kVec);
      }

      start_barrier.arrive_and_wait();
      for (std::uint32_t i = 0; i < iters; ++i) {
        cuda::check(api.launch_kernel(fn, grid, block, shared,
                                      gpusim::kDefaultStream,
                                      params.bytes()));
        cuda::check(api.stream_synchronize(gpusim::kDefaultStream));
      }
      cuda::check(api.device_synchronize());
    });
  }
  for (auto& g : guests) g.join();
  for (auto& s : serve_threads) s.join();

  std::vector<core::SchedulerStats> stats;
  for (int sid = 1; sid <= tenants; ++sid)
    stats.push_back(server.scheduler().stats(static_cast<std::uint64_t>(sid)));
  return stats;
}

void print_results(const char* policy,
                   const std::vector<core::SchedulerStats>& sessions) {
  std::printf("\n%s (per server session, scheduler accounting):\n", policy);
  // The greedy session is the one with the most device time.
  sim::Nanos max_dev = 0;
  for (const auto& s : sessions) max_dev = std::max(max_dev, s.device_time_ns);
  for (const auto& s : sessions) {
    std::printf("  %-7s launches %6llu, device time %10s, throttled wait "
                "%10s\n",
                s.device_time_ns == max_dev ? "greedy" : "fair",
                static_cast<unsigned long long>(s.launches),
                sim::format_nanos(
                    static_cast<double>(s.device_time_ns)).c_str(),
                sim::format_nanos(
                    static_cast<double>(s.total_wait_ns)).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int tenants =
      std::atoi(bench::arg_value(argc, argv, "tenants", "4").c_str());
  const auto iters = static_cast<std::uint32_t>(
      std::atoi(bench::arg_value(argc, argv, "iters", "150").c_str()));

  std::printf("Scheduler ablation: %d Hermit tenants, %u launches each; "
              "tenant 0's kernels are ~50x heavier\n",
              tenants, iters);

  const auto fifo = run_policy(core::SchedulerPolicy::kFifo, tenants, iters);
  print_results("FIFO", fifo);
  const auto fair =
      run_policy(core::SchedulerPolicy::kFairShare, tenants, iters);
  print_results("fair-share", fair);

  sim::Nanos fifo_wait = 0, fair_wait = 0;
  for (const auto& s : fifo) fifo_wait += s.total_wait_ns;
  for (const auto& s : fair) fair_wait += s.total_wait_ns;
  std::printf("\nFIFO never throttles (total wait %s); fair-share charges "
              "the device-time hog (total wait %s)\n",
              sim::format_nanos(static_cast<double>(fifo_wait)).c_str(),
              sim::format_nanos(static_cast<double>(fair_wait)).c_str());
  return 0;
}
