// Multi-tenant fairness + throughput sweep (paper §5: sharing GPUs across
// many unikernel guests "through configurable schedulers").
//
// Sweep: {1, 4, 16, 64} equal-weight tenants plus one misbehaving "hog".
// Tenants run mixed workloads — even-numbered tenants launch matrix_mul
// kernels, odd-numbered tenants move 1 MiB memcpys (arbitrated as large
// transfers) — on the paper testbed node (A100 + 2x T4 + P40), sharded
// across its devices by the tenancy consistent hash. The hog hammers
// 8x-heavier GEMMs and bursts a 256 KiB copy per op under a tight bytes/sec
// quota, so most of its copies are rejected at admission.
//
// Every point runs twice over the same fixed *virtual* window: once under
// the two-level fair-share scheduler and once under FIFO (the no-scheduler
// baseline). Reported per policy: per-tenant device time (tenancy
// accounting), aggregate device utilisation, and hog rejections.
//
// A separate serial section proves the admission property: a rate-limited
// tenant's over-quota calls bump cricket_tenant_admission_rejected_total
// while cricket_rpc_args_decode_total stays frozen (rejection precedes
// argument decode), and the same connection serves again after the token
// bucket refills — never a dropped transport.
//
// Gates (exit 1 on failure, checked at the 16-tenant point):
//   * each non-hog tenant's device time within 10% of the non-hog mean
//   * fair-share aggregate utilisation >= 0.85x the FIFO baseline
//   * admission section: rejections counted, zero decodes while rejecting,
//     service recovered on the same connection
//
// Flags: --window-ms=N (virtual measurement window, default 80)
//        --json=PATH   (default BENCH_tenants.json)
#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cricket/client.hpp"
#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "cudart/raii.hpp"
#include "obs/metrics.hpp"
#include "rpc/transport.hpp"
#include "tenancy/session_manager.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace cricket;

// Smallest size the server arbitrates as a large transfer. Bigger copies
// spend real (host) time in the transport per op, which turns bandwidth
// tenants into real-time laggards that the fair-share catch-up blocking
// then waits on — 256 KiB keeps every guest loop fast in real time while
// still exercising admit_transfer.
constexpr std::uint64_t kCopyBytes = 256 * 1024;

struct TenantOutcome {
  std::string name;
  std::uint64_t device_ns = 0;
  std::uint64_t ops = 0;
  std::uint64_t rejected = 0;
};

struct PolicyResult {
  sim::Nanos elapsed_ns = 0;
  std::uint64_t total_device_ns = 0;
  std::uint64_t total_ops = 0;
  double utilization = 0;  // total_device_ns / elapsed_ns
  TenantOutcome hog;
  std::uint64_t nonhog_min_ns = 0;
  std::uint64_t nonhog_max_ns = 0;
  double nonhog_mean_ns = 0;
  /// max_t |device_ns(t) - mean| / mean over the non-hog tenants.
  double max_share_error = 0;
};

struct SweepPoint {
  int tenants = 0;
  PolicyResult fair;
  PolicyResult fifo;
  double throughput_ratio = 0;  // fair utilization / fifo utilization
  bool fairness_ok = false;
};

tenancy::TenantQuota hog_quota() {
  tenancy::TenantQuota quota;
  quota.bytes_per_sec = 8ull << 20;  // virtual; copy bursts blow past this
  quota.burst_bytes = 2 * kCopyBytes;
  return quota;
}

/// One tenant's guest loop: set up, wait at the barrier, then issue work
/// until the virtual clock passes t_end. Returns completed ops / rejected
/// calls through the out-params (read after join). The transport is a raw
/// in-process pipe (no network model), so virtual time advances only with
/// device work and scheduler charges — the sweep measures the scheduler,
/// not the wire.
void guest_loop(std::unique_ptr<rpc::Transport> transport,
                sim::SimClock& clock, const std::string& tenant, bool hog,
                bool compute, const std::atomic<sim::Nanos>& t_end,
                std::barrier<>& sync, std::uint64_t& ops_out,
                std::uint64_t& rejected_out) {
  core::ClientConfig config;
  config.tenant = tenant;
  core::RemoteCudaApi api(std::move(transport), clock, std::move(config));
  cuda::Module mod(api, workloads::sample_cubin());

  const std::uint32_t dim = hog ? 1024 : 512;  // 2.1 GFLOP vs 268 MFLOP GEMM
  cuda::DeviceBuffer a(api, compute ? dim * dim * 4 : kCopyBytes);
  cuda::DeviceBuffer b(api, compute ? dim * dim * 4 : kCopyBytes);
  cuda::DeviceBuffer c(api, compute ? dim * dim * 4 : kCopyBytes);
  cuda::FuncId fn = 0;
  cuda::ParamPacker params;
  if (compute) {
    fn = mod.function(workloads::kMatrixMulKernel);
    params.add_ptr(c).add_ptr(a).add_ptr(b).add(dim).add(dim);
  }
  const cuda::Dim3 grid{dim / 32, dim / 32, 1}, block{32, 32, 1};
  const std::uint32_t shared = 2 * 32 * 32 * 4;
  std::vector<std::uint8_t> host(kCopyBytes);

  std::uint64_t ops = 0, rejected = 0;
  sync.arrive_and_wait();  // setup done everywhere
  sync.arrive_and_wait();  // main published t_end
  while (clock.now() < t_end.load(std::memory_order_relaxed)) {
    cuda::Error err = cuda::Error::kSuccess;
    if (compute) {
      err = api.launch_kernel(fn, grid, block, shared, gpusim::kDefaultStream,
                              params.bytes());
      if (err == cuda::Error::kSuccess)
        err = api.stream_synchronize(gpusim::kDefaultStream);
    } else {
      err = api.memcpy_h2d(a.get(), host);
      if (err == cuda::Error::kSuccess) err = api.memcpy_d2h(host, a.get());
    }
    // The hog additionally bursts a large copy on every op; its tight
    // bytes/sec quota rejects most of them at admission.
    if (hog && err == cuda::Error::kSuccess) {
      const cuda::Error burst = api.memcpy_h2d(a.get(), host);
      if (burst == cuda::Error::kQuotaExceeded) ++rejected;
    }
    if (err == cuda::Error::kQuotaExceeded) {
      ++rejected;  // admission refusal: clean reply, connection intact
      continue;
    }
    cuda::check(err);
    ++ops;
  }
  cuda::check(api.device_synchronize());
  ops_out = ops;
  rejected_out = rejected;
}

PolicyResult run_policy(core::SchedulerPolicy policy, int tenant_count,
                        sim::Nanos window) {
  auto node = cuda::GpuNode::make_paper_testbed();
  workloads::register_sample_kernels(node->registry());
  for (int d = 0; d < node->device_count(); ++d)
    node->device(d).set_timing_only(true);

  tenancy::SessionManagerOptions topt;
  topt.device_count = static_cast<std::uint32_t>(node->device_count());
  tenancy::SessionManager tenants(node->clock(), topt);

  std::vector<tenancy::TenantId> ids;
  std::vector<std::string> names;
  for (int t = 0; t < tenant_count; ++t) {
    tenancy::TenantSpec spec;
    spec.name = "t" + std::to_string(t);
    names.push_back(spec.name);
    ids.push_back(tenants.register_tenant(spec));
  }
  tenancy::TenantSpec hog_spec;
  hog_spec.name = "hog";
  hog_spec.quota = hog_quota();
  const tenancy::TenantId hog_id = tenants.register_tenant(hog_spec);

  core::ServerOptions options;
  options.scheduler = policy;
  options.scheduler_options.quantum = 200 * sim::kMicrosecond;
  // Every guest stays backlogged until the virtual window closes, so real
  // catch-up blocking always makes progress (the minimum-vtime group never
  // waits). A generous budget keeps the scheduler in the blocking regime —
  // the virtual-charge fallback is for idle laggards, and charging here
  // would inflate virtual elapsed time with no device work behind it.
  options.scheduler_options.max_real_block = std::chrono::milliseconds(200);
  options.tenants = &tenants;
  core::CricketServer server(*node, options);

  const int workers = tenant_count + 1;
  std::barrier sync(workers + 1);  // workers + main (publishes t_end)
  std::vector<std::thread> serve_threads, guests;
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(workers), 0);
  std::vector<std::uint64_t> rejected(static_cast<std::size_t>(workers), 0);
  std::atomic<sim::Nanos> t_end{0};
  for (int w = 0; w < workers; ++w) {
    auto [client_end, server_end] = rpc::make_pipe_pair();
    serve_threads.push_back(server.serve_async(std::move(server_end)));
    const bool hog = w == tenant_count;
    guests.emplace_back(guest_loop, std::move(client_end),
                        std::ref(node->clock()),
                        hog ? std::string("hog") : names[w], hog,
                        hog || w % 2 == 0, std::cref(t_end), std::ref(sync),
                        std::ref(ops[w]), std::ref(rejected[w]));
  }
  // Setup (module load, buffer allocation) runs before the first barrier,
  // so the window measures steady-state contention only (plus <= 1 op of
  // drain per tenant).
  sync.arrive_and_wait();  // all workers finished setup; clock is idle
  const sim::Nanos t0 = node->clock().now();
  t_end.store(t0 + window, std::memory_order_relaxed);
  sync.arrive_and_wait();  // release the measured loops
  for (auto& g : guests) g.join();
  for (auto& s : serve_threads) s.join();

  PolicyResult r;
  r.elapsed_ns = node->clock().now() - t0;
  std::uint64_t nonhog_total = 0;
  for (int t = 0; t < tenant_count; ++t) {
    const auto stats = tenants.stats(ids[t]);
    nonhog_total += stats.device_ns;
    r.nonhog_min_ns = t == 0 ? stats.device_ns
                             : std::min(r.nonhog_min_ns, stats.device_ns);
    r.nonhog_max_ns = std::max(r.nonhog_max_ns, stats.device_ns);
    r.total_ops += ops[static_cast<std::size_t>(t)];
  }
  const auto hog_stats = tenants.stats(hog_id);
  r.hog.name = "hog";
  r.hog.device_ns = hog_stats.device_ns;
  r.hog.ops = ops[static_cast<std::size_t>(tenant_count)];
  r.hog.rejected = hog_stats.calls_rejected;
  r.total_ops += r.hog.ops;
  r.total_device_ns = nonhog_total + hog_stats.device_ns;
  r.utilization = r.elapsed_ns > 0 ? static_cast<double>(r.total_device_ns) /
                                         static_cast<double>(r.elapsed_ns)
                                   : 0.0;
  r.nonhog_mean_ns = tenant_count > 0 ? static_cast<double>(nonhog_total) /
                                            tenant_count
                                      : 0.0;
  if (r.nonhog_mean_ns > 0)
    r.max_share_error =
        std::max(std::abs(static_cast<double>(r.nonhog_max_ns) -
                          r.nonhog_mean_ns),
                 std::abs(static_cast<double>(r.nonhog_min_ns) -
                          r.nonhog_mean_ns)) /
        r.nonhog_mean_ns;
  return r;
}

struct AdmissionProof {
  std::uint64_t rejected = 0;
  std::uint64_t decodes_during_rejection = 0;
  bool recovered = false;
};

/// Serial proof that over-quota rejection precedes argument decode and
/// never drops the connection. Mirrors the tenancy integration test but
/// reports the counters into the committed JSON.
AdmissionProof admission_proof() {
  auto node = cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());
  tenancy::SessionManagerOptions topt;
  topt.device_count = 1;
  tenancy::SessionManager tenants(node->clock(), topt);
  tenancy::TenantSpec spec;
  spec.name = "throttled";
  spec.quota.bytes_per_sec = 1;  // no meaningful refill without advance
  spec.quota.burst_bytes = 256;  // a couple of small calls
  const tenancy::TenantId id = tenants.register_tenant(spec);

  core::ServerOptions options;
  options.tenants = &tenants;
  core::CricketServer server(*node, options);
  auto [client_end, server_end] = rpc::make_pipe_pair();
  std::thread serve = server.serve_async(std::move(server_end));
  AdmissionProof proof;
  {
    core::ClientConfig config;
    config.tenant = "throttled";
    core::RemoteCudaApi api(std::move(client_end), node->clock(),
                            std::move(config));
    int n = 0;
    cuda::Error err = cuda::Error::kSuccess;  // drain the burst allowance
    for (int i = 0; i < 16 && err == cuda::Error::kSuccess; ++i)
      err = api.get_device_count(n);
    obs::Counter& decodes =
        obs::Registry::global().counter("cricket_rpc_args_decode_total", {});
    const std::uint64_t decodes_before = decodes.value();
    for (int i = 0; i < 32; ++i)
      if (api.get_device_count(n) != cuda::Error::kQuotaExceeded) break;
    proof.decodes_during_rejection = decodes.value() - decodes_before;
    proof.rejected = tenants.stats(id).calls_rejected;
    node->clock().advance(sim::kSecond * 600);  // token bucket refills
    proof.recovered = api.get_device_count(n) == cuda::Error::kSuccess;
  }
  serve.join();
  return proof;
}

void print_policy(const char* name, const PolicyResult& r) {
  std::printf("  %-10s elapsed %9s  device %9s  util %4.2f  ops %6llu  "
              "nonhog spread %5.1f%%  hog %9s (%llu rejected)\n",
              name,
              sim::format_nanos(static_cast<double>(r.elapsed_ns)).c_str(),
              sim::format_nanos(static_cast<double>(r.total_device_ns))
                  .c_str(),
              r.utilization, static_cast<unsigned long long>(r.total_ops),
              r.max_share_error * 100,
              sim::format_nanos(static_cast<double>(r.hog.device_ns)).c_str(),
              static_cast<unsigned long long>(r.hog.rejected));
}

void write_json(const std::string& path, sim::Nanos window,
                const AdmissionProof& proof,
                const std::vector<SweepPoint>& sweep, bool gates_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"tenants\",\n");
  std::fprintf(f, "  \"window_ms\": %.0f,\n",
               static_cast<double>(window) / 1e6);
  std::fprintf(f,
               "  \"admission\": {\"rejected\": %llu, "
               "\"decodes_during_rejection\": %llu, "
               "\"recovered_after_refill\": %s},\n",
               static_cast<unsigned long long>(proof.rejected),
               static_cast<unsigned long long>(proof.decodes_during_rejection),
               proof.recovered ? "true" : "false");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f, "    {\"tenants\": %d,\n", p.tenants);
    for (int pol = 0; pol < 2; ++pol) {
      const PolicyResult& r = pol == 0 ? p.fair : p.fifo;
      std::fprintf(
          f,
          "     \"%s\": {\"elapsed_ns\": %llu, \"total_device_ns\": %llu, "
          "\"utilization\": %.4f, \"total_ops\": %llu, "
          "\"nonhog_mean_device_ns\": %.0f, \"nonhog_min_device_ns\": %llu, "
          "\"nonhog_max_device_ns\": %llu, \"max_share_error\": %.4f, "
          "\"hog_device_ns\": %llu, \"hog_rejected\": %llu},\n",
          pol == 0 ? "fair" : "fifo",
          static_cast<unsigned long long>(r.elapsed_ns),
          static_cast<unsigned long long>(r.total_device_ns), r.utilization,
          static_cast<unsigned long long>(r.total_ops), r.nonhog_mean_ns,
          static_cast<unsigned long long>(r.nonhog_min_ns),
          static_cast<unsigned long long>(r.nonhog_max_ns),
          r.max_share_error,
          static_cast<unsigned long long>(r.hog.device_ns),
          static_cast<unsigned long long>(r.hog.rejected));
    }
    std::fprintf(f,
                 "     \"throughput_ratio\": %.4f, \"fairness_ok\": %s}%s\n",
                 p.throughput_ratio, p.fairness_ok ? "true" : "false",
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"gates_ok\": %s\n}\n",
               gates_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nJSON summary written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const sim::Nanos window =
      std::atoi(bench::arg_value(argc, argv, "window-ms", "80").c_str()) *
      sim::kMillisecond;
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_tenants.json");

  std::printf("tenancy sweep: N equal tenants + 1 hog, %.0f ms virtual "
              "window, paper testbed (4 devices)\n",
              static_cast<double>(window) / 1e6);
  std::printf("(mixed workloads: even tenants 512-GEMM, odd tenants 256 KiB "
              "copies; hog runs 1024-GEMMs + rate-limited copy bursts)\n");

  std::printf("\nadmission proof (serial, rate-limited tenant):\n");
  const AdmissionProof proof = admission_proof();
  std::printf("  %llu calls rejected at admission, %llu argument decodes "
              "while rejecting, recovered on same connection: %s\n",
              static_cast<unsigned long long>(proof.rejected),
              static_cast<unsigned long long>(proof.decodes_during_rejection),
              proof.recovered ? "yes" : "NO");

  const int counts[] = {1, 4, 16, 64};
  std::vector<SweepPoint> sweep;
  for (const int n : counts) {
    std::fprintf(stderr, "%d tenants...\n", n);
    SweepPoint p;
    p.tenants = n;
    p.fair = run_policy(core::SchedulerPolicy::kFairShare, n, window);
    p.fifo = run_policy(core::SchedulerPolicy::kFifo, n, window);
    p.throughput_ratio = p.fifo.utilization > 0
                             ? p.fair.utilization / p.fifo.utilization
                             : 0.0;
    p.fairness_ok = p.fair.max_share_error <= 0.10;
    std::printf("\n%d tenants + hog:\n", n);
    print_policy("fair-share", p.fair);
    print_policy("fifo", p.fifo);
    std::printf("  throughput ratio (fair/fifo) %.2f\n", p.throughput_ratio);
    sweep.push_back(p);
  }

  // Acceptance (ISSUE): checked at the 16-tenant point.
  bool ok = proof.rejected > 0 && proof.decodes_during_rejection == 0 &&
            proof.recovered;
  for (const SweepPoint& p : sweep) {
    if (p.tenants != 16) continue;
    if (!p.fairness_ok) ok = false;
    if (p.throughput_ratio < 0.85) ok = false;
    if (p.fair.hog.rejected == 0) ok = false;  // the hog must be contained
  }
  std::printf("\ngates (16-tenant fairness <= 10%%, throughput >= 0.85x "
              "fifo, admission proof): %s\n",
              ok ? "pass" : "FAIL");

  write_json(json_path, window, proof, sweep, ok);
  return ok ? 0 : 1;
}
