// faultnet recovery bench: goodput and recovery latency vs loss rate.
//
// Sweeps a seeded message-loss rate over both directions of one RPC
// connection and drives a stream of echo calls through the full recovery
// stack — per-call deadlines, idempotency-aware retry with capped backoff,
// and the server's duplicate-request cache. Unlike the paper-figure benches
// this one reports WALL time: retry timeouts run on steady_clock, so the
// recovery cost is real elapsed time, not virtual wire time.
//
// Reported per loss rate:
//   goodput       — successfully completed calls/sec (wall)
//   retries       — wire-level re-sends the client performed
//   drc hits      — retries the server answered from the duplicate cache
//                   (each one is a re-execution that did NOT happen)
//   recovery lat  — mean latency of calls that needed at least one retry,
//                   next to the mean of clean calls for contrast
//
// Determinism: the fault mix is seeded; identical --seed runs inject
// identical fault counts (printed per rate so this is checkable).
//
// Flags: --calls=N  --seed=S  --json=PATH
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "faultnet/fault_spec.hpp"
#include "faultnet/faulty_transport.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"

namespace {

using namespace cricket;
using namespace std::chrono_literals;

constexpr std::uint32_t kProg = 0x20000006;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcEcho = 1;

struct RateResult {
  double loss = 0.0;
  std::uint64_t calls = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;          // deadline exhausted
  std::uint64_t recovered = 0;       // succeeded after >=1 retry
  std::uint64_t retries = 0;
  std::uint64_t drc_hits = 0;
  std::uint64_t injected_client = 0;  // faults on the call direction
  std::uint64_t injected_server = 0;  // faults on the reply direction
  double wall_s = 0.0;
  double goodput_cps = 0.0;
  double clean_mean_us = 0.0;
  double recovery_mean_us = 0.0;
};

RateResult run_rate(double loss, std::uint64_t calls, std::uint64_t seed) {
  RateResult r;
  r.loss = loss;
  r.calls = calls;

  rpc::ServiceRegistry registry;
  registry.register_typed<std::uint32_t, std::uint32_t>(
      kProg, kVers, kProcEcho, [](std::uint32_t v) { return v; });
  registry.enable_duplicate_cache();

  faultnet::FaultSpec spec;
  spec.drop = loss;
  spec.seed = seed;

  auto [client_end, server_end] = rpc::make_pipe_pair();
  auto client_faulty = std::make_unique<faultnet::FaultyTransport>(
      std::move(client_end), spec.with_seed(seed ^ 0xC11Eu));
  auto server_faulty = std::make_unique<faultnet::FaultyTransport>(
      std::move(server_end), spec.with_seed(seed ^ 0x5EEEu));
  auto* client_stats = client_faulty.get();
  auto* server_stats = server_faulty.get();

  std::thread server_thread(
      [&registry, transport = std::move(server_faulty)]() mutable {
        rpc::serve_transport(registry, *transport, rpc::ServeOptions{});
      });

  rpc::ClientOptions options;
  options.retry.enabled = true;
  options.retry.max_attempts = 10;
  options.retry.attempt_timeout = 5ms;
  options.retry.deadline = 2s;
  options.retry.backoff_base = 1ms;
  options.retry.backoff_cap = 20ms;
  options.retry.seed = seed;

  double clean_us = 0.0, recovery_us = 0.0;
  {
    rpc::RpcClient client(std::move(client_faulty), kProg, kVers, options);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t retries_before = 0;
    for (std::uint64_t i = 0; i < calls; ++i) {
      const auto c0 = std::chrono::steady_clock::now();
      bool ok = false;
      try {
        ok = client.call<std::uint32_t>(
                 kProcEcho, static_cast<std::uint32_t>(i)) ==
             static_cast<std::uint32_t>(i);
      } catch (const rpc::RpcError&) {
        ++r.failed;
      }
      const double us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - c0)
              .count();
      const std::uint64_t retries_now = client.stats().retries;
      if (ok) {
        ++r.ok;
        if (retries_now > retries_before) {
          ++r.recovered;
          recovery_us += us;
        } else {
          clean_us += us;
        }
      }
      retries_before = retries_now;
    }
    r.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    r.retries = client.stats().retries;
    r.injected_client = client_stats->stats().injected();
    // Read the reply-direction injector before teardown (the serve thread
    // owns it and destroys it on exit).
    r.injected_server = server_stats->stats().injected();
  }
  server_thread.join();

  r.drc_hits = registry.drc_stats().hits;
  r.goodput_cps = r.wall_s > 0 ? static_cast<double>(r.ok) / r.wall_s : 0.0;
  const std::uint64_t clean = r.ok - r.recovered;
  r.clean_mean_us = clean > 0 ? clean_us / static_cast<double>(clean) : 0.0;
  r.recovery_mean_us =
      r.recovered > 0 ? recovery_us / static_cast<double>(r.recovered) : 0.0;
  return r;
}

void write_json(const std::string& path, std::uint64_t calls,
                std::uint64_t seed, const std::vector<RateResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"faultnet\",\n");
  std::fprintf(f, "  \"calls\": %llu,\n  \"seed\": %llu,\n  \"rates\": [\n",
               static_cast<unsigned long long>(calls),
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"loss\": %.2f, \"ok\": %llu, \"failed\": %llu, "
        "\"recovered\": %llu, \"retries\": %llu, \"drc_hits\": %llu, "
        "\"injected\": %llu, \"goodput_calls_per_sec\": %.1f, "
        "\"clean_mean_us\": %.1f, \"recovery_mean_us\": %.1f}%s\n",
        r.loss, static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.recovered),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.drc_hits),
        static_cast<unsigned long long>(r.injected_client +
                                        r.injected_server),
        r.goodput_cps, r.clean_mean_us, r.recovery_mean_us,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON summary written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto calls = static_cast<std::uint64_t>(
      std::atoll(bench::arg_value(argc, argv, "calls", "500").c_str()));
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(bench::arg_value(argc, argv, "seed", "42").c_str()));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "bench_faultnet.json");

  std::printf("faultnet recovery: %llu echo calls per loss rate, seed %llu\n",
              static_cast<unsigned long long>(calls),
              static_cast<unsigned long long>(seed));
  std::printf("(wall time; retry: 10 attempts, 5 ms attempt timeout, "
              "1-20 ms backoff; server runs the duplicate-request cache)\n\n");

  const double rates[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  std::vector<RateResult> results;
  for (const double loss : rates) {
    std::fprintf(stderr, "loss %.0f%%...\n", loss * 100);
    results.push_back(run_rate(loss, calls, seed));
  }

  std::printf("%6s %8s %7s %8s %8s %9s %12s %11s %12s\n", "loss", "ok",
              "failed", "retries", "drc", "injected", "goodput", "clean",
              "recovery");
  for (const auto& r : results) {
    std::printf(
        "%5.0f%% %8llu %7llu %8llu %8llu %9llu %9.0f c/s %9.1f us %9.1f us\n",
        r.loss * 100, static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.drc_hits),
        static_cast<unsigned long long>(r.injected_client +
                                        r.injected_server),
        r.goodput_cps, r.clean_mean_us, r.recovery_mean_us);
  }

  // Acceptance: at <=5% loss every call must complete (the retry budget is
  // far deeper than the loss run-lengths a seeded 5% stream produces).
  bool ok = true;
  for (const auto& r : results)
    if (r.loss <= 0.05 && r.failed != 0) ok = false;
  std::printf("\nzero failed calls at <=5%% loss: %s\n", ok ? "yes" : "NO");

  write_json(json_path, calls, seed, results);
  return ok ? 0 : 1;
}
