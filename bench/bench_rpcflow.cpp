// rpcflow pipelining bench: serial vs pipelined vs pipelined+batched.
//
// The paper's forwarding stack is one synchronous RPC per CUDA call (§4.2),
// so Figure 6a's no-payload micro-calls pay a full round trip each. This
// bench quantifies what the opt-in rpcflow subsystem buys back on the same
// simulated wire: for every Table-1 environment it storms N no-payload
// calls (cudaSetDevice(0), a fire-and-forget proc) through
//
//   serial      — the stock synchronous RemoteCudaApi, one RPC per call
//   pipelined   — AsyncRemoteCudaApi, depth-D xid-multiplexed window,
//                 every call its own wire record
//   pipe+batch  — same window plus the small-call batcher (one wire record
//                 flush per coalesced group) and server reply coalescing
//
// and reports virtual-time calls/sec plus speedup over serial. Acceptance
// target (ISSUE): >= 4x calls/sec over serial at depth >= 8 on at least one
// environment. A machine-readable JSON summary is written as well.
//
// Flags: --calls=N  --depth=D  --json=PATH
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cricket/async_api.hpp"
#include "sim/stats.hpp"

namespace {

using namespace cricket;

/// Client<->server stack with the pipelined client; mirrors bench::Rig but
/// enables the server's pipelined per-connection loop (workers clamped to 1
/// by CricketServer for in-order session execution).
class AsyncRig {
 public:
  AsyncRig(const env::Environment& environment, std::uint32_t depth,
           bool batching)
      : node_(cuda::GpuNode::make_a100()) {
    workloads::register_sample_kernels(node_->registry());
    core::ServerOptions server_options;
    server_options.serve.workers = 1;
    server_ = std::make_unique<core::CricketServer>(*node_, server_options);
    auto conn = env::connect(environment, node_->clock());
    server_thread_ = server_->serve_async(std::move(conn.server));
    core::AsyncClientConfig config;
    config.flavor = environment.flavor;
    config.pipeline =
        env::PipelineConfig{.enabled = true, .depth = depth, .batching = batching};
    api_ = std::make_unique<core::AsyncRemoteCudaApi>(
        std::move(conn.guest), node_->clock(), config);
  }

  ~AsyncRig() {
    api_.reset();
    if (server_thread_.joinable()) server_thread_.join();
  }

  AsyncRig(const AsyncRig&) = delete;
  AsyncRig& operator=(const AsyncRig&) = delete;

  [[nodiscard]] core::AsyncRemoteCudaApi& api() { return *api_; }
  [[nodiscard]] sim::SimClock& clock() { return node_->clock(); }

 private:
  std::unique_ptr<cuda::GpuNode> node_;
  std::unique_ptr<core::CricketServer> server_;
  std::thread server_thread_;
  std::unique_ptr<core::AsyncRemoteCudaApi> api_;
};

struct Mode {
  std::string name;
  sim::Nanos total = 0;
  double calls_per_sec = 0;
  double speedup = 1.0;
};

struct EnvResult {
  std::string environment;
  std::vector<Mode> modes;
};

double to_calls_per_sec(std::uint64_t calls, sim::Nanos total) {
  return total == 0 ? 0.0
                    : static_cast<double>(calls) /
                          (static_cast<double>(total) / 1e9);
}

sim::Nanos run_serial(const env::Environment& environment,
                      std::uint64_t calls) {
  bench::Rig rig(environment);
  rig.clock().reset();
  const sim::SimStopwatch sw(rig.clock());
  for (std::uint64_t i = 0; i < calls; ++i)
    cuda::check(rig.api().set_device(0));
  return sw.elapsed();
}

sim::Nanos run_pipelined(const env::Environment& environment,
                         std::uint64_t calls, std::uint32_t depth,
                         bool batching) {
  AsyncRig rig(environment, depth, batching);
  rig.clock().reset();
  const sim::SimStopwatch sw(rig.clock());
  for (std::uint64_t i = 0; i < calls; ++i)
    cuda::check(rig.api().set_device(0));
  cuda::check(rig.api().drain());
  return sw.elapsed();
}

void write_json(const std::string& path, std::uint64_t calls,
                std::uint32_t depth, const std::vector<EnvResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"rpcflow\",\n");
  std::fprintf(f, "  \"proc\": \"cudaSetDevice\",\n");
  std::fprintf(f, "  \"calls\": %llu,\n  \"depth\": %u,\n",
               static_cast<unsigned long long>(calls), depth);
  std::fprintf(f, "  \"environments\": [\n");
  for (std::size_t e = 0; e < results.size(); ++e) {
    const auto& env_result = results[e];
    std::fprintf(f, "    {\"name\": \"%s\", \"modes\": [\n",
                 env_result.environment.c_str());
    for (std::size_t m = 0; m < env_result.modes.size(); ++m) {
      const auto& mode = env_result.modes[m];
      std::fprintf(f,
                   "      {\"mode\": \"%s\", \"total_ns\": %llu, "
                   "\"calls_per_sec\": %.1f, \"speedup_vs_serial\": %.2f}%s\n",
                   mode.name.c_str(),
                   static_cast<unsigned long long>(mode.total),
                   mode.calls_per_sec, mode.speedup,
                   m + 1 < env_result.modes.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", e + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON summary written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto calls = static_cast<std::uint64_t>(
      std::atoll(bench::arg_value(argc, argv, "calls", "20000").c_str()));
  const auto depth = static_cast<std::uint32_t>(
      std::atoi(bench::arg_value(argc, argv, "depth", "32").c_str()));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "bench_rpcflow.json");

  std::printf("rpcflow pipelining: %llu no-payload cudaSetDevice calls, "
              "window depth %u\n",
              static_cast<unsigned long long>(calls), depth);
  std::printf("(virtual time; serial = the paper-faithful synchronous "
              "client)\n");

  std::vector<EnvResult> results;
  for (const auto& environment : env::all_environments()) {
    EnvResult env_result;
    env_result.environment = environment.name;

    std::fprintf(stderr, "[%s] serial...\n", environment.name.c_str());
    Mode serial{.name = "serial"};
    serial.total = run_serial(environment, calls);
    serial.calls_per_sec = to_calls_per_sec(calls, serial.total);
    env_result.modes.push_back(serial);

    std::fprintf(stderr, "[%s] pipelined...\n", environment.name.c_str());
    Mode pipelined{.name = "pipelined"};
    pipelined.total = run_pipelined(environment, calls, depth, false);
    pipelined.calls_per_sec = to_calls_per_sec(calls, pipelined.total);
    pipelined.speedup = static_cast<double>(serial.total) /
                        static_cast<double>(pipelined.total);
    env_result.modes.push_back(pipelined);

    std::fprintf(stderr, "[%s] pipelined+batched...\n",
                 environment.name.c_str());
    Mode batched{.name = "pipelined+batched"};
    batched.total = run_pipelined(environment, calls, depth, true);
    batched.calls_per_sec = to_calls_per_sec(calls, batched.total);
    batched.speedup = static_cast<double>(serial.total) /
                      static_cast<double>(batched.total);
    env_result.modes.push_back(batched);

    results.push_back(std::move(env_result));
  }

  std::printf("\n%-10s %-18s %14s %16s %10s\n", "config", "mode", "total",
              "calls/sec", "speedup");
  for (const auto& env_result : results) {
    for (const auto& mode : env_result.modes) {
      std::printf("%-10s %-18s %14s %16.0f %9.2fx\n",
                  env_result.environment.c_str(), mode.name.c_str(),
                  sim::format_nanos(static_cast<double>(mode.total)).c_str(),
                  mode.calls_per_sec, mode.speedup);
    }
  }

  bool target_met = false;
  for (const auto& env_result : results)
    for (const auto& mode : env_result.modes)
      if (mode.speedup >= 4.0) target_met = true;
  std::printf("\n>=4x over serial on at least one environment: %s\n",
              target_met ? "yes" : "NO");

  write_json(json_path, calls, depth, results);
  return target_met ? 0 : 1;
}
