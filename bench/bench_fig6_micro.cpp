// Figure 6: execution time of 100 000 calls of CUDA APIs.
//
//   (a) cudaGetDeviceCount  — no-payload round trip
//   (b) cudaMalloc/cudaFree — alternating, server-side bookkeeping
//   (c) kernel launch       — parameter blob, the dominant call type in the
//                             Fig. 5 applications
//
// Paper shape: the Linux VM is slowest for every API, RustyHermit has the
// smallest virtualized overhead but still needs more than double the native
// time; the Rust kernel launches are ~6.3% faster than C (no <<<...>>>
// compatibility logic).
//
// Flags: --api=getDeviceCount|mallocFree|kernelLaunch|all  --calls=N
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cudart/raii.hpp"
#include "sim/stats.hpp"

namespace {

using namespace cricket;
using bench::Rig;

struct Row {
  std::string config;
  sim::Nanos total = 0;
};

void print_rows(const char* title, const char* paper_note,
                const std::vector<Row>& rows, std::uint64_t calls) {
  std::printf("\n--- Figure 6: %s (%llu calls) ---\n", title,
              static_cast<unsigned long long>(calls));
  std::printf("paper: %s\n", paper_note);
  const double native = static_cast<double>(rows[1].total);
  for (const auto& row : rows) {
    std::printf("%-10s %12s total %10.2f us/call   %.2fx native-Rust\n",
                row.config.c_str(),
                sim::format_nanos(static_cast<double>(row.total)).c_str(),
                static_cast<double>(row.total) / static_cast<double>(calls) /
                    1e3,
                static_cast<double>(row.total) / native);
  }
}

template <typename Body>
std::vector<Row> measure(std::uint64_t calls, Body&& body) {
  std::vector<Row> rows;
  for (const auto& environment : env::all_environments()) {
    Rig rig(environment);
    rig.clock().reset();
    const sim::SimStopwatch sw(rig.clock());
    body(rig, calls);
    rows.push_back(Row{environment.name, sw.elapsed()});
  }
  return rows;
}

void bench_get_device_count(std::uint64_t calls) {
  const auto rows = measure(calls, [](Rig& rig, std::uint64_t n) {
    int count = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      cuda::check(rig.api().get_device_count(count));
  });
  print_rows("(a) cudaGetDeviceCount",
             "VM slowest; Hermit best virtualized; all > 2x native", rows,
             calls);
}

void bench_malloc_free(std::uint64_t calls) {
  const auto rows = measure(calls, [](Rig& rig, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n / 2; ++i) {
      cuda::DevPtr p = 0;
      cuda::check(rig.api().malloc(p, 1 << 20));
      cuda::check(rig.api().free(p));
    }
  });
  print_rows("(b) cudaMalloc and cudaFree (alternating)",
             "same ordering as (a); bookkeeping adds server-side time", rows,
             calls);
}

void bench_kernel_launch(std::uint64_t calls) {
  const auto rows = measure(calls, [](Rig& rig, std::uint64_t n) {
    cuda::Module mod(rig.api(), workloads::sample_cubin());
    const auto fn = mod.function(workloads::kVectorAddKernel);
    cuda::DeviceBuffer a(rig.api(), 1024), b(rig.api(), 1024),
        c(rig.api(), 1024);
    cuda::ParamPacker params;
    params.add_ptr(c).add_ptr(a).add_ptr(b).add(std::uint32_t{256});
    rig.set_timing_only(true);
    for (std::uint64_t i = 0; i < n; ++i)
      cuda::check(rig.api().launch_kernel(fn, {1, 1, 1}, {256, 1, 1}, 0,
                                          gpusim::kDefaultStream,
                                          params.bytes()));
    cuda::check(rig.api().device_synchronize());
    rig.set_timing_only(false);
  });
  print_rows("(c) kernel launch",
             "Rust ~6.3% faster than C (<<<...>>> compat logic omitted)",
             rows, calls);

  // Make the C-vs-Rust launch delta explicit, as the paper calls it out.
  const double c_time = static_cast<double>(rows[0].total);
  const double rust_time = static_cast<double>(rows[1].total);
  std::printf("Rust launch speedup over C: %.1f%% (paper: ~6.3%%)\n",
              (c_time - rust_time) / c_time * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string api = bench::arg_value(argc, argv, "api", "all");
  const auto calls = static_cast<std::uint64_t>(
      std::atoll(bench::arg_value(argc, argv, "calls", "100000").c_str()));

  std::printf("Figure 6 reproduction: CUDA API micro-benchmarks over the "
              "Cricket layer\n");
  if (api == "getDeviceCount" || api == "all") bench_get_device_count(calls);
  if (api == "mallocFree" || api == "all") bench_malloc_free(calls);
  if (api == "kernelLaunch" || api == "all") bench_kernel_launch(calls);
  return 0;
}
