// Figure 6: execution time of 100 000 calls of CUDA APIs.
//
//   (a) cudaGetDeviceCount  — no-payload round trip
//   (b) cudaMalloc/cudaFree — alternating, server-side bookkeeping
//   (c) kernel launch       — parameter blob, the dominant call type in the
//                             Fig. 5 applications
//   (d) cudaMemcpy          — 64 KiB H2D/D2H round trips (not a paper panel;
//                             the canonical span-tracing demo: one call
//                             crosses client → channel → vnet → server → gpu)
//
// Paper shape: the Linux VM is slowest for every API, RustyHermit has the
// smallest virtualized overhead but still needs more than double the native
// time; the Rust kernel launches are ~6.3% faster than C (no <<<...>>>
// compatibility logic).
//
// Flags: --api=getDeviceCount|mallocFree|kernelLaunch|memcpy|all  --calls=N
//        --json=<path>  (machine-readable rows, see bench_util.hpp)
// Env:   CRICKET_TRACE=<path> / CRICKET_METRICS=<path> — span trace +
//        Prometheus dump via obs::TraceSession; also prints the per-layer
//        latency breakdown.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cudart/raii.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"

namespace {

using namespace cricket;
using bench::Rig;

std::vector<bench::BenchRow> g_rows;

struct Row {
  std::string config;
  sim::Nanos total = 0;
  sim::Log2Histogram per_call;  // virtual ns per API call
  std::uint64_t bytes = 0;      // payload moved (memcpy section)
};

void print_rows(const char* title, const char* section,
                const char* paper_note, const std::vector<Row>& rows,
                std::uint64_t calls) {
  std::printf("\n--- Figure 6: %s (%llu calls) ---\n", title,
              static_cast<unsigned long long>(calls));
  std::printf("paper: %s\n", paper_note);
  const double native = static_cast<double>(rows[1].total);
  for (const auto& row : rows) {
    std::printf("%-10s %12s total %10.2f us/call   %.2fx native-Rust\n",
                row.config.c_str(),
                sim::format_nanos(static_cast<double>(row.total)).c_str(),
                static_cast<double>(row.total) / static_cast<double>(calls) /
                    1e3,
                static_cast<double>(row.total) / native);
    g_rows.push_back(bench::make_row("fig6_micro", section, row.config,
                                     row.per_call,
                                     static_cast<double>(row.total),
                                     row.bytes));
  }
}

template <typename Body>
std::vector<Row> measure(std::uint64_t calls, Body&& body) {
  std::vector<Row> rows;
  for (const auto& environment : env::all_environments()) {
    Rig rig(environment);
    rig.clock().reset();
    Row row;
    row.config = environment.name;
    const sim::SimStopwatch sw(rig.clock());
    body(rig, calls, row);
    row.total = sw.elapsed();
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Times one API call in virtual ns and feeds the section's histogram.
template <typename Fn>
void timed_call(Rig& rig, sim::Log2Histogram& hist, Fn&& fn) {
  const sim::Nanos t0 = rig.clock().now();
  cuda::check(fn());
  hist.add(static_cast<std::uint64_t>(rig.clock().now() - t0));
}

void bench_get_device_count(std::uint64_t calls) {
  const auto rows = measure(calls, [](Rig& rig, std::uint64_t n, Row& row) {
    int count = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      timed_call(rig, row.per_call,
                 [&] { return rig.api().get_device_count(count); });
  });
  print_rows("(a) cudaGetDeviceCount", "get_device_count",
             "VM slowest; Hermit best virtualized; all > 2x native", rows,
             calls);
}

void bench_malloc_free(std::uint64_t calls) {
  const auto rows = measure(calls, [](Rig& rig, std::uint64_t n, Row& row) {
    for (std::uint64_t i = 0; i < n / 2; ++i) {
      cuda::DevPtr p = 0;
      timed_call(rig, row.per_call,
                 [&] { return rig.api().malloc(p, 1 << 20); });
      timed_call(rig, row.per_call, [&] { return rig.api().free(p); });
    }
  });
  print_rows("(b) cudaMalloc and cudaFree (alternating)", "malloc_free",
             "same ordering as (a); bookkeeping adds server-side time", rows,
             calls);
}

void bench_kernel_launch(std::uint64_t calls) {
  const auto rows = measure(calls, [](Rig& rig, std::uint64_t n, Row& row) {
    cuda::Module mod(rig.api(), workloads::sample_cubin());
    const auto fn = mod.function(workloads::kVectorAddKernel);
    cuda::DeviceBuffer a(rig.api(), 1024), b(rig.api(), 1024),
        c(rig.api(), 1024);
    cuda::ParamPacker params;
    params.add_ptr(c).add_ptr(a).add_ptr(b).add(std::uint32_t{256});
    rig.set_timing_only(true);
    for (std::uint64_t i = 0; i < n; ++i)
      timed_call(rig, row.per_call, [&] {
        return rig.api().launch_kernel(fn, {1, 1, 1}, {256, 1, 1}, 0,
                                       gpusim::kDefaultStream,
                                       params.bytes());
      });
    cuda::check(rig.api().device_synchronize());
    rig.set_timing_only(false);
  });
  print_rows("(c) kernel launch", "kernel_launch",
             "Rust ~6.3% faster than C (<<<...>>> compat logic omitted)",
             rows, calls);

  // Make the C-vs-Rust launch delta explicit, as the paper calls it out.
  const double c_time = static_cast<double>(rows[0].total);
  const double rust_time = static_cast<double>(rows[1].total);
  std::printf("Rust launch speedup over C: %.1f%% (paper: ~6.3%%)\n",
              (c_time - rust_time) / c_time * 100.0);
}

void bench_memcpy(std::uint64_t calls) {
  constexpr std::uint64_t kCopyBytes = 64 * 1024;
  // Bulk copies are ~3 orders slower than no-payload calls; scale the count
  // down so "all" stays quick while the distribution still fills out.
  const std::uint64_t copies = std::max<std::uint64_t>(calls / 100, 2);
  const auto rows =
      measure(copies * 2, [&](Rig& rig, std::uint64_t, Row& row) {
        std::vector<std::uint8_t> host(kCopyBytes, 0xAB);
        cuda::DeviceBuffer dev(rig.api(), kCopyBytes);
        for (std::uint64_t i = 0; i < copies; ++i) {
          timed_call(rig, row.per_call,
                     [&] { return rig.api().memcpy_h2d(dev.get(), host); });
          timed_call(rig, row.per_call,
                     [&] { return rig.api().memcpy_d2h(host, dev.get()); });
        }
        row.bytes = copies * 2 * kCopyBytes;
      });
  print_rows("(d) cudaMemcpy 64 KiB H2D/D2H", "memcpy",
             "not a paper panel; bulk payload exercises the full span stack",
             rows, copies * 2);
}

}  // namespace

int main(int argc, char** argv) {
  // CRICKET_TRACE=out.json captures the span trace across every section.
  obs::TraceSession trace_session = obs::TraceSession::from_env();
  const std::string api = bench::arg_value(argc, argv, "api", "all");
  const std::string json = bench::arg_value(argc, argv, "json", "");
  const auto calls = static_cast<std::uint64_t>(
      std::atoll(bench::arg_value(argc, argv, "calls", "100000").c_str()));

  std::printf("Figure 6 reproduction: CUDA API micro-benchmarks over the "
              "Cricket layer\n");
  if (api == "getDeviceCount" || api == "all") bench_get_device_count(calls);
  if (api == "mallocFree" || api == "all") bench_malloc_free(calls);
  if (api == "kernelLaunch" || api == "all") bench_kernel_launch(calls);
  if (api == "memcpy" || api == "all") bench_memcpy(calls);

  if (obs::tracing_enabled() || trace_session.active())
    bench::print_layer_breakdown("Figure 6 per-layer latency");
  if (!bench::write_bench_json(json, g_rows)) return 1;
  return 0;
}
