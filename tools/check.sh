#!/usr/bin/env bash
# tools/check.sh — the unified analysis gate.
#
# Runs the full verification matrix with one command:
#
#   1. plain         RelWithDebInfo build + full ctest
#   2. tsan          ThreadSanitizer build + `ctest -L tsan`
#   3. asan-ubsan    AddressSanitizer+UBSan build + full ctest
#   4. analyze       Clang -Wthread-safety over the annotated surface
#   5. clang-tidy    bugprone/concurrency/performance/cert-err profile
#   6. rpcl-lint     rpclgen --lint and --emit-bounds, both --Werror, over
#                    committed .x specs (lint failure = exit 1, wire-size
#                    bounds failure = exit 3; either fails the stage)
#   7. no-escapes    greps for CRICKET_NO_THREAD_SAFETY_ANALYSIS escapes
#   8. obs-trace     CRICKET_TRACE smoke run + trace schema/stitching check
#   9. fuzz-smoke    deterministic decode fuzzer, 10k iterations against the
#                    ASan+UBSan build (clean-throw-no-leak on every mutation)
#  10. fault-smoke   seeded fault-injection matrix (`ctest -L fault`) against
#                    the TSan build — loss recovery races are exactly where
#                    retry/reconnect/DRC state is touched from many threads
#  11. tenancy       multi-tenant admission + two-level fair share
#                    (`ctest -L tenancy`) against the TSan build
#  12. bench-json    every committed BENCH_*.json parses and still honours
#                    its gates — tenants fairness/throughput, migrate
#                    zero-failure/exactly-once/blackout-budget
#                    (validate_bench_json.py dispatches on "bench")
#  13. lock-graph    full ctest with CRICKET_LOCKCHECK=1: every test process
#                    dumps its held-before lock-order edges, then
#                    tools/lock_graph.py merges them suite-wide and fails on
#                    any cycle or self-deadlock (cross-binary inversions are
#                    invisible to any single process)
#  14. mcheck        deterministic interleaving model checker suites
#                    (`ctest -L mcheck`) against the TSan build — the
#                    explorer's own handshake machinery runs raced, so it is
#                    checked where races are fatal
#  15. migrate       live-migration suites (`ctest -L migrate`) against the
#                    TSan build — drain/transfer/flip run coordinator,
#                    serve, retry, and traffic threads concurrently, so the
#                    exactly-once machinery is exercised where races are
#                    fatal
#  16. taint-audit   wiretaint discipline: the taint suites (`ctest -L
#                    taint`), rpclgen --emit-taint strict CLI behaviour, and
#                    tools/taint_audit.py — every trust_unchecked() escape
#                    must carry a justification and match
#                    tools/taint_allowlist.json exactly (the no-escapes
#                    discipline, applied to the taint lattice); its JSON
#                    report is merged into check_summary.json as "taint"
#  17. modcache      content-addressed module cache suites (`ctest -L
#                    modcache`) against the TSan build — cache hit/insert/
#                    release races between concurrent client sessions, the
#                    two-phase load fallback under drop faults, and the LZ/
#                    fatbin hostile-stream corpus
#
# Stages whose toolchain is unavailable (no clang, no clang-tidy) report
# SKIP and do not fail the gate. The first FAIL stops the run; a summary
# table is always printed, and a machine-readable per-stage summary is
# written to build-check-logs/check_summary.json (schema enforced by
# tools/validate_check_json.py). Exit code: 0 iff no stage failed.
#
# Usage: tools/check.sh [--keep-going] [--jobs N]
set -u

cd "$(dirname "$0")/.." || exit 1
ROOT=$PWD

JOBS=$(nproc 2>/dev/null || echo 4)
KEEP_GOING=0
for arg in "$@"; do
  case "$arg" in
    --keep-going) KEEP_GOING=1 ;;
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    --jobs) ;; # value consumed below
    *)
      if [[ "${prev:-}" == "--jobs" ]]; then JOBS="$arg"; else
        echo "usage: tools/check.sh [--keep-going] [--jobs N]" >&2
        exit 2
      fi ;;
  esac
  prev="$arg"
done

STAGES=()
RESULTS=()
FAILED=0

record() { # name result
  STAGES+=("$1")
  RESULTS+=("$2")
  case "$2" in
    PASS) echo "== $1: PASS" ;;
    SKIP*) echo "== $1: $2" ;;
    FAIL)
      echo "== $1: FAIL"
      FAILED=1
      ;;
  esac
}

run_stage() { # name log-suffix command...
  local name=$1; shift
  local log="$ROOT/build-check-logs/$name.log"
  mkdir -p "$ROOT/build-check-logs"
  echo "== $name: running (log: ${log#"$ROOT"/})"
  if "$@" >"$log" 2>&1; then
    record "$name" PASS
  else
    record "$name" FAIL
    tail -n 30 "$log" | sed 's/^/   | /'
  fi
}

should_continue() { [[ $FAILED -eq 0 || $KEEP_GOING -eq 1 ]]; }

# ---------------------------------------------------------------- 1: plain
run_stage plain bash -c '
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
  cmake --build build -j "$0" &&
  ctest --test-dir build --output-on-failure -j "$0"' "$JOBS"

# ----------------------------------------------------------------- 2: tsan
if should_continue; then
  run_stage tsan bash -c '
    cmake -B build-tsan -S . -DCRICKET_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build build-tsan -j "$0" &&
    ctest --test-dir build-tsan --output-on-failure -j "$0" -L tsan' "$JOBS"
fi

# ----------------------------------------------------------- 3: asan+ubsan
if should_continue; then
  run_stage asan-ubsan bash -c '
    cmake -B build-asan -S . -DCRICKET_SANITIZE=address,undefined \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build build-asan -j "$0" &&
    ctest --test-dir build-asan --output-on-failure -j "$0"' "$JOBS"
fi

# -------------------------------------------- 4: clang thread-safety (TSA)
if should_continue; then
  if command -v clang++ >/dev/null 2>&1; then
    run_stage analyze bash -c '
      cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
            -DCRICKET_ANALYZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
      cmake --build build-tsa -j "$0"' "$JOBS"
  else
    record analyze "SKIP (clang++ not installed)"
  fi
fi

# ------------------------------------------------------------ 5: clang-tidy
if should_continue; then
  if command -v clang-tidy >/dev/null 2>&1 && [[ -d build ]]; then
    # compile_commands for the tidy run only; the sources are the annotated
    # concurrency surface plus the rpcl front end.
    run_stage clang-tidy bash -c '
      cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
      clang-tidy -p build --quiet \
        src/rpc/*.cpp src/rpcflow/*.cpp src/gpusim/*.cpp \
        src/rpcl/*.cpp src/vnet/*.cpp src/cricket/*.cpp'
  else
    record clang-tidy "SKIP (clang-tidy not installed)"
  fi
fi

# ------------------------------------------------------------- 6: rpcl lint
if should_continue; then
  if [[ -x build/src/rpcl/rpclgen ]]; then
    run_stage rpcl-lint bash -c '
      rc=0
      tmp=$(mktemp -d) || exit 1
      trap "rm -rf $tmp" EXIT
      for spec in src/*/specs/*.x; do
        echo "linting $spec"
        build/src/rpcl/rpclgen --lint --Werror "$spec" || rc=1
        echo "bounds-checking $spec"
        # Exit 3 = a wire-size bounds rule (RPCL011-RPCL015) fired.
        build/src/rpcl/rpclgen --emit-bounds "$spec" \
          "$tmp/$(basename "$spec" .x)_bounds.hpp" --Werror || rc=1
      done
      exit $rc'
  else
    record rpcl-lint "SKIP (build/src/rpcl/rpclgen missing — run plain stage first)"
  fi
fi

# ------------------------------------------------------------ 7: no-escapes
# The annotation layer offers CRICKET_NO_THREAD_SAFETY_ANALYSIS as a
# last-resort escape hatch; the gate keeps the count at zero outside the
# header that defines it.
if should_continue; then
  if grep -rn "CRICKET_NO_THREAD_SAFETY_ANALYSIS" \
       --include='*.cpp' --include='*.hpp' src tests bench tools examples \
       2>/dev/null | grep -v "src/sim/annotations.hpp"; then
    record no-escapes FAIL
  else
    record no-escapes PASS
  fi
fi

# -------------------------------------------------------------- 8: obs-trace
# End-to-end tracing smoke test: capture a span trace + metrics dump from a
# short memcpy bench run, then validate schema, layer coverage, and
# cross-thread xid stitching (tools/validate_trace.py, stdlib-only).
if should_continue; then
  if ! command -v python3 >/dev/null 2>&1; then
    record obs-trace "SKIP (python3 not installed)"
  elif [[ ! -x build/bench/bench_fig6_micro ]]; then
    record obs-trace "SKIP (build/bench/bench_fig6_micro missing — run plain stage first)"
  else
    run_stage obs-trace bash -c '
      out=$(mktemp -d) &&
      trap "rm -rf $out" EXIT &&
      CRICKET_TRACE="$out/trace.json" CRICKET_METRICS="$out/metrics.txt" \
        build/bench/bench_fig6_micro --api=memcpy --calls=500 &&
      python3 tools/validate_trace.py "$out/trace.json" \
        --metrics "$out/metrics.txt" --min-events 100'
  fi
fi

# -------------------------------------------------------------- 9: fuzz-smoke
# Deterministic mutational fuzzing of the untrusted decode surface under
# ASan+UBSan: every mutated record must either parse or throw a typed
# malformed-input error, with no leak, overflow, or unexpected exception.
if should_continue; then
  if [[ -x build-asan/tools/fuzz_decode ]]; then
    run_stage fuzz-smoke build-asan/tools/fuzz_decode --iters 10000
  else
    record fuzz-smoke "SKIP (build-asan/tools/fuzz_decode missing — run asan-ubsan stage first)"
  fi
fi

# ------------------------------------------------------------- 10: fault-smoke
# The faultnet matrix (drop/dup/reorder/corrupt/partition x serial/pipelined/
# batched) under ThreadSanitizer: recovery paths — retry timers, reconnect,
# in-flight resubmission, the duplicate-request cache — are the most
# thread-entangled code in the tree, so they run where races are fatal.
if should_continue; then
  if [[ -d build-tsan ]]; then
    run_stage fault-smoke ctest --test-dir build-tsan --output-on-failure \
      -j "$JOBS" -L fault
  else
    record fault-smoke "SKIP (build-tsan missing — run tsan stage first)"
  fi
fi

# --------------------------------------------------------------- 11: tenancy
# Multi-tenant admission + two-level fair share under ThreadSanitizer:
# admission runs on connection reader threads while quota accounting,
# scheduler catch-up blocking, and session teardown touch shared state —
# the label selects the tenancy suites on the TSan tree.
if should_continue; then
  if [[ -d build-tsan ]]; then
    run_stage tenancy ctest --test-dir build-tsan --output-on-failure \
      -j "$JOBS" -L tenancy
  else
    record tenancy "SKIP (build-tsan missing — run tsan stage first)"
  fi
fi

# ------------------------------------------------------------ 12: bench-json
# Every committed perf trajectory must stay parseable and keep honouring
# its gates (tools/validate_bench_json.py, stdlib-only, dispatching on the
# "bench" discriminator: tenants fairness/throughput, migrate rolling
# restart).
if should_continue; then
  if ! command -v python3 >/dev/null 2>&1; then
    record bench-json "SKIP (python3 not installed)"
  elif ! compgen -G "BENCH_*.json" >/dev/null; then
    record bench-json "SKIP (no BENCH_*.json committed — run the benches first)"
  else
    run_stage bench-json bash -c '
      rc=0
      for doc in BENCH_*.json; do
        python3 tools/validate_bench_json.py "$doc" || rc=1
      done
      exit $rc'
  fi
fi

# ------------------------------------------------------------- 13: lock-graph
# Whole-suite lock-order analysis: CRICKET_LOCKCHECK=1 puts a LockGraph
# observer on the sim/annotations.hpp seam in every test process (a process
# that alone exhibits a cycle exits 86 and fails its test), each process
# dumps its edges, and tools/lock_graph.py merges them — an A-then-B in one
# binary plus B-then-A in another is a deadlock no single process can see.
if should_continue; then
  if ! command -v python3 >/dev/null 2>&1; then
    record lock-graph "SKIP (python3 not installed)"
  elif [[ ! -d build ]]; then
    record lock-graph "SKIP (build missing — run plain stage first)"
  else
    run_stage lock-graph bash -c '
      dumps=$(mktemp -d) &&
      trap "rm -rf $dumps" EXIT &&
      CRICKET_LOCKCHECK=1 CRICKET_LOCKCHECK_DIR="$dumps" \
        ctest --test-dir build --output-on-failure -j "$0" &&
      python3 tools/lock_graph.py "$dumps"' "$JOBS"
  fi
fi

# ----------------------------------------------------------------- 14: mcheck
# The model-checker suites (lock-graph units, explorer self-checks against
# the intentionally broken mutants, and the five production-core models)
# under ThreadSanitizer — the label selects them on the TSan tree.
if should_continue; then
  if [[ -d build-tsan ]]; then
    run_stage mcheck ctest --test-dir build-tsan --output-on-failure \
      -j "$JOBS" -L mcheck
  else
    record mcheck "SKIP (build-tsan missing — run tsan stage first)"
  fi
fi

# ---------------------------------------------------------------- 15: migrate
# Live-migration suites under ThreadSanitizer: the drain barrier, chunked
# transfer, redirect flip, and DRC hand-off all run with coordinator,
# serve, and client retry threads racing — the label selects them on the
# TSan tree.
if should_continue; then
  if [[ -d build-tsan ]]; then
    run_stage migrate ctest --test-dir build-tsan --output-on-failure \
      -j "$JOBS" -L migrate
  else
    record migrate "SKIP (build-tsan missing — run tsan stage first)"
  fi
fi

# ------------------------------------------------------------- 16: taint-audit
# Wiretaint gate, three parts: (a) the taint-labelled suites (Untrusted<T>
# unit tests) on the plain tree; (b) rpclgen --emit-taint strict CLI
# behaviour on the committed specs (unknown flag and mode conflicts exit 2,
# a clean generation exits 0); (c) tools/taint_audit.py — every
# trust_unchecked() escape in src/ and tools/ must carry its justification
# and match tools/taint_allowlist.json exactly.
if should_continue; then
  if ! command -v python3 >/dev/null 2>&1; then
    record taint-audit "SKIP (python3 not installed)"
  elif [[ ! -d build || ! -x build/src/rpcl/rpclgen ]]; then
    record taint-audit "SKIP (build/src/rpcl/rpclgen missing — run plain stage first)"
  else
    run_stage taint-audit bash -c '
      set -e
      ctest --test-dir build --output-on-failure -j "$0" -L taint
      tmp=$(mktemp -d)
      trap "rm -rf $tmp" EXIT
      for spec in src/*/specs/*.x; do
        echo "taint-generating $spec"
        build/src/rpcl/rpclgen --emit-taint "$spec" \
          "$tmp/$(basename "$spec" .x)_taint.hpp"
        grep -q "namespace taint" "$tmp/$(basename "$spec" .x)_taint.hpp"
      done
      # Strict CLI: unknown flags and mode conflicts are usage errors.
      rc=0
      build/src/rpcl/rpclgen --emit-tain src/cricket/specs/cricket.x \
        "$tmp/x.hpp" 2>/dev/null || rc=$?
      [[ $rc -eq 2 ]] || { echo "unknown flag exited $rc, want 2"; exit 1; }
      rc=0
      build/src/rpcl/rpclgen --lint --emit-taint \
        src/cricket/specs/cricket.x 2>/dev/null || rc=$?
      [[ $rc -eq 2 ]] || { echo "--lint --emit-taint exited $rc, want 2"; exit 1; }
      python3 tools/taint_audit.py \
        --report build-check-logs/taint_audit.json' "$JOBS"
  fi
fi

# ---------------------------------------------------------------- 17: modcache
# Content-addressed module cache suites under ThreadSanitizer: concurrent
# sessions race acquire/insert/release against eviction and teardown, and
# the two-phase load negotiation (including drop-fault fallback) runs
# client, serve, and retry threads concurrently — the label selects them on
# the TSan tree.
if should_continue; then
  if [[ -d build-tsan ]]; then
    run_stage modcache ctest --test-dir build-tsan --output-on-failure \
      -j "$JOBS" -L modcache
  else
    record modcache "SKIP (build-tsan missing — run tsan stage first)"
  fi
fi

# ------------------------------------------------------------------ summary
echo
echo "---------------- check.sh summary ----------------"
for i in "${!STAGES[@]}"; do
  printf '  %-12s %s\n' "${STAGES[$i]}" "${RESULTS[$i]}"
done
echo "--------------------------------------------------"

# Machine-readable mirror of the table above, for CI and tooling. Stage
# names and results are shell-controlled ([a-z-]+ / PASS|FAIL|SKIP (...)),
# so plain string interpolation is JSON-safe here.
SUMMARY="$ROOT/build-check-logs/check_summary.json"
mkdir -p "$ROOT/build-check-logs"
{
  echo '{'
  echo '  "check": "check.sh",'
  echo "  \"failed\": $([[ $FAILED -eq 0 ]] && echo false || echo true),"
  echo '  "stages": ['
  for i in "${!STAGES[@]}"; do
    comma=$([[ $i -lt $((${#STAGES[@]} - 1)) ]] && echo , || echo '')
    printf '    {"name": "%s", "result": "%s"}%s\n' \
      "${STAGES[$i]}" "${RESULTS[$i]}" "$comma"
  done
  # The taint-audit stage leaves its per-subsystem report behind; merge it
  # so one document carries both the stage table and the escape census.
  if [[ -f "$ROOT/build-check-logs/taint_audit.json" ]]; then
    echo '  ],'
    printf '  "taint": %s\n' \
      "$(tr -d '\n' < "$ROOT/build-check-logs/taint_audit.json" | tr -s ' ')"
  else
    echo '  ]'
  fi
  echo '}'
} > "$SUMMARY"
if command -v python3 >/dev/null 2>&1; then
  if python3 tools/validate_check_json.py "$SUMMARY"; then
    echo "summary: $SUMMARY (validated)"
  else
    echo "summary: $SUMMARY FAILED validation" >&2
    FAILED=1
  fi
else
  echo "summary: $SUMMARY (python3 missing, not validated)"
fi
exit $FAILED
