#!/usr/bin/env python3
"""Merges per-process lock-order dumps into one suite-wide graph and fails
on cycles.

Every test process run with CRICKET_LOCKCHECK=1 and CRICKET_LOCKCHECK_DIR
set writes a lockgraph-<pid>.json on exit (src/mcheck/lock_graph.cpp): the
held-before edges it observed between lock *classes* (Mutex construction
sites, "file.cpp:line"). A single process only sees the orderings its own
tests exercise; an inversion split across two binaries — A-then-B in one,
B-then-A in another — is exactly as deadlock-prone in a combined deployment
and only visible after this merge.

Stdlib-only; used by tools/check.sh stage 13 (lock-graph) and by hand:

    CRICKET_LOCKCHECK=1 CRICKET_LOCKCHECK_DIR=/tmp/lockgraph ctest
    python3 tools/lock_graph.py /tmp/lockgraph

Prints the merged edge census, then any strongly connected component with
more than one node (or a self-edge) as a cycle, with the acquisition sites
that witnessed each edge. Exit code 0 iff the merged graph is acyclic and
no process reported a self-deadlock.
"""
import json
import os
import sys


def fail(msg):
    print(f"lock_graph: {msg}", file=sys.stderr)
    sys.exit(2)


def load(directory):
    """Returns (edges, self_deadlocks): edges maps (from, to) -> merged
    {count, from_site, to_site, files}."""
    edges = {}
    self_deadlocks = 0
    names = sorted(n for n in os.listdir(directory)
                   if n.startswith("lockgraph-") and n.endswith(".json"))
    if not names:
        fail(f"no lockgraph-*.json dumps in {directory}")
    for name in names:
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as f:
                dump = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"unreadable dump {path}: {e}")
        if not isinstance(dump, dict) or "edges" not in dump:
            fail(f"{path}: missing 'edges'")
        self_deadlocks += int(dump.get("self_deadlocks", 0))
        for e in dump["edges"]:
            key = (e["from"], e["to"])
            merged = edges.setdefault(key, {
                "count": 0,
                "from_site": e["from_site"],
                "to_site": e["to_site"],
                "files": set(),
            })
            merged["count"] += int(e["count"])
            merged["files"].add(name)
    return edges, self_deadlocks, len(names)


def tarjan_sccs(nodes, adj):
    """Iterative Tarjan; returns scc id per node."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    scc_of = {}
    counter = [0]
    sccs = [0]
    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(adj.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, children = work[-1]
            advanced = False
            for w in children:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adj.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc_of[w] = sccs[0]
                    if w == v:
                        break
                sccs[0] += 1
            work.pop()
            if work:
                p = work[-1][0]
                low[p] = min(low[p], low[v])
    return scc_of


def main():
    if len(sys.argv) != 2:
        fail("usage: lock_graph.py <dump-directory>")
    edges, self_deadlocks, dumps = load(sys.argv[1])

    nodes = sorted({n for key in edges for n in key})
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)
    scc_of = tarjan_sccs(nodes, adj)

    scc_size = {}
    for n in nodes:
        scc_size[scc_of[n]] = scc_size.get(scc_of[n], 0) + 1
    cycles = {}
    for (a, b), data in sorted(edges.items()):
        in_cycle = a == b or (scc_of[a] == scc_of[b]
                              and scc_size[scc_of[a]] > 1)
        if in_cycle:
            key = f"self:{a}" if a == b else str(scc_of[a])
            cycles.setdefault(key, []).append(((a, b), data))

    print(f"lock_graph: merged {dumps} dump(s): {len(nodes)} lock classes, "
          f"{len(edges)} held-before edges, {self_deadlocks} self-deadlock(s)")
    for a, b in sorted(edges):
        data = edges[(a, b)]
        print(f"  {a} -> {b} x{data['count']} "
              f"(first: {data['from_site']} then {data['to_site']}; "
              f"{len(data['files'])} process(es))")

    failed = self_deadlocks > 0
    if self_deadlocks:
        print(f"lock_graph: FAIL: {self_deadlocks} self-deadlock(s) reported "
              "by test processes", file=sys.stderr)
    for _, members in sorted(cycles.items(), key=lambda kv: str(kv[0])):
        failed = True
        print("lock_graph: FAIL: lock-order cycle:", file=sys.stderr)
        for (a, b), data in members:
            print(f"    {a} (held, acquired at {data['from_site']}) -> "
                  f"{b} (acquired at {data['to_site']}) x{data['count']} "
                  f"[{', '.join(sorted(data['files']))}]", file=sys.stderr)
    if failed:
        sys.exit(1)
    print("lock_graph: OK: merged graph is acyclic")


if __name__ == "__main__":
    main()
