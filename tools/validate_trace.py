#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file produced by the obs subsystem.

Stdlib-only; used by tools/check.sh stage 8 (obs-trace) and usable by hand:

    CRICKET_TRACE=out.json build/bench/bench_fig6_micro --api=memcpy
    python3 tools/validate_trace.py out.json [--metrics metrics.txt]

Checks, in order:
  1. schema     — {"traceEvents": [...]}; every event carries name/cat/ph/
                  ts/pid/tid/args{xid,arg}; ph is "X" (complete, with dur)
                  or "i" (instant, with s).
  2. categories — the cross-layer set the span taxonomy promises shows up:
                  client, server, gpu, and a wire layer (net or vnet).
  3. stitching  — at least one RPC xid is shared by a client-side span, a
                  server.dispatch span on a different tid, and a gpu.* span
                  (the end-to-end nesting the tracing exists to show).
  4. metrics    — optional: the Prometheus dump contains the per-layer
                  cricket_span_latency_ns histogram series.

Exit code 0 iff every check passes.
"""
import argparse
import json
import sys

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid", "args")
KNOWN_CATEGORIES = {"app", "client", "chan", "net", "vnet", "server", "gpu"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_schema(events):
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                fail(f"event {i} ({ev.get('name', '?')}) missing '{key}'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"event {i}: 'name' must be a non-empty string")
        if ev["cat"] not in KNOWN_CATEGORIES:
            fail(f"event {i}: unknown category '{ev['cat']}'")
        if ev["ph"] not in ("X", "i"):
            fail(f"event {i}: ph must be 'X' or 'i', got '{ev['ph']}'")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"event {i}: 'ts' must be a non-negative number")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                fail(f"event {i}: complete event needs a non-negative 'dur'")
        else:
            if ev.get("s") != "t":
                fail(f"event {i}: instant event needs scope 's': 't'")
        args = ev["args"]
        if not isinstance(args, dict):
            fail(f"event {i}: 'args' must be an object")
        for key in ("xid", "arg"):
            if not isinstance(args.get(key), int) or args[key] < 0:
                fail(f"event {i}: args.{key} must be a non-negative integer")


def check_categories(events):
    cats = {ev["cat"] for ev in events}
    for needed in ("client", "server", "gpu"):
        if needed not in cats:
            fail(f"no '{needed}' spans in trace (categories seen: "
                 f"{sorted(cats)})")
    if not cats & {"net", "vnet"}:
        fail(f"no wire-layer (net/vnet) spans in trace (categories seen: "
             f"{sorted(cats)})")


def check_stitching(events):
    by_xid = {}
    for ev in events:
        xid = ev["args"]["xid"]
        if xid:
            by_xid.setdefault(xid, []).append(ev)
    for xid, evs in by_xid.items():
        client_tids = {e["tid"] for e in evs if e["cat"] == "client"}
        dispatch_tids = {e["tid"] for e in evs
                         if e["name"] == "server.dispatch"}
        has_gpu = any(e["cat"] == "gpu" for e in evs)
        if client_tids and has_gpu and (dispatch_tids - client_tids):
            return
    fail("no xid stitches a client span, a server.dispatch on another "
         "thread, and a gpu span — cross-layer propagation is broken")


def check_metrics(path):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot read metrics file: {e}")
    if "cricket_span_latency_ns" not in text:
        fail("metrics dump lacks the cricket_span_latency_ns series")
    if "# TYPE cricket_span_latency_ns histogram" not in text:
        fail("cricket_span_latency_ns is not exposed as a histogram")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--metrics", help="Prometheus text dump to validate")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum number of trace events (default 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.trace}: {e}")

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        fail("top level must be an object with a 'traceEvents' list")
    events = doc["traceEvents"]
    if len(events) < args.min_events:
        fail(f"expected at least {args.min_events} events, got {len(events)}")

    check_schema(events)
    check_categories(events)
    check_stitching(events)
    if args.metrics:
        check_metrics(args.metrics)

    print(f"validate_trace: OK: {len(events)} events, "
          f"{len({e['args']['xid'] for e in events if e['args']['xid']})} "
          f"distinct xids")


if __name__ == "__main__":
    main()
