// cricket_server: the GPU-node daemon.
//
// Boots a simulated GPU node, optionally registers with a portmapper-style
// announcement on stdout, and serves Cricket RPC connections over TCP until
// killed (or until --max-sessions sessions have completed, for scripted
// use).
//
//   $ cricket_server [--port=0] [--gpus=a100|testbed] [--scheduler=fifo|fair]
//                    [--checkpoint-dir=DIR] [--max-sessions=N]
//
// Prints "LISTENING <port>" once ready — drive it with cricket_client.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cricket/server.hpp"
#include "cudart/local_api.hpp"
#include "rpc/transport.hpp"
#include "workloads/kernels.hpp"

namespace {

std::string arg_value(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind(prefix, 0) == 0)
      return std::string(argv[i]).substr(prefix.size());
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cricket;

  const std::string gpus = arg_value(argc, argv, "gpus", "a100");
  const std::string sched = arg_value(argc, argv, "scheduler", "fifo");
  const int max_sessions =
      std::atoi(arg_value(argc, argv, "max-sessions", "0").c_str());

  auto node = gpus == "testbed" ? cuda::GpuNode::make_paper_testbed()
                                : cuda::GpuNode::make_a100();
  workloads::register_sample_kernels(node->registry());

  core::ServerOptions options;
  options.scheduler = sched == "fair" ? core::SchedulerPolicy::kFairShare
                                      : core::SchedulerPolicy::kFifo;
  options.checkpoint_dir = arg_value(argc, argv, "checkpoint-dir", ".");
  core::CricketServer server(*node, options);

  rpc::TcpListener listener;
  std::printf("LISTENING %u\n", listener.port());
  std::printf("cricket_server: %d GPU(s), %s scheduler, checkpoints in %s\n",
              node->device_count(), sched.c_str(),
              options.checkpoint_dir.c_str());
  std::fflush(stdout);

  std::vector<std::thread> sessions;
  int served = 0;
  for (;;) {
    auto conn = listener.accept();
    if (!conn) break;
    sessions.push_back(
        server.serve_async(std::unique_ptr<rpc::Transport>(conn.release())));
    ++served;
    if (max_sessions > 0 && served >= max_sessions) break;
  }
  for (auto& s : sessions)
    if (s.joinable()) s.join();
  std::printf("cricket_server: served %llu sessions, %llu RPCs\n",
              static_cast<unsigned long long>(server.stats().sessions.load()),
              static_cast<unsigned long long>(server.stats().rpcs.load()));
  return 0;
}
