#!/usr/bin/env python3
"""Validates the machine-readable check.sh summary (check_summary.json).

Stdlib-only; run by tools/check.sh itself after writing the summary, and by
hand:

    python3 tools/validate_check_json.py build-check-logs/check_summary.json

Checks, in order:
  1. schema       — top level {"check": "check.sh", "failed": bool,
                    "stages": [...]}; every stage is {"name", "result"}.
  2. stage names  — lowercase [a-z0-9-]+, unique, and the run starts with
                    the "plain" stage (everything downstream builds on it).
  3. results      — each is PASS, FAIL, or SKIP (reason); the top-level
                    "failed" flag agrees with the presence of a FAIL.
  4. taint        — optional; when the taint-audit stage ran, its merged
                    report must be an object with integer "total_sites",
                    "allowlisted", "entries", per-subsystem integer counts
                    summing to "total_sites", and a bool "clean" that
                    agrees with the taint-audit stage result.

Exit code 0 iff every check passes.
"""
import json
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")
RESULT_RE = re.compile(r"^(PASS|FAIL|SKIP( \(.*\))?)$")


def fail(msg):
    print(f"validate_check_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_check_json.py <check_summary.json>")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"unreadable summary: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("check") != "check.sh":
        fail(f'"check" is {doc.get("check")!r}, expected "check.sh"')
    if not isinstance(doc.get("failed"), bool):
        fail('"failed" missing or not a bool')
    stages = doc.get("stages")
    if not isinstance(stages, list) or not stages:
        fail('"stages" missing, not a list, or empty')

    names = []
    any_fail = False
    for i, stage in enumerate(stages):
        if not isinstance(stage, dict):
            fail(f"stage[{i}] is not an object")
        name = stage.get("name")
        result = stage.get("result")
        if not isinstance(name, str) or not NAME_RE.match(name):
            fail(f"stage[{i}] name {name!r} is not a lowercase slug")
        if not isinstance(result, str) or not RESULT_RE.match(result):
            fail(f"stage {name}: result {result!r} is not "
                 "PASS/FAIL/SKIP (reason)")
        names.append(name)
        any_fail = any_fail or result == "FAIL"

    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        fail(f"duplicate stage names: {', '.join(dupes)}")
    if names[0] != "plain":
        fail(f'first stage is "{names[0]}", expected "plain"')
    if doc["failed"] != any_fail:
        fail(f'"failed" is {doc["failed"]} but stages '
             f'{"do" if any_fail else "do not"} contain a FAIL')

    taint = doc.get("taint")
    if taint is not None:
        if not isinstance(taint, dict):
            fail('"taint" is not an object')
        for key in ("total_sites", "allowlisted", "entries"):
            if not isinstance(taint.get(key), int) or taint[key] < 0:
                fail(f'taint.{key} missing or not a non-negative int')
        if not isinstance(taint.get("clean"), bool):
            fail('taint.clean missing or not a bool')
        subsystems = taint.get("subsystems")
        if not isinstance(subsystems, dict):
            fail('taint.subsystems missing or not an object')
        for name, count in subsystems.items():
            if not NAME_RE.match(name.replace("/", "-")):
                fail(f"taint subsystem {name!r} is not a path slug")
            if not isinstance(count, int) or count < 1:
                fail(f"taint subsystem {name!r} count {count!r} invalid")
        if sum(subsystems.values()) != taint["total_sites"]:
            fail("taint subsystem counts do not sum to total_sites")
        by_name = dict(zip(names, (s["result"] for s in stages)))
        audit_result = by_name.get("taint-audit")
        if audit_result in ("PASS", "FAIL") and \
                taint["clean"] != (audit_result == "PASS"):
            fail(f'taint.clean is {taint["clean"]} but the taint-audit '
                 f"stage result is {audit_result}")

    print(f"validate_check_json: OK ({len(stages)} stages, "
          f"failed={doc['failed']})")


if __name__ == "__main__":
    main()
