#!/usr/bin/env python3
"""Validates the machine-readable check.sh summary (check_summary.json).

Stdlib-only; run by tools/check.sh itself after writing the summary, and by
hand:

    python3 tools/validate_check_json.py build-check-logs/check_summary.json

Checks, in order:
  1. schema       — top level {"check": "check.sh", "failed": bool,
                    "stages": [...]}; every stage is {"name", "result"}.
  2. stage names  — lowercase [a-z0-9-]+, unique, and the run starts with
                    the "plain" stage (everything downstream builds on it).
  3. results      — each is PASS, FAIL, or SKIP (reason); the top-level
                    "failed" flag agrees with the presence of a FAIL.

Exit code 0 iff every check passes.
"""
import json
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")
RESULT_RE = re.compile(r"^(PASS|FAIL|SKIP( \(.*\))?)$")


def fail(msg):
    print(f"validate_check_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_check_json.py <check_summary.json>")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"unreadable summary: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("check") != "check.sh":
        fail(f'"check" is {doc.get("check")!r}, expected "check.sh"')
    if not isinstance(doc.get("failed"), bool):
        fail('"failed" missing or not a bool')
    stages = doc.get("stages")
    if not isinstance(stages, list) or not stages:
        fail('"stages" missing, not a list, or empty')

    names = []
    any_fail = False
    for i, stage in enumerate(stages):
        if not isinstance(stage, dict):
            fail(f"stage[{i}] is not an object")
        name = stage.get("name")
        result = stage.get("result")
        if not isinstance(name, str) or not NAME_RE.match(name):
            fail(f"stage[{i}] name {name!r} is not a lowercase slug")
        if not isinstance(result, str) or not RESULT_RE.match(result):
            fail(f"stage {name}: result {result!r} is not "
                 "PASS/FAIL/SKIP (reason)")
        names.append(name)
        any_fail = any_fail or result == "FAIL"

    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        fail(f"duplicate stage names: {', '.join(dupes)}")
    if names[0] != "plain":
        fail(f'first stage is "{names[0]}", expected "plain"')
    if doc["failed"] != any_fail:
        fail(f'"failed" is {doc["failed"]} but stages '
             f'{"do" if any_fail else "do not"} contain a FAIL')

    print(f"validate_check_json: OK ({len(stages)} stages, "
          f"failed={doc['failed']})")


if __name__ == "__main__":
    main()
