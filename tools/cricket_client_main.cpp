// cricket_client: drives a cricket_server over TCP from a second process.
//
//   $ cricket_client --port=PORT [--app=histogram|matrixMul|linearSolver|
//                                 bandwidth|info] [--iters=N]
//
// Two-process deployment check: marshalling, record marking, session
// lifecycle, and the workloads all crossing a real socket. (Timing columns
// are client-side virtual charges; the unified-virtual-time experiments
// live in bench/.)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cricket/client.hpp"
#include "env/environment.hpp"
#include "rpc/transport.hpp"
#include "sim/stats.hpp"
#include "workloads/bandwidth_test.hpp"
#include "workloads/histogram.hpp"
#include "workloads/linear_solver.hpp"
#include "workloads/matrix_mul.hpp"

namespace {

std::string arg_value(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind(prefix, 0) == 0)
      return std::string(argv[i]).substr(prefix.size());
  return fallback;
}

void print_report(const cricket::workloads::WorkloadReport& r) {
  std::printf("%s: %s | API calls %llu | launches %llu | memcpy %s\n",
              r.name.c_str(), r.verified ? "VERIFIED" : "FAILED",
              static_cast<unsigned long long>(r.api_calls),
              static_cast<unsigned long long>(r.kernel_launches),
              cricket::sim::format_bytes(
                  static_cast<double>(r.memcpy_volume())).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cricket;

  const auto port = static_cast<std::uint16_t>(
      std::atoi(arg_value(argc, argv, "port", "0").c_str()));
  if (port == 0) {
    std::fprintf(stderr, "usage: cricket_client --port=PORT [--app=...]\n");
    return 2;
  }
  const std::string app = arg_value(argc, argv, "app", "info");
  const auto iters = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "iters", "10").c_str()));

  sim::SimClock clock;
  const auto flavor = env::make_environment(env::EnvKind::kNativeRust).flavor;
  core::RemoteCudaApi api(rpc::TcpTransport::connect_loopback(port), clock,
                          core::ClientConfig{.flavor = flavor});

  if (app == "info") {
    int count = 0;
    cuda::check(api.get_device_count(count));
    std::printf("%d device(s):\n", count);
    for (int d = 0; d < count; ++d) {
      cuda::DeviceInfo info;
      cuda::check(api.get_device_properties(info, d));
      std::printf("  %d: %s (sm_%u, %u SMs, %llu MiB)\n", d,
                  info.name.c_str(), info.sm_arch, info.sm_count,
                  static_cast<unsigned long long>(info.total_mem >> 20));
    }
  } else if (app == "histogram") {
    workloads::HistogramConfig cfg;
    cfg.data_bytes = 4 << 20;
    cfg.iterations = iters;
    print_report(workloads::run_histogram(api, clock, flavor, cfg));
  } else if (app == "matrixMul") {
    workloads::MatrixMulConfig cfg;
    cfg.iterations = iters;
    print_report(workloads::run_matrix_mul(api, clock, flavor, cfg));
  } else if (app == "linearSolver") {
    workloads::LinearSolverConfig cfg;
    cfg.n = 256;
    cfg.iterations = iters;
    print_report(workloads::run_linear_solver(api, clock, flavor, cfg));
  } else if (app == "bandwidth") {
    workloads::BandwidthConfig cfg;
    cfg.bytes = 64 << 20;
    cfg.runs = 2;
    const auto rep = workloads::run_bandwidth_test(api, clock, flavor, cfg);
    print_report(rep.base);
  } else {
    std::fprintf(stderr, "unknown --app=%s\n", app.c_str());
    return 2;
  }
  return 0;
}
