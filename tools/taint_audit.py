#!/usr/bin/env python3
"""Audits every trust_unchecked() wiretaint escape in the production tree.

The wiretaint discipline (src/xdr/taint.hpp, DESIGN.md §14) gives a
wire-derived scalar exactly four exits from the taint domain: validate(),
validate_range(), validate_index(), and trust_unchecked(reason). The first
three carry their proof with them; trust_unchecked() is the audited escape
hatch for values whose bound genuinely lives elsewhere (opaque handles
refused by a table lookup, dimensions whose error code is pinned by the
wire contract). This tool is the audit:

  1. Every trust_unchecked() call site under src/ and tools/ must carry a
     non-trivial justification string literal at the call.
  2. Every site must match an entry in tools/taint_allowlist.json — same
     file, and the site's justification must contain the entry's
     "contains" text — with the per-entry site count exactly as declared,
     so a new escape cannot ride in on an old entry.
  3. Every allowlist entry must still match a live site (no stale
     entries accumulating as the code moves).

The defining header (src/xdr/taint.hpp) is exempt; tests are out of scope —
they exercise the escape hatch itself. Mirrors the no-escapes stage's
discipline for CRICKET_NO_THREAD_SAFETY_ANALYSIS.

Usage:
    python3 tools/taint_audit.py [--report OUT.json]

Writes a per-subsystem JSON report (merged into check_summary.json by
tools/check.sh stage 16). Exit code 0 iff the audit passes.
"""
import argparse
import json
import os
import re
import sys

SCAN_ROOTS = ("src", "tools")
EXEMPT = {os.path.join("src", "xdr", "taint.hpp")}
ALLOWLIST = os.path.join("tools", "taint_allowlist.json")
MIN_JUSTIFICATION = 20

# A trust_unchecked call followed by one-or-more concatenated string
# literal fragments (the justification may wrap across source lines).
CALL_RE = re.compile(
    r"trust_unchecked\(\s*((?:\"(?:[^\"\\]|\\.)*\"\s*)+)\)", re.S)
BARE_RE = re.compile(r"trust_unchecked\(")
FRAG_RE = re.compile(r"\"((?:[^\"\\]|\\.)*)\"")


def fail(msg):
    print(f"taint_audit: {msg}", file=sys.stderr)
    return 1


def scan_sites(root):
    """Yields (relpath, line, justification-or-None) per call site."""
    for scan_root in SCAN_ROOTS:
        for dirpath, _, filenames in os.walk(os.path.join(root, scan_root)):
            for name in sorted(filenames):
                if not name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                if rel in EXEMPT:
                    continue
                with open(path, encoding="utf-8") as f:
                    text = f.read()
                justified_at = set()
                for m in CALL_RE.finditer(text):
                    line = text.count("\n", 0, m.start()) + 1
                    reason = "".join(FRAG_RE.findall(m.group(1)))
                    justified_at.add(m.start())
                    yield rel, line, reason
                for m in BARE_RE.finditer(text):
                    # A call CALL_RE did not cover carries no literal
                    # justification (a variable, a computed string, nothing).
                    if m.start() not in justified_at:
                        line = text.count("\n", 0, m.start()) + 1
                        yield rel, line, None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--report", help="write a JSON report here")
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        with open(os.path.join(root, ALLOWLIST), encoding="utf-8") as f:
            allowlist = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"unreadable allowlist {ALLOWLIST}: {e}")
    entries = allowlist.get("entries")
    if not isinstance(entries, list):
        return fail(f'{ALLOWLIST}: "entries" missing or not a list')
    for i, e in enumerate(entries):
        for key, kind in (("file", str), ("contains", str), ("count", int),
                          ("why", str)):
            if not isinstance(e.get(key), kind):
                return fail(f"allowlist entry[{i}] missing {key!r} "
                            f"({kind.__name__})")

    sites = sorted(set(scan_sites(root)))
    rc = 0
    matched = [0] * len(entries)
    subsystems = {}
    for rel, line, reason in sites:
        parts = rel.replace(os.sep, "/").split("/")
        subsystem = "/".join(parts[:2]) if parts[0] == "src" else parts[0]
        subsystems[subsystem] = subsystems.get(subsystem, 0) + 1
        if reason is None:
            rc = fail(f"{rel}:{line}: trust_unchecked without a string "
                      "literal justification at the call site")
            continue
        if len(reason.strip()) < MIN_JUSTIFICATION:
            rc = fail(f"{rel}:{line}: justification {reason!r} is too "
                      f"short (< {MIN_JUSTIFICATION} chars)")
            continue
        hits = [i for i, e in enumerate(entries)
                if e["file"] == rel.replace(os.sep, "/")
                and e["contains"] in reason]
        if not hits:
            rc = fail(f"{rel}:{line}: escape not in {ALLOWLIST} "
                      f"(justification: {reason!r})")
            continue
        for i in hits:
            matched[i] += 1

    for i, e in enumerate(entries):
        if matched[i] == 0:
            rc = fail(f"stale allowlist entry[{i}] ({e['file']}: "
                      f"{e['contains']!r}) matches no live call site")
        elif matched[i] != e["count"]:
            rc = fail(f"allowlist entry[{i}] ({e['file']}: "
                      f"{e['contains']!r}) declares count {e['count']} "
                      f"but matched {matched[i]} site(s)")

    report = {
        "total_sites": len(sites),
        "allowlisted": sum(1 for _, _, r in sites if r is not None),
        "entries": len(entries),
        "subsystems": dict(sorted(subsystems.items())),
        "clean": rc == 0,
    }
    if args.report:
        os.makedirs(os.path.dirname(args.report) or ".", exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    status = "OK" if rc == 0 else "FAILED"
    print(f"taint_audit: {status} ({report['total_sites']} escapes across "
          f"{len(report['subsystems'])} subsystems, "
          f"{report['entries']} allowlist entries)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
