// fuzz_decode: deterministic structure-aware mutational fuzzing of the
// untrusted-input decode surface.
//
// Closes the loop on the static wire-size analysis (rpcl/bounds.hpp): the
// bounds pass proves what lengths are possible; this harness hammers the
// actual decoders — xdr, rpc_msg, the generated protocol structs, and the
// server dispatch path with pre-flight enabled — with truncations,
// bit-flips, length-field boundary overwrites, and splices of valid
// messages, and asserts the only outcomes are (a) a successful parse or
// (b) a clean typed throw (XdrError / RpcFormatError / GarbageArgsError).
// Anything else — bad_alloc from a hostile count, a crash, a leak (under
// ASan/LSan), an unexpected exception type — is a failure.
//
// Deterministic by construction (sim::Xoshiro256ss, fixed default seed) so
// a failing iteration is reproducible with --seed/--iters; wired into
// tools/check.sh stage 9 (fuzz-smoke) against the ASan+UBSan build.
//
// A second corpus stage covers the persistence/migration surface: v2
// checkpoint blobs, MIGR migration images (which nest checkpoints), and the
// MIGRATE transfer messages, decoded through the same server dispatch path a
// live migration target runs. The clean outcomes there additionally include
// CheckpointError / MigrationError (whose Version subclasses are counted
// separately — a mutated version word is routine, not a bug). Hostile chunk
// lengths are pinned deterministically in main(): a 2 GiB declared opaque
// count must die in the xdr count guard before any allocation, and an
// over-bound chunk record must die in the bounds pre-flight before decode.
//
// A third corpus stage is field-targeted at the wiretaint domain: each
// entry is a well-formed MIGRATE argument body plus the wire offsets of the
// scalars the generated headers wrap in xdr::Untrusted<> (declared totals,
// chunk offsets, transfer tickets). The mutator overwrites only those
// bytes, so every mutation survives decode and lands in the taint domain,
// where it must exit through a validator as a typed in-band refusal —
// never UB, never an escaped TaintError. Three hostile values are pinned
// deterministically in main(): a UINT64_MAX d2h length (TaintError at the
// validator, kGarbageArgs through dispatch), a mig_chunk offset near
// UINT64_MAX (refused without appending, transfer stays resumable), and
// zero / UINT32_MAX launch dimensions (LaunchError from the geometry seam).
//
// A fourth corpus stage covers the module-ingest surface: cubin images,
// fatbin containers (compressed and raw entries), and bare LZ streams,
// driven through fatbin::extract_metadata under a small decompression cap —
// the exact server entry point for an uploaded module. Clean outcomes there
// are CubinError and LzError; anything else (notably an allocation sized by
// a forged uncompressed_len) fails the run. Two hostile streams are pinned
// deterministically in main(): a ratio bomb (max-length matches at distance
// 1, ~44x per stream byte) must die at the output cap before the implied
// allocation, and a fatbin whose uncompressed_len field is forged beyond
// payload * kMaxExpansion must be refused at parse, before decompression.
//
// Usage: fuzz_decode [--iters N] [--seed S]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <span>
#include <string>
#include <vector>

#include "cricket/checkpoint.hpp"
#include "cricket/server.hpp"
#include "cricket_bounds.hpp"
#include "cricket_proto.hpp"
#include "cudart/local_api.hpp"
#include "fatbin/cubin.hpp"
#include "fatbin/fatbin.hpp"
#include "fatbin/lz.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"
#include "migrate/service.hpp"
#include "migrate/state.hpp"
#include "migrate_bounds.hpp"
#include "migrate_proto.hpp"
#include "rpc/record.hpp"
#include "rpc/rpc_msg.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "sim/rng.hpp"
#include "xdr/taint.hpp"
#include "xdr/xdr.hpp"

namespace {

using cricket::rpc::CallMsg;
using cricket::rpc::ReplyMsg;
using cricket::sim::Xoshiro256ss;

struct Stats {
  std::uint64_t parsed = 0;
  std::uint64_t xdr_errors = 0;
  std::uint64_t format_errors = 0;
  std::uint64_t preflight_rejects = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t record_errors = 0;
  std::uint64_t blob_errors = 0;     // CheckpointError / MigrationError
  std::uint64_t version_errors = 0;  // their future-version subclasses
  std::uint64_t taint_probes = 0;    // field-targeted taint-stage dispatches
  std::uint64_t module_errors = 0;   // CubinError / LzError
};

Stats g_stats;

/// One decoder invocation. Success and the typed malformed-input exceptions
/// are the only acceptable outcomes; everything else aborts the run with a
/// reproduction recipe printed by main().
template <typename Fn>
void expect_clean(Fn&& fn) {
  try {
    fn();
    ++g_stats.parsed;
  } catch (const cricket::xdr::XdrError&) {
    ++g_stats.xdr_errors;
  } catch (const cricket::rpc::RpcFormatError&) {
    ++g_stats.format_errors;
  } catch (const cricket::rpc::GarbageArgsError&) {
    ++g_stats.format_errors;
  }
  // std::bad_alloc, std::length_error, any other exception, or a signal
  // propagates out: those are exactly the bugs this harness exists to find.
}

/// Record-marking layer invocation. Here TransportError joins the clean
/// typed outcomes: it is what the reader raises both for a hostile fragment
/// length (the max-record cap) and for truncation mid-record, and a mutated
/// stream produces both constantly.
template <typename Fn>
void expect_clean_stream(Fn&& fn) {
  try {
    fn();
    ++g_stats.parsed;
  } catch (const cricket::rpc::TransportError&) {
    ++g_stats.record_errors;
  }
}

/// Persistence-blob decoder invocation. The checkpoint and migration-image
/// codecs wrap every malformed-input failure (including XdrError from the
/// body decode) in their own typed errors, so only those — plus success —
/// are clean. The Version subclasses are counted apart: a mutation landing
/// on the version word is the rolling-upgrade path working as designed.
template <typename Fn>
void expect_clean_blob(Fn&& fn) {
  try {
    fn();
    ++g_stats.parsed;
  } catch (const cricket::core::CheckpointVersionError&) {
    ++g_stats.version_errors;
  } catch (const cricket::migrate::MigrationVersionError&) {
    ++g_stats.version_errors;
  } catch (const cricket::core::CheckpointError&) {
    ++g_stats.blob_errors;
  } catch (const cricket::migrate::MigrationError&) {
    ++g_stats.blob_errors;
  }
}

/// Module-ingest invocation (fatbin/cubin/LZ). The codecs type every
/// malformed-input failure as CubinError or LzError; only those — plus a
/// successful extraction — are clean.
template <typename Fn>
void expect_clean_module(Fn&& fn) {
  try {
    fn();
    ++g_stats.parsed;
  } catch (const cricket::fatbin::CubinError&) {
    ++g_stats.module_errors;
  } catch (const cricket::fatbin::LzError&) {
    ++g_stats.module_errors;
  }
}

/// Replays one fuzzed buffer as an inbound byte stream: recv drains the
/// buffer, then reports orderly EOF. The record readers never send.
class SpanTransport final : public cricket::rpc::Transport {
 public:
  explicit SpanTransport(std::span<const std::uint8_t> data) : data_(data) {}

  void send(std::span<const std::uint8_t>) override {}
  std::size_t recv(std::span<std::uint8_t> out) override {
    const std::size_t n = std::min(out.size(), data_.size());
    if (n > 0) std::memcpy(out.data(), data_.data(), n);
    data_ = data_.subspan(n);
    return n;
  }
  void shutdown() override {}

 private:
  std::span<const std::uint8_t> data_;
};

// ----------------------------- seed corpus ------------------------------

std::vector<std::vector<std::uint8_t>> build_corpus() {
  namespace proto = cricket::proto;
  using namespace cricket::rpc;
  std::vector<std::vector<std::uint8_t>> corpus;

  CallMsg call;
  call.xid = 0x11223344;
  call.prog = proto::CRICKET_PROG;
  call.vers = proto::CRICKETVERS_VERS;
  call.proc = 13;  // rpc_memcpy_h2d(ptr_t, opaque<...>)
  {
    cricket::xdr::Encoder enc;
    enc.put_u64(0xDEADBEEF0000ull);
    enc.put_opaque(std::vector<std::uint8_t>(64, 0xAB));
    call.args = enc.take();
  }
  corpus.push_back(encode_call(call));

  AuthSysParms sys;
  sys.stamp = 7;
  sys.machinename = "unikernel-0";
  sys.uid = 1000;
  sys.gid = 1000;
  sys.gids = {4, 24, 27};
  call.cred = sys.to_opaque();
  call.proc = 34;  // rpc_launch_kernel
  corpus.push_back(encode_call(call));

  ReplyMsg ok;
  ok.xid = call.xid;
  {
    proto::u64_result res;
    res.err = 0;
    res.value = 0x1000;
    cricket::xdr::Encoder enc;
    xdr_encode(enc, res);
    ok.results = enc.take();
  }
  corpus.push_back(encode_reply(ok));

  ReplyMsg mismatch;
  mismatch.xid = 2;
  mismatch.accept_stat = AcceptStat::kProgMismatch;
  mismatch.mismatch = MismatchInfo{1, 3};
  corpus.push_back(encode_reply(mismatch));

  ReplyMsg denied;
  denied.xid = 3;
  denied.stat = ReplyStat::kDenied;
  denied.reject_stat = RejectStat::kAuthError;
  denied.auth_stat = AuthStat::kBadCred;
  corpus.push_back(encode_reply(denied));

  {
    proto::dev_props_result props;
    props.err = 0;
    props.name = "SimGPU";
    props.total_mem = 1ull << 32;
    cricket::xdr::Encoder enc;
    xdr_encode(enc, props);
    corpus.push_back(enc.take());
  }
  {
    proto::data_result data;
    data.err = 0;
    data.data = std::vector<std::uint8_t>(128, 0x5A);
    cricket::xdr::Encoder enc;
    xdr_encode(enc, data);
    corpus.push_back(enc.take());
  }
  {
    // Variable-length array of non-byte elements: the hostile-count guard
    // in xdr_decode(Decoder&, std::vector<T>&).
    cricket::xdr::Encoder enc;
    xdr_encode(enc, std::vector<std::uint32_t>{1, 2, 3, 4, 5});
    corpus.push_back(enc.take());
  }
  {
    // Record-marked framing of the first call, deliberately split into
    // small fragments so mutations land on the 4-byte fragment headers
    // (length field, last-fragment bit) as well as the payload.
    std::vector<std::uint8_t> framed;
    append_record_marked(framed, corpus.front(), /*max_fragment=*/32);
    corpus.push_back(std::move(framed));
  }
  // Hostile record header: last-fragment bit plus the maximum 31-bit
  // fragment length (2 GiB - 1). The RecordReader max-record cap must
  // reject this from the 4 header bytes alone, before any allocation or
  // payload read; main() additionally pins this against the default cap.
  corpus.push_back({0xFF, 0xFF, 0xFF, 0xFF});
  return corpus;
}

// ----------------- checkpoint / migration seed corpus -------------------

cricket::gpusim::DeviceSnapshot sample_snapshot() {
  cricket::gpusim::DeviceSnapshot snap;
  snap.next_id = 9;
  snap.allocations.push_back({0x1000, 32, std::vector<std::uint8_t>(32, 0xCD)});
  // The codec treats the module image as opaque re-serialized cubin bytes;
  // structure-aware cubin fuzzing lives with the fatbin tests.
  snap.modules.push_back(
      {5, std::vector<std::uint8_t>(48, 0xE1), {{"g_state", 0x2000}}});
  snap.functions.push_back({6, 5, "mark"});
  snap.streams = {{1, 100}, {2, 250}};
  snap.events = {{3, 120}, {4, 240}};
  return snap;
}

cricket::migrate::MigrationImage sample_image() {
  cricket::migrate::MigrationImage image;
  image.tenant.spec.name = "alice";
  image.tenant.spec.weight = 3;
  image.tenant.spec.quota.device_mem_bytes = 1ull << 30;
  image.tenant.bucket_tokens = 55;
  image.tenant.calls_admitted = 99;
  cricket::core::SessionExport s;
  s.session_id = 7;
  s.client_id = 0xFEED;
  s.state = sample_snapshot();
  s.allocations = {{0x1000, 32}};
  s.modules = {static_cast<cricket::cuda::ModuleId>(5)};
  s.streams = {static_cast<cricket::cuda::StreamId>(1),
               static_cast<cricket::cuda::StreamId>(2)};
  s.events = {static_cast<cricket::cuda::EventId>(3)};
  cricket::rpc::DrcExportEntry drc;
  drc.client = 0xABCDEF;
  drc.xid = 9;
  drc.reply = {1, 2, 3, 4, 5};
  s.drc.push_back(std::move(drc));
  image.sessions.push_back(std::move(s));
  return image;
}

std::vector<std::vector<std::uint8_t>> build_blob_corpus() {
  namespace mproto = cricket::migrate::proto;
  using namespace cricket::rpc;
  std::vector<std::vector<std::uint8_t>> corpus;

  // A realistic v2 checkpoint and a migration image nesting one: mutations
  // land on the magic, the version word, both checksums, the handle-table
  // counts, and the nested-blob length field.
  corpus.push_back(cricket::core::encode_checkpoint(sample_snapshot()));
  const auto image_blob = cricket::migrate::encode_image(sample_image());
  corpus.push_back(image_blob);

  // The MIGRATE transfer messages, bare and as full call records through
  // the same dispatch path a migration target serves.
  CallMsg call;
  call.xid = 0x4D494752;  // "MIGR"
  call.prog = mproto::MIGRATE_PROG;
  call.vers = mproto::MIGRATEVERS_VERS;
  call.proc = mproto::MIG_BEGIN_PROC;
  {
    mproto::mig_begin_args begin;
    begin.tenant = "alice";
    begin.total_bytes =
        cricket::xdr::Untrusted<std::uint64_t>(image_blob.size());
    cricket::xdr::Encoder enc;
    xdr_encode(enc, begin);
    call.args = enc.take();
    corpus.push_back(call.args);
  }
  corpus.push_back(encode_call(call));
  {
    mproto::mig_chunk_args chunk;
    chunk.ticket = cricket::xdr::Untrusted<std::uint64_t>(1);
    chunk.offset = cricket::xdr::Untrusted<std::uint64_t>(0);
    chunk.data.assign(image_blob.begin(),
                      image_blob.begin() +
                          static_cast<std::ptrdiff_t>(
                              std::min<std::size_t>(image_blob.size(), 96)));
    cricket::xdr::Encoder enc;
    xdr_encode(enc, chunk);
    call.proc = mproto::MIG_CHUNK_PROC;
    call.args = enc.take();
    corpus.push_back(call.args);
  }
  corpus.push_back(encode_call(call));
  {
    mproto::mig_commit_args commit;
    commit.ticket = cricket::xdr::Untrusted<std::uint64_t>(1);
    commit.checksum = cricket::migrate::fnv64(image_blob);
    cricket::xdr::Encoder enc;
    xdr_encode(enc, commit);
    call.proc = mproto::MIG_COMMIT_PROC;
    call.args = enc.take();
    corpus.push_back(encode_call(call));
  }
  return corpus;
}

// ---------------------- module-ingest seed corpus -----------------------

/// Bounds every fuzzed decompression: hostile counts must be refused, not
/// allocated, and the corpus images all fit comfortably inside it.
constexpr std::uint64_t kFuzzModuleCap = std::uint64_t{1} << 20;

cricket::fatbin::CubinImage sample_cubin() {
  cricket::fatbin::CubinImage img;
  img.sm_arch = 75;
  cricket::fatbin::KernelDescriptor k;
  k.name = "fuzz_mark";
  k.params = {{.size = 8, .align = 8, .is_pointer = true},
              {.size = 4, .align = 4, .is_pointer = false}};
  img.kernels.push_back(k);
  img.globals.push_back({"g_fuzz", 64, {}});
  img.code = cricket::fatbin::make_pseudo_isa(512, 11);
  return img;
}

/// A ratio bomb: one literal, then max-length matches at distance 1 — the
/// densest valid encoding (~44x per stream byte). `tokens` match tokens
/// imply tokens * 131 output bytes from a 2 + 3 * tokens byte stream.
std::vector<std::uint8_t> ratio_bomb(std::size_t tokens) {
  std::vector<std::uint8_t> bomb = {0x00, 0x5A};
  for (std::size_t i = 0; i < tokens; ++i) {
    bomb.push_back(0xFF);
    bomb.push_back(0x01);
    bomb.push_back(0x00);
  }
  return bomb;
}

std::vector<std::vector<std::uint8_t>> build_module_corpus() {
  namespace fatbin = cricket::fatbin;
  std::vector<std::vector<std::uint8_t>> corpus;
  const auto cubin = cubin_serialize(sample_cubin());
  // Bare cubin: mutations land on its magic, section counts, name lengths.
  corpus.push_back(cubin);
  // Fatbin container with a compressed and a raw entry: mutations land on
  // the container header, flags, uncompressed_len, payload_len, and the LZ
  // token stream itself.
  {
    fatbin::Fatbin fb;
    fb.add_raw(75, cubin, /*compress=*/true);
    fb.add_raw(61, cubin, /*compress=*/false);
    corpus.push_back(fb.serialize());
  }
  // Bare LZ stream (the no-container upload path).
  corpus.push_back(fatbin::lz_compress(cubin));
  // The ratio bomb itself as a seed: every mutation of it must still die
  // in either the expansion guard or the cubin probe.
  corpus.push_back(ratio_bomb(64));
  return corpus;
}

/// The exact server ingest path for an uploaded module image, under the
/// fuzz cap so no mutation can buy a large throwaway allocation.
void consume_module(std::span<const std::uint8_t> buf) {
  expect_clean_module([&] {
    (void)cricket::fatbin::extract_metadata(buf, 75, kFuzzModuleCap);
  });
  expect_clean_module([&] {
    const auto fb = cricket::fatbin::Fatbin::parse(buf);
    (void)fb.load(75, kFuzzModuleCap);
  });
}

// ------------------------------ mutators --------------------------------

void mutate(Xoshiro256ss& rng, std::vector<std::uint8_t>& buf) {
  if (buf.empty()) return;
  switch (rng.next() % 5) {
    case 0:  // truncate
      buf.resize(rng.next() % buf.size());
      break;
    case 1: {  // single bit flip
      const std::size_t i = rng.next() % buf.size();
      buf[i] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
      break;
    }
    case 2: {  // overwrite an aligned u32 with a boundary value
      if (buf.size() < 4) break;
      const std::uint32_t boundary[] = {
          0u,          1u,          0x7FFFFFFFu,
          0x80000000u, 0xFFFFFFFFu, static_cast<std::uint32_t>(buf.size()),
          static_cast<std::uint32_t>(buf.size() + 1),
          static_cast<std::uint32_t>(buf.size() - 1)};
      const std::uint32_t v =
          boundary[rng.next() % (sizeof(boundary) / sizeof(boundary[0]))];
      const std::size_t words = buf.size() / 4;
      const std::size_t at = 4 * (rng.next() % words);
      buf[at] = static_cast<std::uint8_t>(v >> 24);
      buf[at + 1] = static_cast<std::uint8_t>(v >> 16);
      buf[at + 2] = static_cast<std::uint8_t>(v >> 8);
      buf[at + 3] = static_cast<std::uint8_t>(v);
      break;
    }
    case 3: {  // zero a random range
      const std::size_t a = rng.next() % buf.size();
      const std::size_t n = 1 + rng.next() % (buf.size() - a);
      std::memset(buf.data() + a, 0, n);
      break;
    }
    case 4: {  // append random tail (trailing-garbage detection)
      std::vector<std::uint8_t> tail(1 + rng.next() % 16);
      rng.fill_bytes(tail);
      buf.insert(buf.end(), tail.begin(), tail.end());
      break;
    }
  }
}

// ---------------------- wiretaint field-targeted stage ------------------

/// One taint-stage corpus entry: a well-formed argument body plus the wire
/// offsets of the u64 scalars the generated header wraps in
/// xdr::Untrusted<> for this procedure.
struct TaintEntry {
  std::uint32_t proc = 0;
  std::vector<std::uint8_t> args;
  std::vector<std::size_t> field_offsets;
};

std::vector<TaintEntry> build_taint_corpus(std::uint64_t live_ticket) {
  namespace mproto = cricket::migrate::proto;
  std::vector<TaintEntry> corpus;
  {
    mproto::mig_begin_args begin;
    begin.tenant = "alice";
    begin.total_bytes = cricket::xdr::Untrusted<std::uint64_t>(64);
    cricket::xdr::Encoder enc;
    xdr_encode(enc, begin);
    // "alice" encodes as a u32 count plus 5 bytes padded to 8: total_bytes
    // starts at offset 12.
    corpus.push_back({mproto::MIG_BEGIN_PROC, enc.take(), {12}});
  }
  {
    mproto::mig_chunk_args chunk;
    chunk.ticket = cricket::xdr::Untrusted<std::uint64_t>(live_ticket);
    chunk.offset = cricket::xdr::Untrusted<std::uint64_t>(0);
    chunk.data.assign(16, 0x42);
    cricket::xdr::Encoder enc;
    xdr_encode(enc, chunk);
    corpus.push_back({mproto::MIG_CHUNK_PROC, enc.take(), {0, 8}});
  }
  {
    mproto::mig_commit_args commit;
    commit.ticket = cricket::xdr::Untrusted<std::uint64_t>(live_ticket);
    commit.checksum = 0x1234;
    cricket::xdr::Encoder enc;
    xdr_encode(enc, commit);
    corpus.push_back({mproto::MIG_COMMIT_PROC, enc.take(), {0}});
  }
  return corpus;
}

/// Overwrites exactly one tainted scalar field with a boundary or random
/// value (big-endian, as on the wire) and returns the value written.
std::uint64_t mutate_taint_field(Xoshiro256ss& rng, TaintEntry& entry) {
  static constexpr std::uint64_t kBoundary[] = {
      0ull,           1ull,           0x7FFFFFFFull,
      0x80000000ull,  0xFFFFFFFFull,  1ull << 32,
      1ull << 63,     ~0ull - 8,      ~0ull - 1,
      ~0ull};
  const std::uint64_t v = rng.next() % 3 == 0
                              ? rng.next()
                              : kBoundary[rng.next() %
                                          (sizeof(kBoundary) /
                                           sizeof(kBoundary[0]))];
  const std::size_t at =
      entry.field_offsets[rng.next() % entry.field_offsets.size()];
  for (std::size_t i = 0; i < 8; ++i)
    entry.args[at + i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  return v;
}

/// The hostile value, standalone, against the cricket-side taint exits: the
/// generated default length validator (TaintError is the only failure) and
/// the launch-geometry seam (LaunchError likewise).
void probe_scalar_seams(std::uint64_t raw) {
  try {
    (void)cricket::proto::taint::validate_length(
        cricket::xdr::Untrusted<std::uint64_t>(raw), "taint-stage");
  } catch (const cricket::xdr::TaintError&) {
  }
  try {
    (void)cricket::gpusim::validated_dim3(
        cricket::xdr::Untrusted<std::uint32_t>(
            static_cast<std::uint32_t>(raw)),
        cricket::xdr::Untrusted<std::uint32_t>(1),
        cricket::xdr::Untrusted<std::uint32_t>(1), "taint-stage");
  } catch (const cricket::gpusim::LaunchError&) {
  }
}

/// Decodes the mutated argument body with the generated (taint-wrapping)
/// decoder and drives the real MigrationTarget procedure. The only
/// acceptable outcome is a result code inside the MigErr enum: an escaped
/// TaintError, any other exception, or an out-of-enum code fails the run.
void consume_taint(cricket::migrate::MigrationTarget& target,
                   const TaintEntry& entry) {
  namespace mproto = cricket::migrate::proto;
  cricket::xdr::Decoder dec(entry.args);
  std::int32_t err = cricket::migrate::kMigOk;
  switch (entry.proc) {
    case mproto::MIG_BEGIN_PROC: {
      mproto::mig_begin_args v;
      xdr_decode(dec, v);
      const auto res = target.begin(v.tenant, v.total_bytes);
      err = res.err;
      // Keep the pending table from pinning every slot across iterations.
      if (res.err == cricket::migrate::kMigOk)
        (void)target.abort(
            cricket::xdr::Untrusted<std::uint64_t>(res.ticket));
      break;
    }
    case mproto::MIG_CHUNK_PROC: {
      mproto::mig_chunk_args v;
      xdr_decode(dec, v);
      err = target.chunk(v.ticket, v.offset, v.data);
      break;
    }
    case mproto::MIG_COMMIT_PROC: {
      mproto::mig_commit_args v;
      xdr_decode(dec, v);
      err = target.commit(v.ticket, v.checksum);
      break;
    }
  }
  if (err < cricket::migrate::kMigOk || err > cricket::migrate::kMigBusy)
    throw std::runtime_error(
        "taint stage: refusal code outside the MigErr enum");
  ++g_stats.taint_probes;
}

// ------------------------------ consumers -------------------------------

cricket::rpc::ServiceRegistry build_registry() {
  namespace proto = cricket::proto;
  cricket::rpc::ServiceRegistry registry;
  registry.set_bounds(proto::bounds::kProcBounds);
  registry.register_typed<proto::int_result, std::uint64_t,
                          std::vector<std::uint8_t>>(
      proto::CRICKET_PROG, proto::CRICKETVERS_VERS, 13,
      [](std::uint64_t, std::vector<std::uint8_t>) {
        return proto::int_result{};
      });
  return registry;
}

/// MIGRATE dispatch surface with the real generated decoders and bounds but
/// no buffering behind it: the fuzz target is the decode path, not the
/// transfer state machine (tests/migrate_test.cpp hammers that one).
class NullMigrateService final
    : public cricket::migrate::proto::MIGRATEVERSService {
 public:
  cricket::migrate::proto::mig_begin_result mig_begin(
      cricket::migrate::proto::mig_begin_args) override {
    return {};
  }
  std::int32_t mig_chunk(cricket::migrate::proto::mig_chunk_args) override {
    return 0;
  }
  std::int32_t mig_commit(cricket::migrate::proto::mig_commit_args) override {
    return 0;
  }
  std::int32_t mig_abort(cricket::xdr::Untrusted<std::uint64_t>) override {
    return 0;
  }
};

cricket::rpc::ServiceRegistry build_migrate_registry(
    NullMigrateService& service) {
  cricket::rpc::ServiceRegistry registry;
  registry.set_bounds(cricket::migrate::proto::bounds::kProcBounds);
  service.register_into(registry);
  return registry;
}

void consume_blob(const cricket::rpc::ServiceRegistry& registry,
                  std::span<const std::uint8_t> buf) {
  namespace mproto = cricket::migrate::proto;
  using namespace cricket::rpc;

  expect_clean_blob([&] { (void)cricket::core::decode_checkpoint(buf); });
  expect_clean_blob([&] { (void)cricket::migrate::decode_image(buf); });

  // Typed decoders over the generated migration messages.
  expect_clean([&] {
    cricket::xdr::Decoder dec(buf);
    mproto::mig_begin_args v;
    xdr_decode(dec, v);
  });
  expect_clean([&] {
    cricket::xdr::Decoder dec(buf);
    mproto::mig_chunk_args v;
    xdr_decode(dec, v);
  });
  expect_clean([&] {
    cricket::xdr::Decoder dec(buf);
    mproto::mig_commit_args v;
    xdr_decode(dec, v);
  });

  // Migration-target receive path: bounds pre-flight, then decode+dispatch,
  // exactly as MigrationTarget::serve runs it.
  expect_clean([&] {
    if (auto rejected = registry.preflight(buf)) {
      ++g_stats.preflight_rejects;
      (void)encode_reply(*rejected);
      return;
    }
    const CallMsg call = decode_call(buf);
    ++g_stats.dispatches;
    (void)encode_reply(registry.dispatch(call));
  });
}

void consume(const cricket::rpc::ServiceRegistry& registry,
             std::span<const std::uint8_t> buf) {
  namespace proto = cricket::proto;
  using namespace cricket::rpc;

  expect_clean([&] { (void)peek_call_header(buf); });
  expect_clean([&] { (void)decode_call(buf); });
  expect_clean([&] { (void)decode_reply(buf); });

  // Server receive path exactly as serve_transport runs it: bounds
  // pre-flight first, full decode + dispatch only for records that pass.
  expect_clean([&] {
    if (auto rejected = registry.preflight(buf)) {
      ++g_stats.preflight_rejects;
      (void)encode_reply(*rejected);
      return;
    }
    const CallMsg call = decode_call(buf);
    ++g_stats.dispatches;
    (void)encode_reply(registry.dispatch(call));
  });

  // Typed decoders over the generated protocol structs.
  expect_clean([&] {
    cricket::xdr::Decoder dec(buf);
    proto::dev_props_result v;
    xdr_decode(dec, v);
  });
  expect_clean([&] {
    cricket::xdr::Decoder dec(buf);
    proto::data_result v;
    xdr_decode(dec, v);
  });
  expect_clean([&] {
    cricket::xdr::Decoder dec(buf);
    std::vector<std::uint32_t> v;
    xdr_decode(dec, v);
    dec.expect_exhausted();
  });
  // Record-marking layer: replay the buffer as an inbound byte stream and
  // reassemble records to EOF through both reader implementations. The
  // small explicit cap keeps mutated length fields from turning into large
  // throwaway allocations each iteration; rejection of a hostile length
  // against the DEFAULT cap is pinned deterministically in main().
  expect_clean_stream([&] {
    SpanTransport t(buf);
    RecordReader reader(t, /*max_record=*/std::size_t{1} << 16);
    std::vector<std::uint8_t> record;
    while (reader.read_record(record)) {
    }
  });
  expect_clean_stream([&] {
    SpanTransport t(buf);
    BufferedRecordReader reader(t, /*chunk=*/64,
                                /*max_record=*/std::size_t{1} << 16);
    std::vector<std::uint8_t> record;
    while (reader.read_record(record)) {
    }
  });

  expect_clean([&] {
    OpaqueAuth auth;
    auth.flavor = AuthFlavor::kSys;
    auth.body.assign(buf.begin(),
                     buf.begin() + static_cast<std::ptrdiff_t>(
                                       std::min<std::size_t>(buf.size(), 400)));
    (void)AuthSysParms::from_opaque(auth);
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 10000;
  std::uint64_t seed = 0x5EED5EEDull;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iters" && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: fuzz_decode [--iters N] [--seed S]\n");
      return 2;
    }
  }

  {
    // Pin the default record cap before fuzzing: a header advertising the
    // maximum 31-bit fragment length must be rejected from the 4 header
    // bytes alone — no payload read, no allocation.
    const std::uint8_t hostile[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    SpanTransport t(std::span(hostile, 4));
    cricket::rpc::RecordReader reader(t);
    std::vector<std::uint8_t> record;
    bool rejected = false;
    try {
      (void)reader.read_record(record);
    } catch (const cricket::rpc::TransportError&) {
      rejected = true;
    }
    if (!rejected) {
      std::fprintf(stderr,
                   "fuzz_decode: hostile 2 GiB fragment header was NOT "
                   "rejected by the default record cap\n");
      return 1;
    }
  }

  NullMigrateService mig_service;
  const auto mig_registry = build_migrate_registry(mig_service);

  {
    // Pin the hostile chunk-length guards deterministically, before fuzzing.
    //
    // (a) A mig_chunk call whose opaque count word claims 2 GiB - 1 on a
    // 20-byte argument body. The record itself is within the proven
    // [20, 262164] interval, so pre-flight admits it; the xdr array-count
    // guard must then reject it from the count word alone — before the
    // vector allocation — surfacing as the typed GarbageArgsError reply.
    namespace mproto = cricket::migrate::proto;
    cricket::rpc::CallMsg call;
    call.xid = 1;
    call.prog = mproto::MIGRATE_PROG;
    call.vers = mproto::MIGRATEVERS_VERS;
    call.proc = mproto::MIG_CHUNK_PROC;
    {
      cricket::xdr::Encoder enc;
      enc.put_u64(1);           // ticket
      enc.put_u64(0);           // offset
      enc.put_u32(0x7FFFFFFF);  // data<> count with no data behind it
      call.args = enc.take();
    }
    {
      const auto record = cricket::rpc::encode_call(call);
      if (mig_registry.preflight(record)) {
        std::fprintf(stderr,
                     "fuzz_decode: in-bounds mig_chunk record rejected by "
                     "pre-flight\n");
        return 1;
      }
      const auto reply = mig_registry.dispatch(cricket::rpc::decode_call(record));
      if (reply.accept_stat != cricket::rpc::AcceptStat::kGarbageArgs) {
        std::fprintf(stderr,
                     "fuzz_decode: hostile 2 GiB chunk count was NOT "
                     "rejected by the xdr count guard\n");
        return 1;
      }
    }
    // (b) A chunk record carrying more than MIG_MAX_CHUNK actual bytes.
    // Its wire size exceeds the proven maximum, so the bounds pre-flight
    // must refuse it before any argument decoding happens at all.
    {
      cricket::xdr::Encoder enc;
      enc.put_u64(1);
      enc.put_u64(0);
      enc.put_opaque(std::vector<std::uint8_t>(
          static_cast<std::size_t>(mproto::MIG_MAX_CHUNK) + 4, 0x42));
      call.args = enc.take();
      if (!mig_registry.preflight(cricket::rpc::encode_call(call))) {
        std::fprintf(stderr,
                     "fuzz_decode: over-bound mig_chunk record was NOT "
                     "rejected by the bounds pre-flight\n");
        return 1;
      }
    }
    // (c) A future-versioned migration image must surface as the distinct
    // version error (upgrade-ordering signal), never generic corruption.
    {
      auto blob = cricket::migrate::encode_image(sample_image());
      blob[7] = 0x7F;
      bool versioned = false;
      try {
        (void)cricket::migrate::decode_image(blob);
      } catch (const cricket::migrate::MigrationVersionError&) {
        versioned = true;
      } catch (const cricket::migrate::MigrationError&) {
      }
      if (!versioned) {
        std::fprintf(stderr,
                     "fuzz_decode: future-versioned migration image did NOT "
                     "raise MigrationVersionError\n");
        return 1;
      }
    }
  }

  // Stage-3 consumer: a real MigrationTarget (no SessionManager behind it,
  // so nothing a fuzzed commit does can escape the transfer state machine).
  auto node = cricket::cuda::GpuNode::make_a100();
  cricket::core::CricketServer server(*node);
  cricket::migrate::MigrationTarget target(server,
                                           {.max_image_bytes = 1024});
  const auto live =
      target.begin("alice", cricket::xdr::Untrusted<std::uint64_t>(1024));
  if (live.err != cricket::migrate::kMigOk) {
    std::fprintf(stderr, "fuzz_decode: could not open the live ticket\n");
    return 1;
  }

  {
    // Pin the wiretaint exits deterministically before fuzzing.
    //
    // (a) A d2h length of UINT64_MAX dies in the generated default length
    // validator as the typed TaintError — and through a registry dispatch
    // the same hostile value surfaces as the kGarbageArgs reply, the escape
    // path a handler cannot opt out of.
    bool tainted = false;
    try {
      (void)cricket::proto::taint::validate_length(
          cricket::xdr::Untrusted<std::uint64_t>(~0ull), "pin.d2h.len");
    } catch (const cricket::xdr::TaintError&) {
      tainted = true;
    }
    if (!tainted) {
      std::fprintf(stderr,
                   "fuzz_decode: UINT64_MAX d2h length did NOT raise "
                   "TaintError in the default length validator\n");
      return 1;
    }
    cricket::rpc::ServiceRegistry reg;
    reg.register_typed<cricket::proto::u64_result,
                       cricket::xdr::Untrusted<std::uint64_t>>(
        cricket::proto::CRICKET_PROG, cricket::proto::CRICKETVERS_VERS,
        cricket::proto::RPC_MEMCPY_D2H_PROC,
        [](cricket::xdr::Untrusted<std::uint64_t> len) {
          return cricket::proto::u64_result{
              0, cricket::proto::taint::validate_length(len, "pin.d2h.len")};
        });
    cricket::rpc::CallMsg hostile_len;
    hostile_len.xid = 2;
    hostile_len.prog = cricket::proto::CRICKET_PROG;
    hostile_len.vers = cricket::proto::CRICKETVERS_VERS;
    hostile_len.proc = cricket::proto::RPC_MEMCPY_D2H_PROC;
    {
      cricket::xdr::Encoder enc;
      enc.put_u64(~0ull);
      hostile_len.args = enc.take();
    }
    if (reg.dispatch(hostile_len).accept_stat !=
        cricket::rpc::AcceptStat::kGarbageArgs) {
      std::fprintf(stderr,
                   "fuzz_decode: UINT64_MAX d2h length did NOT surface as "
                   "kGarbageArgs through dispatch\n");
      return 1;
    }
    // (b) A mig_chunk offset near UINT64_MAX: refused as out-of-order
    // (saturating taint arithmetic keeps it from masquerading as an
    // acknowledged retransmission), nothing appended, transfer resumable.
    const std::vector<std::uint8_t> sixteen(16, 0x11);
    if (target.chunk(cricket::xdr::Untrusted<std::uint64_t>(live.ticket),
                     cricket::xdr::Untrusted<std::uint64_t>(~0ull - 8),
                     sixteen) != cricket::migrate::kMigOutOfOrder ||
        target.chunk(cricket::xdr::Untrusted<std::uint64_t>(live.ticket),
                     cricket::xdr::Untrusted<std::uint64_t>(0),
                     sixteen) != cricket::migrate::kMigOk) {
      std::fprintf(stderr,
                   "fuzz_decode: near-UINT64_MAX chunk offset was NOT "
                   "refused cleanly\n");
      return 1;
    }
    // (c) Zero and UINT32_MAX launch dimensions both die in the geometry
    // seam as LaunchError — never a crash, never a wrapped extent.
    for (const std::uint32_t dim : {0u, 0xFFFFFFFFu}) {
      bool refused = false;
      try {
        (void)cricket::gpusim::validated_dim3(
            cricket::xdr::Untrusted<std::uint32_t>(dim),
            cricket::xdr::Untrusted<std::uint32_t>(1),
            cricket::xdr::Untrusted<std::uint32_t>(1), "pin.launch");
      } catch (const cricket::gpusim::LaunchError&) {
        refused = true;
      }
      if (!refused) {
        std::fprintf(stderr,
                     "fuzz_decode: hostile launch dim %u was NOT refused "
                     "by the geometry seam\n", dim);
        return 1;
      }
    }
  }

  {
    // Pin the module-ingest guards deterministically before fuzzing.
    //
    // (a) The ratio bomb must die at the output cap: a ~3 KB stream
    // implying ~131 KB of output is refused with peak allocation bounded
    // by the cap (4 KiB here), not by what the stream implies.
    const auto bomb = ratio_bomb(1000);
    bool capped = false;
    try {
      (void)cricket::fatbin::lz_decompress(bomb, 4096);
    } catch (const cricket::fatbin::LzError&) {
      capped = true;
    }
    if (!capped) {
      std::fprintf(stderr,
                   "fuzz_decode: LZ ratio bomb was NOT stopped at the "
                   "output cap\n");
      return 1;
    }
    try {
      (void)cricket::fatbin::extract_metadata(bomb, 75, 4096);
      capped = false;
    } catch (const cricket::fatbin::LzError&) {
    } catch (const cricket::fatbin::CubinError&) {
    }
    if (!capped) {
      std::fprintf(stderr,
                   "fuzz_decode: ratio bomb was NOT refused through "
                   "extract_metadata\n");
      return 1;
    }
    // (b) A fatbin whose uncompressed_len is forged beyond what any valid
    // token stream could produce (payload * kMaxExpansion) must be refused
    // at parse time — the declared length never authorizes an allocation.
    cricket::fatbin::Fatbin fb;
    fb.add_raw(75, cubin_serialize(sample_cubin()), /*compress=*/true);
    auto forged = fb.serialize();
    const std::uint64_t implausible =
        fb.entries()[0].payload.size() * cricket::fatbin::kMaxExpansion + 1;
    // uncompressed_len sits after the 12-byte container header and the
    // entry's sm_arch + flags words, little-endian.
    for (std::size_t i = 0; i < 8; ++i)
      forged[20 + i] = static_cast<std::uint8_t>(implausible >> (8 * i));
    bool refused = false;
    try {
      (void)cricket::fatbin::Fatbin::parse(forged);
    } catch (const cricket::fatbin::CubinError&) {
      refused = true;
    }
    if (!refused) {
      std::fprintf(stderr,
                   "fuzz_decode: forged fatbin uncompressed_len was NOT "
                   "refused at parse\n");
      return 1;
    }
  }

  const auto corpus = build_corpus();
  const auto registry = build_registry();
  const auto blob_corpus = build_blob_corpus();
  const auto taint_corpus = build_taint_corpus(live.ticket);
  const auto module_corpus = build_module_corpus();
  Xoshiro256ss rng(seed);

  std::uint64_t it = 0;
  const std::uint64_t total = 4 * iters;
  try {
    for (; it < total; ++it) {
      // Stage 1: the RPC decode surface. Stage 2: checkpoint blobs,
      // migration images, and MIGRATE transfer messages. Stage 3:
      // field-targeted mutation of the Untrusted<>-wrapped scalars.
      // Stage 4: the module-ingest surface (cubin/fatbin/LZ).
      if (it >= 3 * iters) {
        std::vector<std::uint8_t> buf =
            module_corpus[rng.next() % module_corpus.size()];
        const std::uint64_t rounds = 1 + rng.next() % 3;
        for (std::uint64_t m = 0; m < rounds; ++m) mutate(rng, buf);
        consume_module(buf);
        continue;
      }
      if (it >= 2 * iters) {
        TaintEntry entry = taint_corpus[rng.next() % taint_corpus.size()];
        const std::uint64_t raw = mutate_taint_field(rng, entry);
        consume_taint(target, entry);
        probe_scalar_seams(raw);
        continue;
      }
      const bool blob_stage = it >= iters;
      const auto& pool = blob_stage ? blob_corpus : corpus;
      std::vector<std::uint8_t> buf = pool[rng.next() % pool.size()];
      const std::uint64_t rounds = 1 + rng.next() % 3;
      for (std::uint64_t m = 0; m < rounds; ++m) mutate(rng, buf);
      if (blob_stage) {
        consume_blob(mig_registry, buf);
      } else {
        consume(registry, buf);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "fuzz_decode: UNEXPECTED %s at iteration %llu "
                 "(reproduce: fuzz_decode --seed 0x%llx --iters %llu)\n",
                 e.what(), static_cast<unsigned long long>(it),
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(iters));
    return 1;
  }

  std::printf(
      "fuzz_decode: %llu iterations clean (parsed %llu, xdr errors %llu, "
      "format errors %llu, preflight rejects %llu, dispatches %llu, "
      "record errors %llu, blob errors %llu, version errors %llu, "
      "taint probes %llu, module errors %llu)\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(g_stats.parsed),
      static_cast<unsigned long long>(g_stats.xdr_errors),
      static_cast<unsigned long long>(g_stats.format_errors),
      static_cast<unsigned long long>(g_stats.preflight_rejects),
      static_cast<unsigned long long>(g_stats.dispatches),
      static_cast<unsigned long long>(g_stats.record_errors),
      static_cast<unsigned long long>(g_stats.blob_errors),
      static_cast<unsigned long long>(g_stats.version_errors),
      static_cast<unsigned long long>(g_stats.taint_probes),
      static_cast<unsigned long long>(g_stats.module_errors));
  return 0;
}
