#!/usr/bin/env python3
"""Validates a committed bench JSON trajectory (BENCH_*.json).

Stdlib-only; used by tools/check.sh stage 12 (bench-json) and by hand:

    build/bench/bench_tenants --json=BENCH_tenants.json
    build/bench/bench_migrate --json=BENCH_migrate.json
    python3 tools/validate_bench_json.py BENCH_tenants.json
    python3 tools/validate_bench_json.py BENCH_migrate.json

Dispatches on the top-level "bench" discriminator.

For "tenants":
  1. schema     — top level {"bench": "tenants", "window_ms", "admission",
                  "sweep", "gates_ok"}; every sweep point carries the
                  fairness/throughput keys for both policies.
  2. admission  — over-quota calls were rejected, zero argument decodes
                  happened while rejecting (rejection precedes decode), and
                  the connection recovered after the token bucket refilled.
  3. gates      — the bench's own acceptance verdict is true, and the
                  16-tenant point honours the ISSUE thresholds: non-hog
                  device time within 10% of fair share and fair-share
                  aggregate throughput >= 0.85x the FIFO baseline.

For "modcache" (the content-addressed module cache bench, DESIGN.md §15):
  1. schema     — {"bench": "modcache", "fleet", "cold", "repeat",
                  "wire_reduction", "server_cache", "gates_ok"} with the
                  per-phase keys below.
  2. coverage   — the cold phase missed on every load, the repeat phase hit
                  on every load, and the server saw exactly one insert per
                  distinct image with zero evictions.
  3. gates      — repeat loads moved >= 10x fewer wire bytes per load than
                  cold loads (the ISSUE threshold), bytes_saved is
                  positive, and the bench's own verdict is true.

For "migrate" (the rolling-restart fleet bench, DESIGN.md §13):
  1. schema     — {"bench": "migrate", "fleet", "traffic", "migrations",
                  "blackout_ms", "gates_ok"} with the per-migration and
                  traffic keys below.
  2. coverage   — every tenant migrated in BOTH directions (a full rolling
                  restart), every migration committed, and the redirect
                  flip was actually exercised (reconnects and migrating
                  redirects observed).
  3. gates      — zero failed calls, exactly-once (executions == launches,
                  zero duplicates), data integrity held, and every blackout
                  sample (p50 <= p99 <= max) within the committed budget.

Exit code 0 iff every check passes.
"""
import json
import sys

POLICY_KEYS = (
    "elapsed_ns",
    "total_device_ns",
    "utilization",
    "total_ops",
    "nonhog_mean_device_ns",
    "nonhog_min_device_ns",
    "nonhog_max_device_ns",
    "max_share_error",
    "hog_device_ns",
    "hog_rejected",
)


def fail(msg):
    print(f"validate_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_schema(doc):
    if doc.get("bench") != "tenants":
        fail(f'bench is {doc.get("bench")!r}, expected "tenants"')
    for key in ("window_ms", "admission", "sweep", "gates_ok"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if not isinstance(doc["sweep"], list) or not doc["sweep"]:
        fail("sweep is empty")
    for point in doc["sweep"]:
        for key in ("tenants", "fair", "fifo", "throughput_ratio",
                    "fairness_ok"):
            if key not in point:
                fail(f"sweep point missing key {key!r}")
        for policy in ("fair", "fifo"):
            for key in POLICY_KEYS:
                if key not in point[policy]:
                    fail(f"sweep[tenants={point['tenants']}].{policy} "
                         f"missing key {key!r}")


def check_admission(adm):
    if adm.get("rejected", 0) <= 0:
        fail("admission section recorded no rejected calls")
    if adm.get("decodes_during_rejection", 1) != 0:
        fail(f"{adm['decodes_during_rejection']} argument decodes happened "
             "while rejecting (rejection must precede decode)")
    if not adm.get("recovered_after_refill"):
        fail("connection did not recover after the token bucket refilled")


def check_gates(doc):
    if not doc["gates_ok"]:
        fail("the bench's own gates_ok verdict is false")
    sixteen = [p for p in doc["sweep"] if p["tenants"] == 16]
    if not sixteen:
        fail("sweep has no 16-tenant point")
    point = sixteen[0]
    fair = point["fair"]
    if fair["max_share_error"] > 0.10:
        fail(f"16-tenant non-hog share error {fair['max_share_error']:.3f} "
             "exceeds 10%")
    if point["throughput_ratio"] < 0.85:
        fail(f"16-tenant throughput ratio {point['throughput_ratio']:.3f} "
             "below 0.85x the FIFO baseline")
    if fair["hog_rejected"] <= 0:
        fail("16-tenant hog saw no admission rejections")


MIGRATION_KEYS = ("tenant", "from", "to", "committed", "sessions",
                  "image_bytes", "chunks", "duration_ms", "blackout_ms")
TRAFFIC_KEYS = ("calls", "failed_calls", "launches", "executions",
                "duplicate_executions", "drc_hits", "reconnects",
                "migrating_redirects", "data_integrity_ok")


def check_migrate_schema(doc):
    for key in ("fleet", "traffic", "migrations", "blackout_ms", "gates_ok"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    for key in TRAFFIC_KEYS:
        if key not in doc["traffic"]:
            fail(f"traffic missing key {key!r}")
    if not isinstance(doc["migrations"], list) or not doc["migrations"]:
        fail("migrations is empty")
    for i, mig in enumerate(doc["migrations"]):
        for key in MIGRATION_KEYS:
            if key not in mig:
                fail(f"migrations[{i}] missing key {key!r}")
    for key in ("budget", "p50", "p99", "max"):
        if key not in doc["blackout_ms"]:
            fail(f"blackout_ms missing key {key!r}")


def check_migrate_coverage(doc):
    tenants = doc["fleet"].get("tenants", 0)
    if tenants <= 0:
        fail("fleet.tenants is not positive")
    directions = {}
    for mig in doc["migrations"]:
        if not mig["committed"]:
            fail(f'migration of {mig["tenant"]} '
                 f'{mig["from"]}->{mig["to"]} did not commit')
        directions.setdefault(mig["tenant"], set()).add(
            (mig["from"], mig["to"]))
    if len(directions) != tenants:
        fail(f"{len(directions)} tenants migrated, fleet has {tenants}")
    for tenant, dirs in directions.items():
        if len(dirs) < 2:
            fail(f"tenant {tenant} migrated in only one direction — "
                 "not a full rolling restart")
    if doc["traffic"]["reconnects"] <= 0:
        fail("no client reconnects recorded — the flip was never exercised")
    if doc["traffic"]["migrating_redirects"] <= 0:
        fail("no kMigrating redirects recorded — the typed admission "
             "freeze was never observed by a client")


def check_migrate_gates(doc):
    traffic = doc["traffic"]
    if not doc["gates_ok"]:
        fail("the bench's own gates_ok verdict is false")
    if traffic["failed_calls"] != 0:
        fail(f'{traffic["failed_calls"]} calls failed under migration')
    if traffic["duplicate_executions"] != 0:
        fail(f'{traffic["duplicate_executions"]} duplicate kernel '
             "executions — exactly-once violated")
    if traffic["executions"] != traffic["launches"]:
        fail(f'{traffic["executions"]} executions for '
             f'{traffic["launches"]} launches')
    if not traffic["data_integrity_ok"]:
        fail("device memory readback diverged from the written pattern")
    blackout = doc["blackout_ms"]
    if not (0 <= blackout["p50"] <= blackout["p99"] <= blackout["max"]):
        fail("blackout quantiles are not monotone")
    if blackout["max"] > blackout["budget"]:
        fail(f'blackout max {blackout["max"]:.1f} ms exceeds the '
             f'{blackout["budget"]:.0f} ms budget')


MODCACHE_PHASE_KEYS = ("loads", "wire_bytes", "wire_bytes_per_load",
                       "mean_load_ns", "cache_hits")
MODCACHE_SERVER_KEYS = ("hits", "misses", "inserts", "evictions",
                        "resident_bytes", "resident_entries")


def check_modcache_schema(doc):
    for key in ("fleet", "cold", "repeat", "wire_reduction", "server_cache",
                "gates_ok"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    for key in ("tenants", "images", "image_bytes_total"):
        if key not in doc["fleet"]:
            fail(f"fleet missing key {key!r}")
    for phase in ("cold", "repeat"):
        for key in MODCACHE_PHASE_KEYS:
            if key not in doc[phase]:
                fail(f"{phase} missing key {key!r}")
    if "bytes_saved" not in doc["repeat"]:
        fail("repeat missing key 'bytes_saved'")
    for key in MODCACHE_SERVER_KEYS:
        if key not in doc["server_cache"]:
            fail(f"server_cache missing key {key!r}")


def check_modcache_coverage(doc):
    cold, repeat = doc["cold"], doc["repeat"]
    cache = doc["server_cache"]
    if cold["loads"] <= 0 or repeat["loads"] <= 0:
        fail("a phase recorded no loads")
    if cold["cache_hits"] != 0:
        fail(f'{cold["cache_hits"]} cold loads hit the cache — the cold '
             "phase did not start cold")
    if repeat["cache_hits"] != repeat["loads"]:
        fail(f'{repeat["cache_hits"]} hits for {repeat["loads"]} repeat '
             "loads — a repeat probe missed")
    if cache["inserts"] != doc["fleet"]["images"]:
        fail(f'{cache["inserts"]} cache inserts for '
             f'{doc["fleet"]["images"]} distinct images')
    if cache["evictions"] != 0:
        fail(f'{cache["evictions"]} evictions under the default budget')


def check_modcache_gates(doc):
    if not doc["gates_ok"]:
        fail("the bench's own gates_ok verdict is false")
    if doc["wire_reduction"] < 10.0:
        fail(f'wire reduction {doc["wire_reduction"]:.2f}x below the 10x '
             "threshold")
    per_load_ratio = (doc["cold"]["wire_bytes_per_load"] /
                      max(doc["repeat"]["wire_bytes_per_load"], 1e-9))
    if per_load_ratio < 10.0:
        fail(f"recomputed per-load ratio {per_load_ratio:.2f}x below 10x "
             "(wire_reduction field inconsistent with the phase bytes)")
    if doc["repeat"]["bytes_saved"] <= 0:
        fail("repeat phase saved no image bytes")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_tenants.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")
    bench = doc.get("bench")
    if bench == "tenants":
        check_schema(doc)
        check_admission(doc["admission"])
        check_gates(doc)
        points = ", ".join(str(p["tenants"]) for p in doc["sweep"])
        print(f"validate_bench_json: OK ({path}: sweep points {points}, "
              f"admission rejected={doc['admission']['rejected']})")
    elif bench == "modcache":
        check_modcache_schema(doc)
        check_modcache_coverage(doc)
        check_modcache_gates(doc)
        print(f"validate_bench_json: OK ({path}: "
              f"{doc['fleet']['tenants']} tenants sharing "
              f"{doc['fleet']['images']} images, wire reduction "
              f"{doc['wire_reduction']:.1f}x >= 10x, "
              f"{doc['repeat']['bytes_saved']} image bytes saved)")
    elif bench == "migrate":
        check_migrate_schema(doc)
        check_migrate_coverage(doc)
        check_migrate_gates(doc)
        blackout = doc["blackout_ms"]
        print(f"validate_bench_json: OK ({path}: "
              f"{len(doc['migrations'])} migrations, "
              f"{doc['traffic']['calls']} calls 0 failed, blackout "
              f"p99 {blackout['p99']:.1f} ms <= "
              f"{blackout['budget']:.0f} ms)")
    else:
        fail(f'unknown bench discriminator {bench!r} '
             '(expected "tenants", "modcache", or "migrate")')


if __name__ == "__main__":
    main()
