#!/usr/bin/env python3
"""Validates the committed bench_tenants JSON trajectory (BENCH_tenants.json).

Stdlib-only; used by tools/check.sh stage 12 (bench-json) and by hand:

    build/bench/bench_tenants --json=BENCH_tenants.json
    python3 tools/validate_bench_json.py BENCH_tenants.json

Checks, in order:
  1. schema     — top level {"bench": "tenants", "window_ms", "admission",
                  "sweep", "gates_ok"}; every sweep point carries the
                  fairness/throughput keys for both policies.
  2. admission  — over-quota calls were rejected, zero argument decodes
                  happened while rejecting (rejection precedes decode), and
                  the connection recovered after the token bucket refilled.
  3. gates      — the bench's own acceptance verdict is true, and the
                  16-tenant point honours the ISSUE thresholds: non-hog
                  device time within 10% of fair share and fair-share
                  aggregate throughput >= 0.85x the FIFO baseline.

Exit code 0 iff every check passes.
"""
import json
import sys

POLICY_KEYS = (
    "elapsed_ns",
    "total_device_ns",
    "utilization",
    "total_ops",
    "nonhog_mean_device_ns",
    "nonhog_min_device_ns",
    "nonhog_max_device_ns",
    "max_share_error",
    "hog_device_ns",
    "hog_rejected",
)


def fail(msg):
    print(f"validate_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_schema(doc):
    if doc.get("bench") != "tenants":
        fail(f'bench is {doc.get("bench")!r}, expected "tenants"')
    for key in ("window_ms", "admission", "sweep", "gates_ok"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if not isinstance(doc["sweep"], list) or not doc["sweep"]:
        fail("sweep is empty")
    for point in doc["sweep"]:
        for key in ("tenants", "fair", "fifo", "throughput_ratio",
                    "fairness_ok"):
            if key not in point:
                fail(f"sweep point missing key {key!r}")
        for policy in ("fair", "fifo"):
            for key in POLICY_KEYS:
                if key not in point[policy]:
                    fail(f"sweep[tenants={point['tenants']}].{policy} "
                         f"missing key {key!r}")


def check_admission(adm):
    if adm.get("rejected", 0) <= 0:
        fail("admission section recorded no rejected calls")
    if adm.get("decodes_during_rejection", 1) != 0:
        fail(f"{adm['decodes_during_rejection']} argument decodes happened "
             "while rejecting (rejection must precede decode)")
    if not adm.get("recovered_after_refill"):
        fail("connection did not recover after the token bucket refilled")


def check_gates(doc):
    if not doc["gates_ok"]:
        fail("the bench's own gates_ok verdict is false")
    sixteen = [p for p in doc["sweep"] if p["tenants"] == 16]
    if not sixteen:
        fail("sweep has no 16-tenant point")
    point = sixteen[0]
    fair = point["fair"]
    if fair["max_share_error"] > 0.10:
        fail(f"16-tenant non-hog share error {fair['max_share_error']:.3f} "
             "exceeds 10%")
    if point["throughput_ratio"] < 0.85:
        fail(f"16-tenant throughput ratio {point['throughput_ratio']:.3f} "
             "below 0.85x the FIFO baseline")
    if fair["hog_rejected"] <= 0:
        fail("16-tenant hog saw no admission rejections")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_tenants.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")
    check_schema(doc)
    check_admission(doc["admission"])
    check_gates(doc)
    points = ", ".join(str(p["tenants"]) for p in doc["sweep"])
    print(f"validate_bench_json: OK ({path}: sweep points {points}, "
          f"admission rejected={doc['admission']['rejected']})")


if __name__ == "__main__":
    main()
